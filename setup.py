"""Thin setup.py kept for environments without the `wheel` package,
where PEP 660 editable installs are unavailable (offline CI boxes).
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
