"""Zero-dependency telemetry: structured tracing and run profiles.

See :mod:`repro.obs.telemetry` for the recording API (spans, counters,
the ambient context), :mod:`repro.obs.sink` for the JSONL event sink
and its determinism contract, and :mod:`repro.obs.profile` for turning
a telemetry file into per-phase time tables (``composite-tx profile``).

``repro.obs.profile`` is intentionally *not* imported here: the
instrumented core imports this package, and the profile renderer leans
on the analysis layer, which imports the core — keeping it lazy breaks
the cycle.
"""

from repro.obs.sink import (
    ENV_FIELDS,
    ENV_STREAMS,
    RECORD_KEYS,
    WALL_KEYS,
    TornTail,
    atomic_write_text,
    canonical_dumps,
    dumps_events,
    iter_records,
    merge_streams,
    read_records,
    salvage_records,
    sort_events,
    to_record,
    validate_records,
    write_jsonl,
)
from repro.obs.telemetry import (
    EVENT_KINDS,
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    Span,
    Telemetry,
    TelemetryEvent,
    current,
    using,
)

__all__ = [
    "ENV_FIELDS",
    "ENV_STREAMS",
    "EVENT_KINDS",
    "NULL_TELEMETRY",
    "RECORD_KEYS",
    "SCHEMA_VERSION",
    "Span",
    "Telemetry",
    "TelemetryEvent",
    "TornTail",
    "WALL_KEYS",
    "atomic_write_text",
    "canonical_dumps",
    "current",
    "dumps_events",
    "iter_records",
    "merge_streams",
    "read_records",
    "salvage_records",
    "sort_events",
    "to_record",
    "using",
    "validate_records",
    "write_jsonl",
]
