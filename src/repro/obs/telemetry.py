"""The telemetry context: counters, monotonic span timers, event buffer.

A :class:`Telemetry` object is the single observability handle a run
carries.  It records three kinds of things:

* **spans** — ``with tele.span("reduce.level", level=i):`` emits an
  ``enter`` event immediately and an ``exit`` event (carrying the
  monotonic wall duration) when the block leaves, maintaining a bounded
  span stack so events always nest;
* **counters** — ``tele.count("sim.abort", reason="timeout")``
  accumulates named totals in memory; one ``counter`` event per
  distinct (name, fields) pair is appended at :meth:`collect` time in
  sorted order;
* **meta** — bookkeeping records the sink adds itself (schema version
  markers, dropped-event accounting).

Determinism contract
--------------------
Every event carries a ``(stream, seq)`` pair: ``stream`` names the
producing context (the main process, or one ``taskNNNN`` stream per
batch task) and ``seq`` is a per-stream monotonic sequence number.
Sorting any collection of events by ``(stream, seq)`` therefore yields
one canonical order that does not depend on worker scheduling — a
``--workers N`` run writes a byte-identical stream to the serial run
once wall-clock durations are projected away (see
:func:`repro.obs.sink.canonical_dumps`).  With an injected constant
``clock`` the streams are byte-identical outright, which is how the
determinism tests pin the contract.

The ambient context (:func:`current` / :func:`using`) lets deep library
code emit telemetry without threading a handle through every signature:
instrumented hot paths call ``current()``, which returns the no-op
:data:`NULL_TELEMETRY` unless a caller activated a real object.  The
no-op object makes instrumentation effectively free when telemetry is
off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError

#: bump when the JSONL record shape changes incompatibly
SCHEMA_VERSION = 1

#: allowed values of :attr:`TelemetryEvent.kind`
EVENT_KINDS = ("enter", "exit", "counter", "meta")

FieldItems = Tuple[Tuple[str, Any], ...]


def _clean_fields(fields: Dict[str, Any]) -> FieldItems:
    """Sort fields and coerce non-JSON-scalar values to ``repr``."""
    items: List[Tuple[str, Any]] = []
    for key in sorted(fields):
        value = fields[key]
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            value = repr(value)
        items.append((key, value))
    return tuple(items)


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry record (the in-memory twin of a JSONL line)."""

    stream: str
    seq: int
    kind: str  # one of EVENT_KINDS
    name: str
    depth: int  # span-stack depth at emit time
    dur_s: Optional[float]  # wall duration; ``exit`` events only
    fields: FieldItems = ()

    @property
    def sort_key(self) -> Tuple[str, int]:
        return (self.stream, self.seq)


class Span:
    """A live span handed to the ``with`` block.

    ``note(**fields)`` attaches result fields (they land on the ``exit``
    event only); ``seconds`` holds the monotonic duration once the span
    has exited, and :meth:`elapsed` reads the running clock before that.
    """

    __slots__ = ("name", "fields", "notes", "seconds", "_start", "_clock")

    def __init__(
        self, name: str, fields: FieldItems, clock: Callable[[], float]
    ) -> None:
        self.name = name
        self.fields = fields
        self.notes: Dict[str, Any] = {}
        self.seconds: float = 0.0
        self._clock = clock
        self._start = clock()

    def note(self, **fields: Any) -> None:
        self.notes.update(fields)

    def elapsed(self) -> float:
        return self._clock() - self._start


class Telemetry:
    """Named counters, span timers and a bounded in-memory event buffer.

    ``max_events`` bounds the buffer: once full, further span/counter
    events are dropped (counted, and reported in a ``telemetry.dropped``
    meta event at :meth:`collect` time) rather than growing without
    bound inside a long simulation.  ``max_depth`` bounds the span
    stack; exceeding it is a programming error and raises.  ``clock``
    is injectable so tests can pin durations.
    """

    def __init__(
        self,
        stream: str = "main",
        *,
        enabled: bool = True,
        max_events: int = 100_000,
        max_depth: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stream = stream
        self.enabled = enabled
        self.max_events = max_events
        self.max_depth = max_depth
        self._clock = clock
        self._events: List[TelemetryEvent] = []
        self._absorbed: List[TelemetryEvent] = []
        self._counters: Dict[Tuple[str, FieldItems], float] = {}
        self._stack: List[Span] = []
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _emit(
        self, kind: str, name: str, dur_s: Optional[float], fields: FieldItems
    ) -> None:
        if len(self._events) >= self.max_events:
            self._dropped += 1
            return
        self._events.append(
            TelemetryEvent(
                stream=self.stream,
                seq=self._seq,
                kind=kind,
                name=name,
                depth=len(self._stack),
                dur_s=dur_s,
                fields=fields,
            )
        )
        self._seq += 1

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Span]:
        """Time a region; events nest with the enclosing ``with`` blocks."""
        span = Span(name, _clean_fields(fields), self._clock)
        if not self.enabled:
            yield span
            span.seconds = span.elapsed()
            return
        if len(self._stack) >= self.max_depth:
            raise TelemetryError(
                f"span stack exceeded max_depth={self.max_depth} "
                f"entering {name!r}"
            )
        self._emit("enter", name, None, span.fields)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.seconds = span.elapsed()
            popped = self._stack.pop()
            if popped is not span:  # pragma: no cover - invariant
                raise TelemetryError("span stack corrupted")
            exit_fields = span.fields
            if span.notes:
                merged = dict(span.fields)
                merged.update(span.notes)
                exit_fields = _clean_fields(merged)
            self._emit("exit", name, span.seconds, exit_fields)

    def count(self, name: str, value: float = 1, **fields: Any) -> None:
        """Add ``value`` to the counter named ``name`` with ``fields``."""
        if not self.enabled:
            return
        key = (name, _clean_fields(fields))
        self._counters[key] = self._counters.get(key, 0) + value

    def meta(self, name: str, **fields: Any) -> None:
        """Emit one ``meta`` record — structured bookkeeping that is
        neither a timed span nor an accumulating counter (the fleet
        coordinator's per-worker liveness timeline, for example).
        Subject to the same buffer bound as span events."""
        if not self.enabled:
            return
        self._emit("meta", name, None, _clean_fields(fields))

    def absorb(self, events: Sequence[TelemetryEvent]) -> None:
        """Adopt events produced by another stream (a batch worker)."""
        if not self.enabled:
            return
        self._absorbed.extend(events)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self._dropped

    def collect(self) -> List[TelemetryEvent]:
        """Snapshot every event recorded so far (idempotent).

        Own span events come first in emit order, then one ``counter``
        event per counter (sorted by name and fields — a deterministic
        flush order), then a ``telemetry.dropped`` meta event when the
        buffer overflowed, then any absorbed foreign-stream events.
        The result is *not* sorted across streams; the sink does that.
        """
        out = list(self._events)
        seq = self._seq
        for (name, fields), value in sorted(self._counters.items()):
            out.append(
                TelemetryEvent(
                    stream=self.stream,
                    seq=seq,
                    kind="counter",
                    name=name,
                    depth=len(self._stack),
                    dur_s=None,
                    fields=fields + (("value", value),),
                )
            )
            seq += 1
        if self._dropped:
            out.append(
                TelemetryEvent(
                    stream=self.stream,
                    seq=seq,
                    kind="meta",
                    name="telemetry.dropped",
                    depth=len(self._stack),
                    dur_s=None,
                    fields=(("dropped", self._dropped),),
                )
            )
        out.extend(self._absorbed)
        return out


#: the shared no-op sink ``current()`` falls back to
NULL_TELEMETRY = Telemetry(stream="null", enabled=False)

_CURRENT: ContextVar[Telemetry] = ContextVar("repro_obs_current")


def current() -> Telemetry:
    """The ambient telemetry of this context (no-op when none active)."""
    return _CURRENT.get(NULL_TELEMETRY)


@contextmanager
def using(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the ambient sink for the ``with`` block."""
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)
