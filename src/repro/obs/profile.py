"""Run profiles: aggregate a telemetry stream into time tables.

The ``composite-tx profile`` subcommand renders what this module
computes: a per-phase inclusive-time table (spans grouped by name), the
per-level reduction breakdown when ``reduce.level`` spans are present,
the top-N slowest individual spans, and every counter total.

Span times are **inclusive** — a parent span's duration contains its
children's — so the per-phase percentage column describes where wall
time was *observed*, not a partition of it.  The reduction table reads
the structured fields the engine notes onto each ``reduce.level`` exit
(closure calls/rows, front size, observed pairs), giving the same
numbers as ``check --profile`` from a file instead of a live run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class PhaseStat:
    """Aggregate of every exit record sharing one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class RunProfile:
    """Everything the renderer needs, precomputed from raw records."""

    phases: List[PhaseStat] = field(default_factory=list)
    slowest: List[Dict[str, Any]] = field(default_factory=list)
    counters: List[Tuple[str, Dict[str, Any], float]] = field(
        default_factory=list
    )
    reduce_levels: List[Dict[str, Any]] = field(default_factory=list)
    fleet_summary: Dict[str, Any] = field(default_factory=dict)
    fleet_workers: List[Dict[str, Any]] = field(default_factory=list)
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    quarantines: List[Dict[str, Any]] = field(default_factory=list)
    invalid_snapshots: List[Dict[str, Any]] = field(default_factory=list)
    streams: int = 0
    records: int = 0


def build_profile(
    records: Sequence[Dict[str, Any]], *, top: int = 10
) -> RunProfile:
    """Fold raw telemetry records into a :class:`RunProfile`."""
    profile = RunProfile(records=len(records))
    by_name: Dict[str, PhaseStat] = {}
    exits: List[Dict[str, Any]] = []
    counters: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], float] = {}
    streams = set()
    for record in records:
        streams.add(record.get("stream", ""))
        kind = record.get("kind")
        if kind == "exit":
            exits.append(record)
            dur = float(record.get("dur_s") or 0.0)
            stat = by_name.setdefault(
                record["name"], PhaseStat(name=record["name"])
            )
            stat.count += 1
            stat.total_s += dur
            stat.max_s = max(stat.max_s, dur)
            if record["name"] == "reduce.level":
                profile.reduce_levels.append(record)
        elif kind == "counter":
            fields = dict(record.get("fields", {}))
            value = float(fields.pop("value", 0))
            key = (record["name"], tuple(sorted(fields.items())))
            counters[key] = counters.get(key, 0.0) + value
        elif kind == "meta":
            if record.get("name") == "fleet.summary":
                profile.fleet_summary = dict(record.get("fields", {}))
            elif record.get("name") == "fleet.worker":
                profile.fleet_workers.append(dict(record.get("fields", {})))
            elif record.get("name") == "stream.recover":
                profile.recoveries.append(dict(record.get("fields", {})))
            elif record.get("name") == "stream.quarantine":
                profile.quarantines.append(dict(record.get("fields", {})))
            elif record.get("name") == "stream.snapshot.invalid":
                profile.invalid_snapshots.append(
                    dict(record.get("fields", {}))
                )
    profile.streams = len(streams)
    profile.phases = sorted(
        by_name.values(), key=lambda s: (-s.total_s, s.name)
    )
    profile.slowest = sorted(
        exits,
        key=lambda r: (-(float(r.get("dur_s") or 0.0)), r["stream"], r["seq"]),
    )[:top]
    profile.counters = [
        (name, dict(fields), value)
        for (name, fields), value in sorted(counters.items())
    ]
    return profile


def _fields_cell(fields: Dict[str, Any], *, skip: Sequence[str] = ()) -> str:
    shown = [
        f"{k}={v}" for k, v in sorted(fields.items()) if k not in skip
    ]
    return " ".join(shown) if shown else "-"


def render_profile(
    records: Sequence[Dict[str, Any]], *, top: int = 10
) -> str:
    """Render a telemetry record list as the ``profile`` CLI report."""
    # Imported lazily: obs stays import-light so the instrumented core
    # never drags the analysis layer in at import time.
    from repro.analysis.tables import banner, format_table

    profile = build_profile(records, top=top)
    out: List[str] = [
        f"{profile.records} records across {profile.streams} stream(s)"
    ]
    total = sum(p.total_s for p in profile.phases)
    out.append(banner("per-phase time (inclusive)"))
    out.append(
        format_table(
            ["phase", "spans", "total ms", "%", "mean ms", "max ms"],
            [
                [
                    p.name,
                    p.count,
                    f"{p.total_s * 1000:.2f}",
                    f"{(p.total_s / total * 100) if total else 0.0:.1f}",
                    f"{p.mean_s * 1000:.2f}",
                    f"{p.max_s * 1000:.2f}",
                ]
                for p in profile.phases
            ],
        )
    )
    if profile.reduce_levels:
        out.append(banner("reduction levels"))
        out.append(
            format_table(
                ["stream", "level", "ms", "closures", "rows", "nodes",
                 "obs pairs"],
                [
                    [
                        r["stream"],
                        r.get("fields", {}).get("level", "?"),
                        f"{float(r.get('dur_s') or 0.0) * 1000:.2f}",
                        r.get("fields", {}).get("closure_calls", "-"),
                        r.get("fields", {}).get("closure_rows", "-"),
                        r.get("fields", {}).get("nodes", "-"),
                        r.get("fields", {}).get("observed_pairs", "-"),
                    ]
                    for r in profile.reduce_levels
                ],
            )
        )
    if profile.fleet_summary or profile.fleet_workers:
        out.append(banner("fleet"))
        summary = profile.fleet_summary
        if summary:
            out.append(
                f"{summary.get('workers', '?')} worker slot(s) over "
                f"{summary.get('shards', '?')} shard(s): "
                f"{summary.get('completed', 0)} completed, "
                f"{summary.get('reassigned', 0)} reassignment(s), "
                f"{summary.get('quarantined', 0)} quarantined; "
                f"{summary.get('leases_expired', 0)} lease(s) expired, "
                f"{summary.get('workers_replaced', 0)} worker(s) replaced, "
                f"{summary.get('duplicates_discarded', 0)} duplicate "
                "result(s) discarded"
            )
        if profile.fleet_workers:
            out.append(
                format_table(
                    ["worker", "pid", "started s", "ended s", "shards",
                     "fate"],
                    [
                        [
                            w.get("worker", "?"),
                            w.get("pid", "-"),
                            f"{float(w.get('started_s') or 0.0):.2f}",
                            f"{float(w.get('ended_s') or 0.0):.2f}",
                            w.get("shards", 0),
                            w.get("fate", "?"),
                        ]
                        for w in profile.fleet_workers
                    ],
                )
            )
    if (
        profile.recoveries
        or profile.quarantines
        or profile.invalid_snapshots
    ):
        out.append(banner("stream recovery"))
        if profile.recoveries:
            out.append(
                format_table(
                    ["recovery", "mode", "attempt", "offset", "line",
                     "events restored"],
                    [
                        [
                            i + 1,
                            r.get("mode", "?"),
                            r.get("attempt", "-"),
                            r.get("offset", "-"),
                            r.get("line", "-"),
                            r.get("events", "-"),
                        ]
                        for i, r in enumerate(profile.recoveries)
                    ],
                )
            )
        for bad in profile.invalid_snapshots:
            out.append(
                f"invalid snapshot skipped on attempt "
                f"{bad.get('attempt', '?')} ({bad.get('code', '?')}); "
                "fell back to a full re-read"
            )
        for q in profile.quarantines:
            out.append(
                f"poison event quarantined at offset "
                f"{q.get('offset', '?')} (log line {q.get('line', '?')}) "
                f"after {q.get('failures', '?')} failed attempt(s)"
            )
    out.append(banner(f"slowest spans (top {top})"))
    out.append(
        format_table(
            ["span", "ms", "stream", "fields"],
            [
                [
                    r["name"],
                    f"{float(r.get('dur_s') or 0.0) * 1000:.2f}",
                    r["stream"],
                    _fields_cell(dict(r.get("fields", {}))),
                ]
                for r in profile.slowest
            ],
        )
    )
    if profile.counters:
        out.append(banner("counters"))
        out.append(
            format_table(
                ["counter", "fields", "total"],
                [
                    [
                        name,
                        _fields_cell(fields),
                        f"{value:g}",
                    ]
                    for name, fields, value in profile.counters
                ],
            )
        )
    return "\n".join(out)
