"""JSONL event sink: serialization, stable merge, schema validation.

One telemetry file is a sequence of schema-versioned JSON records, one
per line, in the canonical ``(stream, seq)`` order.  Record shape::

    {"v": 1, "stream": "task0003", "seq": 7, "kind": "exit",
     "name": "reduce.level", "depth": 1, "dur_s": 0.0021,
     "fields": {"level": 2, "nodes": 9}}

``dur_s`` is the only wall-clock (hence non-deterministic) field;
:func:`canonical_dumps` projects it away so two runs of the same seeded
workload — serial or sharded — compare byte-for-byte.  Everything else
(streams, sequence numbers, names, counter values, span fields) is a
deterministic function of the workload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.exceptions import TelemetryError
from repro.obs.telemetry import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TelemetryEvent,
)

#: record keys holding wall-clock measurements (dropped by canonicalize)
WALL_KEYS = ("dur_s",)

#: span fields describing the execution *environment* rather than the
#: computation (worker count, pool chunking); also dropped by
#: :func:`canonical_dumps` — ``--workers 1`` and ``--workers 4`` do the
#: same work, and the canonical stream should say so.
ENV_FIELDS = ("workers", "chunksize")

#: exactly the keys every record must carry
RECORD_KEYS = ("v", "stream", "seq", "kind", "name", "depth", "dur_s", "fields")


def to_record(event: TelemetryEvent) -> Dict[str, Any]:
    """The JSON-ready dict of one event."""
    return {
        "v": SCHEMA_VERSION,
        "stream": event.stream,
        "seq": event.seq,
        "kind": event.kind,
        "name": event.name,
        "depth": event.depth,
        "dur_s": event.dur_s,
        "fields": dict(event.fields),
    }


def sort_events(events: Iterable[TelemetryEvent]) -> List[TelemetryEvent]:
    """The canonical merge order: by ``(stream, seq)``."""
    return sorted(events, key=lambda e: e.sort_key)


def merge_streams(
    *streams: Sequence[TelemetryEvent],
) -> List[TelemetryEvent]:
    """Merge per-worker event lists into one canonically ordered list."""
    merged: List[TelemetryEvent] = []
    for stream in streams:
        merged.extend(stream)
    return sort_events(merged)


def dumps_events(events: Iterable[TelemetryEvent]) -> str:
    """Render events as canonical JSONL (sorted, compact, stable keys)."""
    lines = [
        json.dumps(to_record(event), sort_keys=True, separators=(",", ":"))
        for event in sort_events(events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[TelemetryEvent], path: str) -> None:
    """Write the canonical JSONL stream to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_events(events))


def read_records(path: str) -> List[Dict[str, Any]]:
    """Load a telemetry file back as raw records (version-checked)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON ({err})"
                ) from err
            if not isinstance(record, dict):
                raise TelemetryError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            version = record.get("v")
            if version != SCHEMA_VERSION:
                raise TelemetryError(
                    f"{path}:{lineno}: telemetry schema version {version!r} "
                    f"(this build reads version {SCHEMA_VERSION})"
                )
            records.append(record)
    return records


def canonical_dumps(records: Sequence[Dict[str, Any]]) -> str:
    """Render records with wall-clock keys and environment fields
    removed, canonically sorted.

    Two seeded runs of the same workload produce byte-identical
    canonical dumps regardless of worker count — the determinism
    contract the CLI tests pin.
    """
    cleaned = []
    for record in records:
        kept = {k: v for k, v in record.items() if k not in WALL_KEYS}
        fields = kept.get("fields")
        if isinstance(fields, dict):
            kept["fields"] = {
                k: v for k, v in fields.items() if k not in ENV_FIELDS
            }
        cleaned.append(kept)
    cleaned.sort(key=lambda r: (str(r.get("stream", "")), int(r.get("seq", 0))))
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in cleaned
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# schema validation (the CI smoke gate and the property tests)
# ----------------------------------------------------------------------
def validate_records(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Check a record list against the schema; return human-readable
    problems (empty list == valid).

    Beyond per-record shape, validates the two stream invariants:
    sequence numbers strictly increase within a stream, and span
    ``enter``/``exit`` events form a balanced, properly-nested bracket
    sequence (skipped for streams that reported dropped events — a
    truncated stream may legitimately lose exits).
    """
    problems: List[str] = []
    last_seq: Dict[str, int] = {}
    stacks: Dict[str, List[str]] = {}
    truncated: Dict[str, bool] = {}
    for i, record in enumerate(records):
        where = f"record {i}"
        missing = [k for k in RECORD_KEYS if k not in record]
        extra = [k for k in record if k not in RECORD_KEYS]
        if missing:
            problems.append(f"{where}: missing keys {missing}")
            continue
        if extra:
            problems.append(f"{where}: unknown keys {extra}")
        if record["v"] != SCHEMA_VERSION:
            problems.append(f"{where}: schema version {record['v']!r}")
        if record["kind"] not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {record['kind']!r}")
            continue
        if not isinstance(record["stream"], str) or not isinstance(
            record["name"], str
        ):
            problems.append(f"{where}: stream/name must be strings")
            continue
        if not isinstance(record["seq"], int) or not isinstance(
            record["depth"], int
        ):
            problems.append(f"{where}: seq/depth must be integers")
            continue
        if record["dur_s"] is not None and not isinstance(
            record["dur_s"], (int, float)
        ):
            problems.append(f"{where}: dur_s must be a number or null")
        if not isinstance(record["fields"], dict):
            problems.append(f"{where}: fields must be an object")
            continue
        stream = record["stream"]
        seq = record["seq"]
        if stream in last_seq and seq <= last_seq[stream]:
            problems.append(
                f"{where}: seq {seq} not increasing in stream {stream!r}"
            )
        last_seq[stream] = seq
        if record["kind"] == "counter" and "value" not in record["fields"]:
            problems.append(f"{where}: counter without a value field")
        if record["kind"] == "meta" and record["name"] == "telemetry.dropped":
            truncated[stream] = True
        stack = stacks.setdefault(stream, [])
        if record["kind"] == "enter":
            if record["depth"] != len(stack):
                problems.append(
                    f"{where}: enter depth {record['depth']} != stack "
                    f"depth {len(stack)} in stream {stream!r}"
                )
            stack.append(record["name"])
        elif record["kind"] == "exit":
            if not stack:
                if not truncated.get(stream):
                    problems.append(
                        f"{where}: exit {record['name']!r} without a "
                        f"matching enter in stream {stream!r}"
                    )
                continue
            opened = stack.pop()
            if opened != record["name"]:
                problems.append(
                    f"{where}: exit {record['name']!r} does not match "
                    f"open span {opened!r} in stream {stream!r}"
                )
            if record["depth"] != len(stack):
                problems.append(
                    f"{where}: exit depth {record['depth']} != stack "
                    f"depth {len(stack)} in stream {stream!r}"
                )
    for stream, stack in stacks.items():
        if stack and not truncated.get(stream):
            problems.append(
                f"stream {stream!r}: spans never exited: {stack}"
            )
    return problems
