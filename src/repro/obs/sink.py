"""JSONL event sink: serialization, stable merge, schema validation.

One telemetry file is a sequence of schema-versioned JSON records, one
per line, in the canonical ``(stream, seq)`` order.  Record shape::

    {"v": 1, "stream": "task0003", "seq": 7, "kind": "exit",
     "name": "reduce.level", "depth": 1, "dur_s": 0.0021,
     "fields": {"level": 2, "nodes": 9}}

``dur_s`` is the only wall-clock (hence non-deterministic) field;
:func:`canonical_dumps` projects it away so two runs of the same seeded
workload — serial or sharded — compare byte-for-byte.  Everything else
(streams, sequence numbers, names, counter values, span fields) is a
deterministic function of the workload.

Crash safety
------------
Two mechanisms keep telemetry readable after a crash or SIGKILL:

* :func:`write_jsonl` is **atomic** — it writes to a sibling temp
  file, ``fsync``\\ s, then ``os.replace``\\ s onto the target, so a
  reader never observes a half-written file (the same
  write-then-fsync-then-rename discipline batch checkpoints use);
* :func:`salvage_records` performs **torn-tail recovery** for streams
  that *were* killed mid-append: a final line that is not a complete
  JSON record is truncated away (in memory) and reported as a
  :class:`TornTail` — byte offset of the last valid record boundary,
  bytes lost, and the torn fragment — instead of failing the read.
  Corruption anywhere *before* the final record is still an error:
  only an interrupted append can tear the tail, anything else means
  the file is damaged, not merely truncated.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import TelemetryError
from repro.obs.telemetry import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TelemetryEvent,
)

#: record keys holding wall-clock measurements (dropped by canonicalize)
WALL_KEYS = ("dur_s",)

#: span fields describing the execution *environment* rather than the
#: computation (worker count, pool chunking, fleet size, which CLI verb
#: drove the run); also dropped by :func:`canonical_dumps` —
#: ``--workers 1`` and ``--workers 4`` do the same work, and ``watch``
#: over a finished stream does the same work as ``check`` on the same
#: execution, so the canonical stream should say so.
ENV_FIELDS = ("workers", "chunksize", "fleet", "command")

#: whole streams describing the execution environment: the fleet
#: coordinator's stream records *how* the grid was driven (lease
#: expiries, worker replacements, shard reassignments — all functions
#: of real-world scheduling and injected harness faults, not of the
#: workload).  :func:`canonical_dumps` drops these streams entirely so
#: a ``--fleet 4`` run with a SIGKILLed worker still compares
#: byte-identical to ``--workers 1``.  The streaming checker's
#: ``"watch"`` stream is environmental the same way: per-event ingest
#: spans describe *when* events arrived, not what the execution is, so
#: dropping it leaves ``watch`` canonical telemetry byte-identical to
#: a batch ``check``.
ENV_STREAMS = ("fleet", "watch")

#: exactly the keys every record must carry
RECORD_KEYS = ("v", "stream", "seq", "kind", "name", "depth", "dur_s", "fields")


def to_record(event: TelemetryEvent) -> Dict[str, Any]:
    """The JSON-ready dict of one event."""
    return {
        "v": SCHEMA_VERSION,
        "stream": event.stream,
        "seq": event.seq,
        "kind": event.kind,
        "name": event.name,
        "depth": event.depth,
        "dur_s": event.dur_s,
        "fields": dict(event.fields),
    }


def sort_events(events: Iterable[TelemetryEvent]) -> List[TelemetryEvent]:
    """The canonical merge order: by ``(stream, seq)``."""
    return sorted(events, key=lambda e: e.sort_key)


def merge_streams(
    *streams: Sequence[TelemetryEvent],
) -> List[TelemetryEvent]:
    """Merge per-worker event lists into one canonically ordered list."""
    merged: List[TelemetryEvent] = []
    for stream in streams:
        merged.extend(stream)
    return sort_events(merged)


def dumps_events(events: Iterable[TelemetryEvent]) -> str:
    """Render events as canonical JSONL (sorted, compact, stable keys)."""
    lines = [
        json.dumps(to_record(event), sort_keys=True, separators=(",", ":"))
        for event in sort_events(events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def canonical_json_dumps(value: Any) -> str:
    """Render an arbitrary JSON-ready value canonically: sorted keys,
    compact separators, UTF-8 kept literal, one trailing newline.

    This is the byte-identity workhorse for *documents* (lint reports,
    refutation witness certificates) the way :func:`canonical_dumps` is
    for telemetry streams: any two processes serializing the same value
    — serial or ``--workers N`` — produce the same bytes.
    """
    return (
        json.dumps(value, sort_keys=True, separators=(",", ":"),
                   ensure_ascii=False)
        + "\n"
    )


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (write, fsync, rename).

    A reader sees either the previous complete file or the new
    complete file, never a torn intermediate — the checkpointing
    discipline shared by telemetry sinks and batch checkpoints.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_jsonl(
    events: Iterable[TelemetryEvent], path: str, *, atomic: bool = True
) -> None:
    """Write the canonical JSONL stream to ``path`` (atomically by
    default; ``atomic=False`` restores the plain streaming write)."""
    text = dumps_events(events)
    if atomic:
        atomic_write_text(path, text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


@dataclass(frozen=True)
class TornTail:
    """What torn-tail recovery truncated away from a killed stream.

    ``valid_bytes`` is the offset of the last valid record boundary —
    truncating the file to that length yields a fully valid stream;
    ``lost_bytes`` is how much followed it, ``line`` the 1-based line
    number of the torn fragment, and ``fragment`` its first characters
    (for the report).
    """

    path: str
    line: int
    valid_bytes: int
    lost_bytes: int
    fragment: str

    def describe(self) -> str:
        return (
            f"{self.path}: torn final record at line {self.line}: "
            f"{self.lost_bytes} byte(s) after offset {self.valid_bytes} "
            f"do not form a complete record and were ignored "
            f"(fragment: {self.fragment!r})"
        )


def _parse_record(
    path: str, raw: bytes, lineno: int, offset: int, tearable: bool
) -> Tuple[Optional[Dict[str, Any]], Optional[TornTail]]:
    """Parse one line; ``(record, None)``, ``(None, torn)``, or raise."""
    stripped = raw.strip()
    problem: Optional[str] = None
    record: Any = None
    try:
        record = json.loads(stripped.decode("utf-8"))
    except UnicodeDecodeError as err:
        problem = f"undecodable bytes ({err})"
    except json.JSONDecodeError as err:
        problem = f"not valid JSON ({err})"
    if problem is None and not isinstance(record, dict):
        problem = "expected a JSON object"
    if problem is not None:
        if tearable:
            return None, TornTail(
                path=str(path),
                line=lineno,
                valid_bytes=offset,
                lost_bytes=len(raw),
                fragment=stripped[:80].decode("utf-8", "replace"),
            )
        raise TelemetryError(f"{path}:{lineno}: {problem}")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise TelemetryError(
            f"{path}:{lineno}: telemetry schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    return record, None


def iter_records(
    path: str, *, on_torn: Optional[Callable[[TornTail], None]] = None
) -> Iterator[Dict[str, Any]]:
    """Yield a telemetry file's records one at a time, never crashing
    on a torn tail.

    This is the reader for sinks a *live* process may still be
    appending to (``profile`` over a running simulation, the watch
    service's own sink): records stream out as they are parsed instead
    of slurping the file, and a final line that is not a complete
    record — the writer caught mid-``write`` or killed there — ends the
    iteration cleanly.  When ``on_torn`` is given it receives the
    :class:`TornTail` describing the suppressed tail; without it the
    tail is silently tolerated.  Corruption *before* the final line is
    still a :class:`~repro.exceptions.TelemetryError`: only an
    in-flight append can tear the tail.
    """
    offset = 0
    lineno = 0
    previous: Optional[bytes] = None
    with open(path, "rb") as handle:
        for raw in handle:
            if previous is not None:
                lineno += 1
                if previous.strip():
                    record, _ = _parse_record(
                        path, previous, lineno, offset, tearable=False
                    )
                    assert record is not None
                    yield record
                offset += len(previous)
            previous = raw
    if previous is None:
        return
    lineno += 1
    if previous.strip():
        tearable = not previous.endswith(b"\n")
        record, torn = _parse_record(
            path, previous, lineno, offset, tearable=tearable
        )
        if torn is not None:
            if on_torn is not None:
                on_torn(torn)
            return
        assert record is not None
        yield record


def salvage_records(
    path: str,
) -> Tuple[List[Dict[str, Any]], Optional[TornTail]]:
    """Load a telemetry file, recovering from a torn final record.

    A process killed mid-append (SIGKILL, power loss) leaves a final
    line that is not a complete JSON record and carries no trailing
    newline.  That tail is dropped and described in the returned
    :class:`TornTail`; every intact record before it is returned.
    Corruption anywhere else — a malformed line *followed by* more
    data, or a complete final line that still does not parse — cannot
    be explained by an interrupted append and raises
    :class:`~repro.exceptions.TelemetryError` as before.
    """
    torn_box: List[TornTail] = []
    records = list(iter_records(path, on_torn=torn_box.append))
    return records, (torn_box[0] if torn_box else None)


def read_records(path: str) -> List[Dict[str, Any]]:
    """Load a telemetry file back as raw records (version-checked).

    Strict: a torn final record raises; use :func:`salvage_records`
    to recover everything before the tear instead.
    """
    records, torn = salvage_records(path)
    if torn is not None:
        raise TelemetryError(
            torn.describe() + " (salvage_records recovers the intact prefix)"
        )
    return records


def canonical_dumps(records: Sequence[Dict[str, Any]]) -> str:
    """Render records with wall-clock keys and environment fields
    removed, canonically sorted.

    Two seeded runs of the same workload produce byte-identical
    canonical dumps regardless of worker count — the determinism
    contract the CLI tests pin.  Records of :data:`ENV_STREAMS`
    streams (the fleet coordinator's) are dropped wholesale: they
    describe harness scheduling, not the computation.
    """
    cleaned = []
    for record in records:
        if record.get("stream") in ENV_STREAMS:
            continue
        kept = {k: v for k, v in record.items() if k not in WALL_KEYS}
        fields = kept.get("fields")
        if isinstance(fields, dict):
            kept["fields"] = {
                k: v for k, v in fields.items() if k not in ENV_FIELDS
            }
        cleaned.append(kept)
    cleaned.sort(key=lambda r: (str(r.get("stream", "")), int(r.get("seq", 0))))
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in cleaned
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# schema validation (the CI smoke gate and the property tests)
# ----------------------------------------------------------------------
def validate_records(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Check a record list against the schema; return human-readable
    problems (empty list == valid).

    Beyond per-record shape, validates the two stream invariants:
    sequence numbers strictly increase within a stream, and span
    ``enter``/``exit`` events form a balanced, properly-nested bracket
    sequence (skipped for streams that reported dropped events — a
    truncated stream may legitimately lose exits).
    """
    problems: List[str] = []
    last_seq: Dict[str, int] = {}
    stacks: Dict[str, List[str]] = {}
    truncated: Dict[str, bool] = {}
    for i, record in enumerate(records):
        where = f"record {i}"
        missing = [k for k in RECORD_KEYS if k not in record]
        extra = [k for k in record if k not in RECORD_KEYS]
        if missing:
            problems.append(f"{where}: missing keys {missing}")
            continue
        if extra:
            problems.append(f"{where}: unknown keys {extra}")
        if record["v"] != SCHEMA_VERSION:
            problems.append(f"{where}: schema version {record['v']!r}")
        if record["kind"] not in EVENT_KINDS:
            problems.append(f"{where}: unknown kind {record['kind']!r}")
            continue
        if not isinstance(record["stream"], str) or not isinstance(
            record["name"], str
        ):
            problems.append(f"{where}: stream/name must be strings")
            continue
        if not isinstance(record["seq"], int) or not isinstance(
            record["depth"], int
        ):
            problems.append(f"{where}: seq/depth must be integers")
            continue
        if record["dur_s"] is not None and not isinstance(
            record["dur_s"], (int, float)
        ):
            problems.append(f"{where}: dur_s must be a number or null")
        if not isinstance(record["fields"], dict):
            problems.append(f"{where}: fields must be an object")
            continue
        stream = record["stream"]
        seq = record["seq"]
        if stream in last_seq and seq <= last_seq[stream]:
            problems.append(
                f"{where}: seq {seq} not increasing in stream {stream!r}"
            )
        last_seq[stream] = seq
        if record["kind"] == "counter" and "value" not in record["fields"]:
            problems.append(f"{where}: counter without a value field")
        if record["kind"] == "meta" and record["name"] == "telemetry.dropped":
            truncated[stream] = True
        stack = stacks.setdefault(stream, [])
        if record["kind"] == "enter":
            if record["depth"] != len(stack):
                problems.append(
                    f"{where}: enter depth {record['depth']} != stack "
                    f"depth {len(stack)} in stream {stream!r}"
                )
            stack.append(record["name"])
        elif record["kind"] == "exit":
            if not stack:
                if not truncated.get(stream):
                    problems.append(
                        f"{where}: exit {record['name']!r} without a "
                        f"matching enter in stream {stream!r}"
                    )
                continue
            opened = stack.pop()
            if opened != record["name"]:
                problems.append(
                    f"{where}: exit {record['name']!r} does not match "
                    f"open span {opened!r} in stream {stream!r}"
                )
            if record["depth"] != len(stack):
                problems.append(
                    f"{where}: exit depth {record['depth']} != stack "
                    f"depth {len(stack)} in stream {stream!r}"
                )
    for stream, stack in stacks.items():
        if stack and not truncated.get(stream):
            problems.append(
                f"stream {stream!r}: spans never exited: {stack}"
            )
    return problems
