"""Protocol evaluation via simulation (the P1 artifact).

Sweeps the discrete-event simulator over protocols, topologies and
multiprogramming levels, measuring the performance/correctness
trade-off the paper's introduction motivates: uncoordinated classical
schedulers are fast but commit non-Comp-C executions as soon as
composite transactions interfere through shared components, while the
composite-aware protocols pay aborts (CC) or blocking (strict 2PL) for
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.batch import run_batch
from repro.core.correctness import is_composite_correct
from repro.simulator.engine import Simulation, SimulationConfig, simulate
from repro.simulator.faults import random_fault_plan
from repro.simulator.programs import ProgramConfig
from repro.simulator.retry import RetryPolicy, make_retry_policy
from repro.workloads.topologies import TopologySpec


@dataclass
class ProtocolPoint:
    """One (protocol, topology, clients) measurement, seed-averaged."""

    protocol: str
    topology: str
    clients: int
    runs: int
    throughput: float
    abort_rate: float
    mean_response_time: float
    comp_c_runs: int  # runs whose committed execution was Comp-C

    @property
    def comp_c_rate(self) -> float:
        return self.comp_c_runs / self.runs if self.runs else 0.0


@dataclass
class ProtocolRun:
    """One seeded simulator run of a P1 cell — the picklable unit the
    batch runner ships between processes."""

    throughput: float
    abort_rate: float
    mean_response_time: float
    comp_c: bool


def protocol_run_task(task: Tuple) -> ProtocolRun:
    """Batch worker: one ``(topology, protocol, clients, seed, kw)``
    P1 cell run."""
    topology, protocol, clients, seed, kw = task
    result = simulate(
        SimulationConfig(
            topology=topology,
            protocol=protocol,
            clients=clients,
            transactions_per_client=kw["transactions_per_client"],
            seed=seed,
            program=kw["program"],
            deadlock_timeout=kw["deadlock_timeout"],
        )
    )
    return ProtocolRun(
        throughput=result.metrics.throughput,
        abort_rate=result.metrics.abort_rate,
        mean_response_time=result.metrics.mean_response_time,
        comp_c=result.assembled is not None
        and is_composite_correct(result.assembled.recorded.system),
    )


def merge_protocol_runs(
    topology_name: str,
    protocol: str,
    clients: int,
    runs: Sequence[ProtocolRun],
) -> ProtocolPoint:
    """Fold seed runs into one :class:`ProtocolPoint`.

    Accumulates in the order given — pass runs in seed order and the
    float sums match the historical serial loop bit for bit."""
    throughput = abort_rate = response = 0.0
    comp_c_runs = 0
    for run in runs:
        throughput += run.throughput
        abort_rate += run.abort_rate
        response += run.mean_response_time
        if run.comp_c:
            comp_c_runs += 1
    n = len(runs)
    return ProtocolPoint(
        protocol=protocol,
        topology=topology_name,
        clients=clients,
        runs=n,
        throughput=throughput / n,
        abort_rate=abort_rate / n,
        mean_response_time=response / n,
        comp_c_runs=comp_c_runs,
    )


def evaluate_protocol(
    topology: TopologySpec,
    protocol: str,
    *,
    clients: int = 4,
    transactions_per_client: int = 8,
    seeds: Sequence[int] = (0, 1, 2),
    program: Optional[ProgramConfig] = None,
    deadlock_timeout: float = 60.0,
    workers: int = 1,
) -> ProtocolPoint:
    """Average one protocol/topology/MPL cell over seeds."""
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    kw = {
        "transactions_per_client": transactions_per_client,
        "program": program,
        "deadlock_timeout": deadlock_timeout,
    }
    runs = run_batch(
        [(topology, protocol, clients, seed, kw) for seed in seeds],
        protocol_run_task,
        workers=workers,
    )
    return merge_protocol_runs(topology.name, protocol, clients, runs)


@dataclass
class ChaosPoint:
    """One (protocol, topology, fault intensity) cell, seed-aggregated.

    The R1 experiment's unit of measurement: liveness numbers
    (availability, throughput, give-ups, wasted work) next to the
    safety verdict (how many committed executions were Comp-C)."""

    protocol: str
    topology: str
    intensity: float
    runs: int
    commits: int
    gave_up: int
    throughput: float
    abort_rate: float
    availability: float
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    faults_injected: Dict[str, int] = field(default_factory=dict)
    discarded_operations: int = 0
    assembled_runs: int = 0  # runs that committed anything at all
    comp_c_runs: int = 0  # assembled runs judged Comp-C
    #: lint findings over the assembled executions, ``code -> count``
    #: (typically CTX301: the committed system's static shape admits a
    #: conflict cycle even when the actual execution was Comp-C)
    lint_codes: Dict[str, int] = field(default_factory=dict)
    #: static safety verdicts over the assembled executions,
    #: ``verdict -> runs`` (certified_safe / certified_unsafe / unknown)
    safety_verdicts: Dict[str, int] = field(default_factory=dict)

    @property
    def comp_c_rate(self) -> float:
        """Comp-C verdicts per assembled run (1.0 when nothing ever
        committed — an execution with no commits is vacuously safe)."""
        if self.assembled_runs == 0:
            return 1.0
        return self.comp_c_runs / self.assembled_runs

    def abort_breakdown(self) -> str:
        if not self.aborts_by_reason:
            return "-"
        return " ".join(
            f"{reason}:{count}"
            for reason, count in sorted(self.aborts_by_reason.items())
        )

    def lint_breakdown(self) -> str:
        """Compact ``code:count`` rendering, stable order."""
        if not self.lint_codes:
            return "-"
        return " ".join(
            f"{code}:{count}"
            for code, count in sorted(self.lint_codes.items())
        )

    def verdict_breakdown(self) -> str:
        """Compact ``verdict:count`` rendering, stable order (the
        shortened verdict names keep the chaos table narrow)."""
        if not self.safety_verdicts:
            return "-"
        short = {
            "certified_safe": "safe",
            "certified_unsafe": "unsafe",
            "unknown": "unknown",
        }
        return " ".join(
            f"{short.get(verdict, verdict)}:{count}"
            for verdict, count in sorted(self.safety_verdicts.items())
        )


@dataclass
class ChaosRun:
    """One seeded chaos run — the picklable per-task record whose
    fields mirror exactly what the (historical) serial accumulation
    loop read off the simulator."""

    commits: int
    gave_up: int
    throughput: float
    abort_rate: float
    availability: float
    discarded_operations: int
    aborts_by_reason: Dict[str, int]
    faults_injected: Dict[str, int]
    assembled: bool
    comp_c: bool
    #: lint ``code -> count`` over the assembled execution (empty when
    #: nothing committed); a plain dict so the record stays picklable
    lint_codes: Dict[str, int] = field(default_factory=dict)
    #: the static safety verdict of the assembled execution (one-entry
    #: ``verdict -> 1`` map, empty when nothing committed)
    safety_verdicts: Dict[str, int] = field(default_factory=dict)


def chaos_run(
    topology: TopologySpec,
    protocol: str,
    seed: int,
    *,
    intensity: float = 1.0,
    clients: int = 3,
    transactions_per_client: int = 5,
    program: Optional[ProgramConfig] = None,
    retry_policy: Union[str, RetryPolicy] = "exponential",
    max_attempts: int = 10,
    horizon: float = 120.0,
    static_precheck: bool = False,
    **plan_kw,
) -> ChaosRun:
    """One seeded chaos run of ``protocol`` under a random fault plan,
    with the committed execution re-checked by the Comp-C reduction.

    A *named* retry policy is instantiated **seeded** with this cell's
    ``seed`` (the seeding contract of :mod:`repro.simulator.retry`):
    retry jitter then depends only on the cell, not on how many other
    cells shared the worker's engine stream, so a grid sharded or
    resumed at any granularity reproduces the same runs.  Pass a
    :class:`RetryPolicy` instance to control seeding yourself.  The
    default is seeded full-jitter exponential backoff — under fault
    storms it spreads synchronized retry herds apart where the legacy
    linear policy let them collide (``repro chaos --retry-policy
    linear`` restores the old behaviour).
    """
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    if isinstance(retry_policy, str):
        # base=3.0 mirrors SimulationConfig.retry_backoff's default
        retry_policy = make_retry_policy(retry_policy, base=3.0, seed=seed)
    plan = random_fault_plan(
        topology.schedule_names,
        seed=seed,
        intensity=intensity,
        horizon=horizon,
        **plan_kw,
    )
    sim = Simulation(
        SimulationConfig(
            topology=topology,
            protocol=protocol,
            clients=clients,
            transactions_per_client=transactions_per_client,
            seed=seed,
            program=program,
            retry_policy=retry_policy,
            max_attempts=max_attempts,
            faults=plan if not plan.empty else None,
        )
    )
    result = sim.run()
    metrics = result.metrics
    assembled = result.assembled is not None
    comp_c = False
    lint_codes: Dict[str, int] = {}
    safety_verdicts: Dict[str, int] = {}
    if assembled:
        # Imported here so the multiprocessing workers only pay for the
        # lint stack when a run actually committed something.
        from repro.lint import lint_system

        system = result.assembled.recorded.system
        if static_precheck:
            # Two-sided static pre-screen: certified systems skip the
            # reduction outright, refuted ones are rejected from the
            # replay-validated witness — verdicts are identical either
            # way (the sweep in tests/lint/test_safety.py).
            from repro.core.reduction import reduce_to_roots

            comp_c = reduce_to_roots(
                system, static_precheck=True
            ).succeeded
        else:
            comp_c = is_composite_correct(system)
        lint_report = lint_system(system)
        lint_codes = lint_report.collector.counts()
        if lint_report.safety is not None:
            safety_verdicts = {str(lint_report.safety.verdict): 1}
    return ChaosRun(
        commits=metrics.commits,
        gave_up=metrics.gave_up,
        throughput=metrics.throughput,
        abort_rate=metrics.abort_rate,
        availability=metrics.availability,
        discarded_operations=sim.recorder.discarded_operations,
        aborts_by_reason=dict(metrics.aborts_by_reason),
        faults_injected=dict(metrics.faults_injected),
        assembled=assembled,
        comp_c=comp_c,
        lint_codes=lint_codes,
        safety_verdicts=safety_verdicts,
    )


def chaos_run_task(task: Tuple) -> ChaosRun:
    """Batch worker: unpack one ``(topology, protocol, seed, kw)``
    grid cell (see :func:`repro.analysis.batch.chaos_grid`)."""
    topology, protocol, seed, kw = task
    return chaos_run(topology, protocol, seed, **kw)


def merge_chaos_runs(
    topology_name: str,
    protocol: str,
    intensity: float,
    runs: Sequence[ChaosRun],
) -> ChaosPoint:
    """Fold seed runs into one :class:`ChaosPoint`.

    Replicates the historical serial loop's accumulation order —
    sums first, averages once at the end — so the result is
    bit-identical whether the runs were computed serially or by the
    batch runner (which returns them in seed order)."""
    point = ChaosPoint(
        protocol=protocol,
        topology=topology_name,
        intensity=intensity,
        runs=0,
        commits=0,
        gave_up=0,
        throughput=0.0,
        abort_rate=0.0,
        availability=0.0,
    )
    for run in runs:
        point.runs += 1
        point.commits += run.commits
        point.gave_up += run.gave_up
        point.throughput += run.throughput
        point.abort_rate += run.abort_rate
        point.availability += run.availability
        point.discarded_operations += run.discarded_operations
        for reason, count in run.aborts_by_reason.items():
            point.aborts_by_reason[reason] = (
                point.aborts_by_reason.get(reason, 0) + count
            )
        for kind, count in run.faults_injected.items():
            point.faults_injected[kind] = (
                point.faults_injected.get(kind, 0) + count
            )
        for code, count in run.lint_codes.items():
            point.lint_codes[code] = point.lint_codes.get(code, 0) + count
        for verdict, count in run.safety_verdicts.items():
            point.safety_verdicts[verdict] = (
                point.safety_verdicts.get(verdict, 0) + count
            )
        if run.assembled:
            point.assembled_runs += 1
            if run.comp_c:
                point.comp_c_runs += 1
    if point.runs:
        point.throughput /= point.runs
        point.abort_rate /= point.runs
        point.availability /= point.runs
    return point


def evaluate_protocol_under_faults(
    topology: TopologySpec,
    protocol: str,
    *,
    intensity: float = 1.0,
    seeds: Sequence[int] = (0, 1, 2),
    clients: int = 3,
    transactions_per_client: int = 5,
    program: Optional[ProgramConfig] = None,
    retry_policy: Union[str, RetryPolicy] = "exponential",
    max_attempts: int = 10,
    horizon: float = 120.0,
    workers: int = 1,
    **plan_kw,
) -> ChaosPoint:
    """One chaos cell: run ``protocol`` under a seeded random fault
    plan (crashes + drops + degradation + transient failures scaled by
    ``intensity``) and re-check every committed execution with the
    Comp-C reduction.  ``plan_kw`` is forwarded to
    :func:`repro.simulator.faults.random_fault_plan`."""
    kw = dict(
        intensity=intensity,
        clients=clients,
        transactions_per_client=transactions_per_client,
        program=program,
        retry_policy=retry_policy,
        max_attempts=max_attempts,
        horizon=horizon,
        **plan_kw,
    )
    runs = run_batch(
        [(topology, protocol, seed, kw) for seed in seeds],
        chaos_run_task,
        workers=workers,
    )
    return merge_chaos_runs(topology.name, protocol, intensity, runs)


def protocol_sweep(
    topologies: Sequence[TopologySpec],
    protocols: Sequence[str] = ("cc", "s2pl", "sgt", "to"),
    *,
    client_levels: Sequence[int] = (1, 2, 4, 8),
    seeds: Sequence[int] = (0, 1, 2),
    transactions_per_client: int = 8,
    program: Optional[ProgramConfig] = None,
    deadlock_timeout: float = 60.0,
    workers: int = 1,
) -> List[ProtocolPoint]:
    """The full P1 grid, every (cell x seed) an independent task."""
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    kw = {
        "transactions_per_client": transactions_per_client,
        "program": program,
        "deadlock_timeout": deadlock_timeout,
    }
    cells = [
        (topology, protocol, clients)
        for topology in topologies
        for protocol in protocols
        for clients in client_levels
    ]
    tasks = [
        (topology, protocol, clients, seed, kw)
        for topology, protocol, clients in cells
        for seed in seeds
    ]
    runs = run_batch(tasks, protocol_run_task, workers=workers)
    per = len(seeds)
    return [
        merge_protocol_runs(
            topology.name, protocol, clients, runs[i * per:(i + 1) * per]
        )
        for i, (topology, protocol, clients) in enumerate(cells)
    ]
