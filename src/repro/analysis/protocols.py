"""Protocol evaluation via simulation (the P1 artifact).

Sweeps the discrete-event simulator over protocols, topologies and
multiprogramming levels, measuring the performance/correctness
trade-off the paper's introduction motivates: uncoordinated classical
schedulers are fast but commit non-Comp-C executions as soon as
composite transactions interfere through shared components, while the
composite-aware protocols pay aborts (CC) or blocking (strict 2PL) for
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.correctness import is_composite_correct
from repro.simulator.engine import SimulationConfig, simulate
from repro.simulator.programs import ProgramConfig
from repro.workloads.topologies import TopologySpec


@dataclass
class ProtocolPoint:
    """One (protocol, topology, clients) measurement, seed-averaged."""

    protocol: str
    topology: str
    clients: int
    runs: int
    throughput: float
    abort_rate: float
    mean_response_time: float
    comp_c_runs: int  # runs whose committed execution was Comp-C

    @property
    def comp_c_rate(self) -> float:
        return self.comp_c_runs / self.runs if self.runs else 0.0


def evaluate_protocol(
    topology: TopologySpec,
    protocol: str,
    *,
    clients: int = 4,
    transactions_per_client: int = 8,
    seeds: Sequence[int] = (0, 1, 2),
    program: Optional[ProgramConfig] = None,
    deadlock_timeout: float = 60.0,
) -> ProtocolPoint:
    """Average one protocol/topology/MPL cell over seeds."""
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    throughput = abort_rate = response = 0.0
    comp_c_runs = runs = 0
    for seed in seeds:
        result = simulate(
            SimulationConfig(
                topology=topology,
                protocol=protocol,
                clients=clients,
                transactions_per_client=transactions_per_client,
                seed=seed,
                program=program,
                deadlock_timeout=deadlock_timeout,
            )
        )
        runs += 1
        throughput += result.metrics.throughput
        abort_rate += result.metrics.abort_rate
        response += result.metrics.mean_response_time
        if result.assembled is not None and is_composite_correct(
            result.assembled.recorded.system
        ):
            comp_c_runs += 1
    return ProtocolPoint(
        protocol=protocol,
        topology=topology.name,
        clients=clients,
        runs=runs,
        throughput=throughput / runs,
        abort_rate=abort_rate / runs,
        mean_response_time=response / runs,
        comp_c_runs=comp_c_runs,
    )


def protocol_sweep(
    topologies: Sequence[TopologySpec],
    protocols: Sequence[str] = ("cc", "s2pl", "sgt", "to"),
    *,
    client_levels: Sequence[int] = (1, 2, 4, 8),
    **kw,
) -> List[ProtocolPoint]:
    """The full P1 grid."""
    points: List[ProtocolPoint] = []
    for topology in topologies:
        for protocol in protocols:
            for clients in client_levels:
                points.append(
                    evaluate_protocol(
                        topology, protocol, clients=clients, **kw
                    )
                )
    return points
