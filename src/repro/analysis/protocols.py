"""Protocol evaluation via simulation (the P1 artifact).

Sweeps the discrete-event simulator over protocols, topologies and
multiprogramming levels, measuring the performance/correctness
trade-off the paper's introduction motivates: uncoordinated classical
schedulers are fast but commit non-Comp-C executions as soon as
composite transactions interfere through shared components, while the
composite-aware protocols pay aborts (CC) or blocking (strict 2PL) for
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.correctness import is_composite_correct
from repro.simulator.engine import Simulation, SimulationConfig, simulate
from repro.simulator.faults import random_fault_plan
from repro.simulator.programs import ProgramConfig
from repro.simulator.retry import RetryPolicy
from repro.workloads.topologies import TopologySpec


@dataclass
class ProtocolPoint:
    """One (protocol, topology, clients) measurement, seed-averaged."""

    protocol: str
    topology: str
    clients: int
    runs: int
    throughput: float
    abort_rate: float
    mean_response_time: float
    comp_c_runs: int  # runs whose committed execution was Comp-C

    @property
    def comp_c_rate(self) -> float:
        return self.comp_c_runs / self.runs if self.runs else 0.0


def evaluate_protocol(
    topology: TopologySpec,
    protocol: str,
    *,
    clients: int = 4,
    transactions_per_client: int = 8,
    seeds: Sequence[int] = (0, 1, 2),
    program: Optional[ProgramConfig] = None,
    deadlock_timeout: float = 60.0,
) -> ProtocolPoint:
    """Average one protocol/topology/MPL cell over seeds."""
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    throughput = abort_rate = response = 0.0
    comp_c_runs = runs = 0
    for seed in seeds:
        result = simulate(
            SimulationConfig(
                topology=topology,
                protocol=protocol,
                clients=clients,
                transactions_per_client=transactions_per_client,
                seed=seed,
                program=program,
                deadlock_timeout=deadlock_timeout,
            )
        )
        runs += 1
        throughput += result.metrics.throughput
        abort_rate += result.metrics.abort_rate
        response += result.metrics.mean_response_time
        if result.assembled is not None and is_composite_correct(
            result.assembled.recorded.system
        ):
            comp_c_runs += 1
    return ProtocolPoint(
        protocol=protocol,
        topology=topology.name,
        clients=clients,
        runs=runs,
        throughput=throughput / runs,
        abort_rate=abort_rate / runs,
        mean_response_time=response / runs,
        comp_c_runs=comp_c_runs,
    )


@dataclass
class ChaosPoint:
    """One (protocol, topology, fault intensity) cell, seed-aggregated.

    The R1 experiment's unit of measurement: liveness numbers
    (availability, throughput, give-ups, wasted work) next to the
    safety verdict (how many committed executions were Comp-C)."""

    protocol: str
    topology: str
    intensity: float
    runs: int
    commits: int
    gave_up: int
    throughput: float
    abort_rate: float
    availability: float
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    faults_injected: Dict[str, int] = field(default_factory=dict)
    discarded_operations: int = 0
    assembled_runs: int = 0  # runs that committed anything at all
    comp_c_runs: int = 0  # assembled runs judged Comp-C

    @property
    def comp_c_rate(self) -> float:
        """Comp-C verdicts per assembled run (1.0 when nothing ever
        committed — an execution with no commits is vacuously safe)."""
        if self.assembled_runs == 0:
            return 1.0
        return self.comp_c_runs / self.assembled_runs

    def abort_breakdown(self) -> str:
        if not self.aborts_by_reason:
            return "-"
        return " ".join(
            f"{reason}:{count}"
            for reason, count in sorted(self.aborts_by_reason.items())
        )


def evaluate_protocol_under_faults(
    topology: TopologySpec,
    protocol: str,
    *,
    intensity: float = 1.0,
    seeds: Sequence[int] = (0, 1, 2),
    clients: int = 3,
    transactions_per_client: int = 5,
    program: Optional[ProgramConfig] = None,
    retry_policy: Union[str, RetryPolicy] = "linear",
    max_attempts: int = 10,
    horizon: float = 120.0,
    **plan_kw,
) -> ChaosPoint:
    """One chaos cell: run ``protocol`` under a seeded random fault
    plan (crashes + drops + degradation + transient failures scaled by
    ``intensity``) and re-check every committed execution with the
    Comp-C reduction.  ``plan_kw`` is forwarded to
    :func:`repro.simulator.faults.random_fault_plan`."""
    program = program or ProgramConfig(items_per_component=4, item_skew=0.8)
    point = ChaosPoint(
        protocol=protocol,
        topology=topology.name,
        intensity=intensity,
        runs=0,
        commits=0,
        gave_up=0,
        throughput=0.0,
        abort_rate=0.0,
        availability=0.0,
    )
    for seed in seeds:
        plan = random_fault_plan(
            topology.schedule_names,
            seed=seed,
            intensity=intensity,
            horizon=horizon,
            **plan_kw,
        )
        sim = Simulation(
            SimulationConfig(
                topology=topology,
                protocol=protocol,
                clients=clients,
                transactions_per_client=transactions_per_client,
                seed=seed,
                program=program,
                retry_policy=retry_policy,
                max_attempts=max_attempts,
                faults=plan if not plan.empty else None,
            )
        )
        result = sim.run()
        metrics = result.metrics
        point.runs += 1
        point.commits += metrics.commits
        point.gave_up += metrics.gave_up
        point.throughput += metrics.throughput
        point.abort_rate += metrics.abort_rate
        point.availability += metrics.availability
        point.discarded_operations += sim.recorder.discarded_operations
        for reason, count in metrics.aborts_by_reason.items():
            point.aborts_by_reason[reason] = (
                point.aborts_by_reason.get(reason, 0) + count
            )
        for kind, count in metrics.faults_injected.items():
            point.faults_injected[kind] = (
                point.faults_injected.get(kind, 0) + count
            )
        if result.assembled is not None:
            point.assembled_runs += 1
            if is_composite_correct(result.assembled.recorded.system):
                point.comp_c_runs += 1
    if point.runs:
        point.throughput /= point.runs
        point.abort_rate /= point.runs
        point.availability /= point.runs
    return point


def protocol_sweep(
    topologies: Sequence[TopologySpec],
    protocols: Sequence[str] = ("cc", "s2pl", "sgt", "to"),
    *,
    client_levels: Sequence[int] = (1, 2, 4, 8),
    **kw,
) -> List[ProtocolPoint]:
    """The full P1 grid."""
    points: List[ProtocolPoint] = []
    for topology in topologies:
        for protocol in protocols:
            for clients in client_levels:
                points.append(
                    evaluate_protocol(
                        topology, protocol, clients=clients, **kw
                    )
                )
    return points
