"""Parallel batch runner for (config x seed) grids.

Every sweep in the analysis layer — chaos grids, theorem-agreement
ensembles, hierarchy tables, ablations — is embarrassingly parallel:
independent simulator or checker runs whose results are folded into a
summary row.  :func:`run_batch` shards such a grid across a
``ProcessPoolExecutor`` with chunked dispatch.

Determinism contract
--------------------
``run_batch`` returns results **in task-submission order**, whatever
order the workers finish in.  Callers therefore merge results exactly
as the serial loop would have (same iteration order, hence the same
floating-point accumulation order), which makes ``--workers N`` output
bit-identical to ``--workers 1``.  The serial path (``workers <= 1``)
calls the very same worker functions in-process, so it *is* the old
code path, not an approximation of it.

Workers are module-level functions taking one picklable task tuple —
a requirement of the ``fork``/``spawn`` process pool, and the reason
the per-run halves of :mod:`repro.analysis.protocols` et al. are
top-level functions rather than closures.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

from repro.simulator.metrics import Metrics

T = TypeVar("T")
R = TypeVar("R")


def run_batch(
    tasks: Iterable[T],
    worker: Callable[[T], R],
    *,
    workers: int = 1,
    chunksize: int = 0,
) -> List[R]:
    """Run ``worker`` over ``tasks``, results in task order.

    ``workers <= 1`` runs serially in-process.  Otherwise the tasks are
    dispatched to a process pool in chunks (default: enough chunks for
    ~4 rounds per worker, amortizing pickling without starving the
    pool).  ``worker`` must be a module-level (picklable) callable.
    """
    task_list = list(tasks)
    if workers <= 1 or len(task_list) <= 1:
        return [worker(task) for task in task_list]
    if chunksize <= 0:
        chunksize = max(1, math.ceil(len(task_list) / (workers * 4)))
    with ProcessPoolExecutor(
        max_workers=min(workers, len(task_list))
    ) as pool:
        return list(pool.map(worker, task_list, chunksize=chunksize))


def merge_metrics(parts: Sequence[Metrics]) -> Metrics:
    """Fold per-run :class:`Metrics` into one aggregate.

    Counters and per-reason/per-kind maps are summed (order-independent
    integer arithmetic); ``end_time`` and ``components`` take the max
    (runs share a horizon, they do not extend each other); response
    times are concatenated in the order given — pass ``parts`` in task
    order so derived float statistics are reproducible.
    """
    merged = Metrics()
    for part in parts:
        merged.commits += part.commits
        merged.gave_up += part.gave_up
        merged.operations += part.operations
        merged.response_times.extend(part.response_times)
        merged.end_time = max(merged.end_time, part.end_time)
        merged.components = max(merged.components, part.components)
        for field in (
            "aborts_by_reason",
            "retries_by_reason",
            "giveups_by_reason",
            "faults_injected",
        ):
            ours = getattr(merged, field)
            for key, count in getattr(part, field).items():
                ours[key] = ours.get(key, 0) + count
        for component, down in part.downtime.items():
            merged.downtime[component] = (
                merged.downtime.get(component, 0.0) + down
            )
    return merged


# ----------------------------------------------------------------------
# grid builders (the CLI-facing convenience layer)
# ----------------------------------------------------------------------
def chaos_grid(
    topology,
    protocols: Sequence[str],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    **kw,
):
    """The (protocol x seed) chaos grid, one :class:`ChaosPoint` per
    protocol.  Equivalent to calling
    :func:`repro.analysis.protocols.evaluate_protocol_under_faults`
    per protocol, but with every (protocol, seed) cell an independent
    task — so ``workers`` parallelizes across protocols *and* seeds."""
    from repro.analysis.protocols import chaos_run_task, merge_chaos_runs

    tasks = [
        (topology, protocol, seed, kw)
        for protocol in protocols
        for seed in seeds
    ]
    runs = run_batch(tasks, chaos_run_task, workers=workers)
    points = []
    per = len(seeds)
    for i, protocol in enumerate(protocols):
        points.append(
            merge_chaos_runs(
                topology.name,
                protocol,
                kw.get("intensity", 1.0),
                runs[i * per:(i + 1) * per],
            )
        )
    return points


def ablation_task(task: Tuple) -> bool:
    """One A1 cell: generate and reduce, with or without forgetting."""
    from repro.core.observed import ObservedOrderOptions
    from repro.core.reduction import reduce_to_roots
    from repro.workloads.generator import generate

    spec, config, forget = task
    recorded = generate(spec, config)
    options = ObservedOrderOptions(forget_nonconflicting=forget)
    return reduce_to_roots(recorded.system, options).succeeded


def compare_front_task(task: Tuple[str, int]) -> str:
    """Load one saved execution and describe its level front — the
    per-file half of ``repro compare``, shipped to a worker so the two
    (potentially expensive) reductions run concurrently."""
    from repro.core.equivalence import front_at_level
    from repro.exceptions import ReductionError
    from repro.io import load

    path, level = task
    system = load(path).system
    try:
        front = front_at_level(system, level)
    except ReductionError as err:
        return f"{path} @ level {level}: NO FRONT ({err})"
    obs = ", ".join(f"{x}<{y}" for x, y in front.observed.pairs())
    return (
        f"{path} @ level {level}: {{{', '.join(front.nodes)}}}\n"
        f"  observed: {obs or '(empty)'}"
    )
