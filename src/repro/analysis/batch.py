"""Parallel batch runner for (config x seed) grids.

Every sweep in the analysis layer — chaos grids, theorem-agreement
ensembles, hierarchy tables, ablations — is embarrassingly parallel:
independent simulator or checker runs whose results are folded into a
summary row.  :func:`run_batch` shards such a grid across a
``ProcessPoolExecutor`` with chunked dispatch.

Determinism contract
--------------------
``run_batch`` returns results **in task-submission order**, whatever
order the workers finish in.  Callers therefore merge results exactly
as the serial loop would have (same iteration order, hence the same
floating-point accumulation order), which makes ``--workers N`` output
bit-identical to ``--workers 1``.  The serial path (``workers <= 1``)
calls the very same worker functions in-process, so it *is* the old
code path, not an approximation of it.

The contract extends to telemetry: when the ambient
:func:`repro.obs.current` sink is active (or one is passed explicitly),
every task runs under its own ``taskNNNN`` stream named by submission
index, serial or sharded alike, and the collected events merge into one
canonical ``(stream, seq)`` order — so a ``--workers 4`` telemetry file
is a stable merge of the per-worker streams, identical (modulo wall
durations) to the serial file.

And it extends to recovery: because merging is a pure function of the
submission-ordered result list, a run resumed from a checkpoint (see
:mod:`repro.analysis.checkpoint`) merges restored and fresh results in
the same order an uninterrupted run would have, producing
byte-identical metrics and canonical telemetry.

Resilience
----------
:func:`run_batch_report` is the supervised entry point (see
:mod:`repro.analysis.supervise`): per-task wall-clock timeouts enforced
inside the worker, per-task retry with seeded jittered backoff,
parent-side hung-worker detection with pool replacement, and — unless
``fail_fast`` — quarantine of tasks that exhaust their attempts, so one
poisoned grid cell no longer destroys every completed result.

Failure reporting: a raising worker surfaces as
:class:`repro.exceptions.BatchTaskError` carrying the failing task and
its submission index — ``ProcessPoolExecutor.map`` alone loses which
grid cell died.  The error is raised for the *earliest* failing task in
submission order, another determinism guarantee, and carries the
completed partial results (``completed``/``missing``) so callers can
salvage the rest of the grid.

Workers are module-level functions taking one picklable task tuple —
a requirement of the ``fork``/``spawn`` process pool, and the reason
the per-run halves of :mod:`repro.analysis.protocols` et al. are
top-level functions rather than closures.
"""

from __future__ import annotations

import dataclasses
import math
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.fleet import FleetConfig, FleetReport

from repro.analysis.checkpoint import (
    CheckpointSection,
    ambient_session,
    batch_fingerprint,
)
from repro.analysis.supervise import (
    REASON_CRASH,
    REASON_EXCEPTION,
    REASON_HUNG,
    REASON_TIMEOUT,
    BatchSupervisor,
    QuarantinedTask,
    QuarantineReport,
    time_limit,
)
from repro.exceptions import BatchTaskError, TaskTimeoutError
from repro.obs import Telemetry, TelemetryEvent, current, using
from repro.simulator.metrics import Metrics

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class _TaskOutcome:
    """What one guarded worker call ships back (always picklable)."""

    index: int
    result: Any
    events: List[TelemetryEvent]
    error: Optional[str]  # repr of the exception, None on success
    error_traceback: str = ""
    reason: str = REASON_EXCEPTION  # quarantine reason when error is set
    attempts: int = 1


def _attempt(
    worker: Callable[[T], R],
    capture: bool,
    timeout: Optional[float],
    index: int,
    task: T,
) -> _TaskOutcome:
    """One guarded attempt at one task (its own telemetry stream, its
    own wall-clock budget)."""
    if not capture:
        try:
            with time_limit(timeout):
                return _TaskOutcome(index, worker(task), [], None)
        except Exception as err:
            return _TaskOutcome(
                index,
                None,
                [],
                repr(err),
                traceback.format_exc(),
                reason=REASON_TIMEOUT
                if isinstance(err, TaskTimeoutError)
                else REASON_EXCEPTION,
            )
    telemetry = Telemetry(stream=f"task{index:04d}")
    try:
        with time_limit(timeout):
            with using(telemetry):
                with telemetry.span("batch.task", index=index):
                    result = worker(task)
    except Exception as err:
        return _TaskOutcome(
            index,
            None,
            telemetry.collect(),
            repr(err),
            traceback.format_exc(),
            reason=REASON_TIMEOUT
            if isinstance(err, TaskTimeoutError)
            else REASON_EXCEPTION,
        )
    return _TaskOutcome(index, result, telemetry.collect(), None)


def _run_guarded(
    worker: Callable[[T], R],
    capture: bool,
    supervisor: Optional[BatchSupervisor],
    pair: Tuple[int, T],
) -> _TaskOutcome:
    """Run one task under supervision, catching failures.

    Module-level (with :func:`functools.partial`) so the pool can
    pickle it.  Without a supervisor this is exactly one unguarded
    attempt — the historical behaviour.  With one, the attempt runs
    under the per-task wall-clock alarm and is retried up to
    ``max_attempts`` times with delays drawn from the retry policy and
    the per-task seeded jitter stream (see the seeding contract in
    :mod:`repro.analysis.supervise`).

    A *fresh* telemetry stream is recorded per attempt and only the
    final attempt's events ship, so a task that eventually succeeds
    emits exactly the events of a task that succeeded first try —
    which is what keeps retried runs canonically identical to clean
    ones.
    """
    index, task = pair
    if supervisor is None:
        return _attempt(worker, capture, None, index, task)
    policy = supervisor.resolve_policy()
    rng = supervisor.task_rng(index)
    reason_counts: Dict[str, int] = {}
    last_delay = 0.0
    attempt = 0
    while True:
        attempt += 1
        outcome = _attempt(
            worker, capture, supervisor.task_timeout, index, task
        )
        outcome.attempts = attempt
        if outcome.error is None:
            return outcome
        reason = outcome.reason
        reason_counts[reason] = reason_counts.get(reason, 0) + 1
        if not policy.should_retry(
            attempt,
            supervisor.max_attempts,
            reason,
            reason_counts[reason],
        ):
            return outcome
        last_delay = policy.delay(attempt, rng, last_delay)
        supervisor.sleep(last_delay)


@dataclass
class BatchReport:
    """Everything one supervised batch produced.

    ``results`` is submission-ordered with ``None`` holes at
    quarantined indices; ``completed`` maps index -> result for the
    successes; ``quarantine`` describes every task the supervisor gave
    up on; ``fleet`` is the coordination report when the batch ran
    under a :mod:`repro.analysis.fleet` coordinator (``None`` for the
    serial and process-pool paths).
    """

    results: List[Any]
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    completed: Dict[int, Any] = field(default_factory=dict)
    fleet: Optional["FleetReport"] = None

    @property
    def missing(self) -> Tuple[int, ...]:
        return tuple(
            i for i, result in enumerate(self.results)
            if i not in self.completed
        )


def _parallel_outcomes(
    worker: Callable[[T], R],
    capture: bool,
    supervisor: Optional[BatchSupervisor],
    todo: Sequence[Tuple[int, T]],
    max_workers: int,
    section: Optional[CheckpointSection],
) -> Dict[int, _TaskOutcome]:
    """Submit-based parallel execution with hung-worker replacement.

    Tasks are submitted individually; when no future completes within
    the supervisor's hang deadline, the still-running tasks are
    declared hung (their workers are beyond the reach of the in-worker
    alarm), the wedged pool is abandoned, and a replacement pool takes
    over the queued work.  A worker process that *dies* (OOM kill,
    segfault) breaks the whole pool; the batch recovers the same way —
    the task observed failing is recorded, everything else resubmits
    to a fresh pool.
    """
    hang = supervisor.effective_hang_timeout() if supervisor else None
    outcomes: Dict[int, _TaskOutcome] = {}
    guarded = partial(_run_guarded, worker, capture, supervisor)
    pool = ProcessPoolExecutor(max_workers=min(max_workers, len(todo)))
    pending: Dict[Any, Tuple[int, T]] = {
        pool.submit(guarded, (index, task)): (index, task)
        for index, task in todo
    }

    def _replace_pool(requeue: List[Tuple[int, T]]) -> None:
        nonlocal pool, pending
        pool.shutdown(wait=False)
        # best-effort kill of the abandoned workers: a hung process
        # would otherwise linger (and block interpreter exit) until its
        # task finished on its own
        for process in dict(getattr(pool, "_processes", None) or {}).values():
            try:
                process.terminate()
            except Exception:
                pass
        pool = ProcessPoolExecutor(
            max_workers=min(max_workers, max(1, len(requeue)))
        )
        pending = {
            pool.submit(guarded, (index, task)): (index, task)
            for index, task in requeue
        }

    try:
        while pending:
            done, not_done = wait(
                set(pending), timeout=hang, return_when=FIRST_COMPLETED
            )
            if done:
                broken: List[Tuple[int, T]] = []
                broken_error: Optional[BaseException] = None
                for future in done:
                    index, task = pending.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as err:
                        broken.append((index, task))
                        broken_error = err
                        continue
                    outcomes[index] = outcome
                    if section is not None and outcome.error is None:
                        section.record(index, outcome.result, outcome.events)
                if broken:
                    # A dead worker process (OOM kill, segfault) poisons
                    # EVERY in-flight future with BrokenProcessPool; we
                    # cannot tell which task actually killed it, so the
                    # earliest broken task takes the blame (quarantined
                    # as a crash) and everything else moves to a
                    # replacement pool.  A genuinely poisonous task
                    # re-breaks the next pool and is blamed eventually.
                    broken.sort()
                    index, task = broken[0]
                    outcomes[index] = _TaskOutcome(
                        index,
                        None,
                        [],
                        f"worker process died: {broken_error!r}",
                        reason=REASON_CRASH,
                    )
                    _replace_pool(
                        broken[1:] + [pending.pop(f) for f in list(pending)]
                    )
                continue
            # stalled: nothing completed within the hang deadline.
            # Queued (cancellable) futures move to a fresh pool; the
            # ones actually running are hung beyond recovery.
            requeue: List[Tuple[int, T]] = []
            for future in list(not_done):
                index, task = pending.pop(future)
                if future.cancel():
                    requeue.append((index, task))
                else:
                    outcomes[index] = _TaskOutcome(
                        index,
                        None,
                        [],
                        f"worker hung: no result within {hang:g}s "
                        "(task abandoned, worker replaced)",
                        reason=REASON_HUNG,
                    )
            _replace_pool(requeue)
    finally:
        pool.shutdown(wait=False)
    return outcomes


def run_batch_report(
    tasks: Iterable[T],
    worker: Callable[[T], R],
    *,
    workers: int = 1,
    chunksize: int = 0,
    telemetry: Optional[Telemetry] = None,
    supervisor: Optional[BatchSupervisor] = None,
    fleet: Optional["FleetConfig"] = None,
) -> BatchReport:
    """Run ``worker`` over ``tasks`` under supervision; never raises
    for task failures unless fail-fast semantics apply.

    ``workers <= 1`` runs serially in-process; otherwise tasks are
    dispatched to a process pool.  Without a ``supervisor`` the
    parallel path uses chunked ``map`` (the historical fast path) and
    the first failing task aborts the batch.  With one, tasks are
    individually supervised (timeout, retry, hang detection) and
    failures are quarantined unless ``supervisor.fail_fast``.

    A ``fleet`` configuration (explicit, or ambient via
    :func:`repro.analysis.fleet.fleet_scope`) replaces the process
    pool with the lease-based coordinator of
    :mod:`repro.analysis.fleet`: long-lived heartbeating workers,
    crash/hang attribution, shard quarantine after repeated worker
    loss, duplicate-result dedup — same submission-order fold, same
    byte-identity contract.

    When an ambient :func:`repro.analysis.checkpoint.checkpointing`
    session is active, this call claims its next checkpoint section:
    completed tasks are recorded (results + telemetry events) as they
    finish, and previously completed or quarantined tasks are restored
    instead of re-run — quarantined tasks are *not* retried on resume;
    rerun without resuming to retry them.

    ``telemetry`` defaults to the ambient sink; when active, each task
    records into its own stream and the events are absorbed here in
    submission order.
    """
    tele = telemetry if telemetry is not None else current()
    capture = tele.enabled
    task_list = list(tasks)
    if fleet is None:
        from repro.analysis.fleet import ambient_fleet

        fleet = ambient_fleet()
    session = ambient_session()
    section: Optional[CheckpointSection] = None
    fingerprint = ""
    if session is not None or fleet is not None:
        fingerprint = batch_fingerprint(worker, task_list)
    if session is not None:
        section = session.section(fingerprint, len(task_list))
    restored: Dict[int, Tuple[Any, List[TelemetryEvent]]] = (
        dict(section.completed) if section is not None else {}
    )
    restored_quarantine: List[QuarantinedTask] = (
        list(section.quarantined) if section is not None else []
    )
    skip = set(restored) | {q.index for q in restored_quarantine}
    with tele.span(
        "batch.run", tasks=len(task_list), workers=workers
    ) as span:
        todo = [
            (i, task) for i, task in enumerate(task_list) if i not in skip
        ]
        outcomes: Dict[int, _TaskOutcome] = {}
        fleet_report: Optional["FleetReport"] = None
        if fleet is not None and len(todo) > 1:
            from repro.analysis.fleet import run_fleet

            span.note(fleet=fleet.workers)
            outcomes, fleet_report = run_fleet(
                worker,
                todo,
                fleet,
                capture=capture,
                supervisor=supervisor,
                section=section,
                fingerprint=fingerprint,
                telemetry=tele,
            )
        elif workers <= 1 or len(todo) <= 1:
            for i, task in todo:
                outcome = _run_guarded(worker, capture, supervisor, (i, task))
                outcomes[i] = outcome
                if section is not None and outcome.error is None:
                    section.record(i, outcome.result, outcome.events)
        elif supervisor is None and section is None:
            # the historical chunked-map fast path, byte for byte
            if chunksize <= 0:
                chunksize = max(1, math.ceil(len(todo) / (workers * 4)))
            span.note(chunksize=chunksize)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(todo))
            ) as pool:
                for outcome in pool.map(
                    partial(_run_guarded, worker, capture, None),
                    todo,
                    chunksize=chunksize,
                ):
                    outcomes[outcome.index] = outcome
        else:
            outcomes = _parallel_outcomes(
                worker, capture, supervisor, todo, workers, section
            )

        # fold everything back in submission order
        report = BatchReport(results=[], fleet=fleet_report)
        for entry in restored_quarantine:
            report.quarantine.add(entry)
        first_failure: Optional[Tuple[_TaskOutcome, T]] = None
        for i, task in enumerate(task_list):
            if i in restored:
                result, events = restored[i]
                if capture:
                    tele.absorb(events)
                report.results.append(result)
                report.completed[i] = result
                continue
            if i not in outcomes:  # restored quarantine entry
                report.results.append(None)
                continue
            outcome = outcomes[i]
            if capture:
                tele.absorb(outcome.events)
            if outcome.error is None:
                report.results.append(outcome.result)
                report.completed[i] = outcome.result
                continue
            report.results.append(None)
            entry = QuarantinedTask(
                index=i,
                task_repr=repr(task),
                reason=outcome.reason,
                error=outcome.error,
                traceback=outcome.error_traceback,
                attempts=outcome.attempts,
            )
            report.quarantine.add(entry)
            if section is not None:
                section.record_quarantine(entry)
            if first_failure is None:
                first_failure = (outcome, task)
        # normalize: restored + fresh entries in one deterministic
        # task-index order, duplicates (a resume replaying a recorded
        # quarantine) collapsed
        report.quarantine = QuarantineReport.merge([report.quarantine])
        fail_fast = supervisor.fail_fast if supervisor is not None else True
        if first_failure is not None and fail_fast:
            outcome, task = first_failure
            raise BatchTaskError(
                f"batch task #{outcome.index} failed: {outcome.error} "
                f"(task={task!r})\n--- worker traceback ---\n"
                f"{outcome.error_traceback}",
                index=outcome.index,
                task=task,
                worker_traceback=outcome.error_traceback,
                completed=report.completed,
                missing=report.missing,
            )
        return report


def run_batch(
    tasks: Iterable[T],
    worker: Callable[[T], R],
    *,
    workers: int = 1,
    chunksize: int = 0,
    telemetry: Optional[Telemetry] = None,
    supervisor: Optional[BatchSupervisor] = None,
) -> List[R]:
    """Run ``worker`` over ``tasks``, results in task order.

    The thin unsupervised veneer over :func:`run_batch_report`: a
    raising worker aborts the batch with :class:`BatchTaskError`
    naming the earliest failing task in submission order — with the
    completed partial results attached (``err.completed`` /
    ``err.missing``) so callers can salvage them.  Pass a
    :class:`~repro.analysis.supervise.BatchSupervisor` with
    ``fail_fast=False`` to quarantine failures instead; quarantined
    positions then come back as ``None``.
    """
    return run_batch_report(
        tasks,
        worker,
        workers=workers,
        chunksize=chunksize,
        telemetry=telemetry,
        supervisor=supervisor,
    ).results


# ----------------------------------------------------------------------
# metrics aggregation
# ----------------------------------------------------------------------
#: how :func:`merge_metrics` folds each :class:`Metrics` dataclass field.
#: Every field MUST appear either here or in :data:`MERGE_EXEMPT_FIELDS`
#: — the regression test iterates ``dataclasses.fields(Metrics)`` so a
#: newly added counter cannot be silently dropped again (the fate of
#: ``static_precheck_skips`` before this table existed).
MERGE_RULES = {
    "commits": "sum",
    "gave_up": "sum",
    "operations": "sum",
    "static_precheck_skips": "sum",
    "static_refute_skips": "sum",
    "response_times": "extend",
    # Horizons ADD: each part observed its components for its own
    # end_time, so the merged capacity is components x sum(end_time).
    # The old ``max`` here made ``availability`` divide N runs' summed
    # downtime by a single run's horizon — reporting availability far
    # below every part's own number.
    "end_time": "sum",
    "components": "max",
    "aborts_by_reason": "sum_map",
    "retries_by_reason": "sum_map",
    "giveups_by_reason": "sum_map",
    "faults_injected": "sum_map",
    "downtime": "sum_map",
}

#: fields intentionally NOT merged (none today; add with a comment why)
MERGE_EXEMPT_FIELDS: frozenset = frozenset()


def merge_metrics(parts: Sequence[Metrics]) -> Metrics:
    """Fold per-run :class:`Metrics` into one aggregate.

    Counters and per-reason/per-kind maps are summed (order-independent
    integer arithmetic); ``components`` takes the max (parts describe
    the same topology); ``end_time`` horizons are summed, so derived
    rates (``availability``, ``throughput``) become time-weighted means
    of the parts — for equal-horizon parts, exactly the mean.  Response
    times are concatenated in the order given — pass ``parts`` in task
    order so derived float statistics are reproducible.

    The fold is table-driven by :data:`MERGE_RULES`; a :class:`Metrics`
    field missing from both the table and :data:`MERGE_EXEMPT_FIELDS`
    raises rather than silently vanishing from sharded reports.
    """
    for spec in dataclasses.fields(Metrics):
        if spec.name not in MERGE_RULES and spec.name not in MERGE_EXEMPT_FIELDS:
            raise ValueError(
                f"Metrics.{spec.name} has no merge rule; add it to "
                "MERGE_RULES or MERGE_EXEMPT_FIELDS in repro.analysis.batch"
            )
    merged = Metrics()
    for part in parts:
        for name, rule in MERGE_RULES.items():
            ours = getattr(merged, name)
            theirs = getattr(part, name)
            if rule == "sum":
                setattr(merged, name, ours + theirs)
            elif rule == "max":
                setattr(merged, name, max(ours, theirs))
            elif rule == "extend":
                ours.extend(theirs)
            elif rule == "sum_map":
                for key, count in theirs.items():
                    ours[key] = ours.get(key, 0) + count
            else:  # pragma: no cover - table invariant
                raise ValueError(f"unknown merge rule {rule!r}")
    return merged


# ----------------------------------------------------------------------
# grid builders (the CLI-facing convenience layer)
# ----------------------------------------------------------------------
@dataclass
class ChaosGridReport:
    """A chaos grid's merged points plus its quarantine report.

    ``points`` aggregates whatever cells completed (a quarantined
    (protocol, seed) cell is simply absent from its protocol's
    average — the per-point ``runs`` says how many survived);
    ``quarantine`` names every cell that did not; ``fleet`` carries
    the coordination report when the grid ran under ``--fleet``.
    """

    points: List[Any]
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    fleet: Optional["FleetReport"] = None


def chaos_grid_report(
    topology,
    protocols: Sequence[str],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    supervisor: Optional[BatchSupervisor] = None,
    **kw,
) -> ChaosGridReport:
    """The (protocol x seed) chaos grid with supervision, one
    :class:`ChaosPoint` per protocol.  Equivalent to calling
    :func:`repro.analysis.protocols.evaluate_protocol_under_faults`
    per protocol, but with every (protocol, seed) cell an independent
    task — so ``workers`` parallelizes across protocols *and* seeds,
    the supervisor's quarantine isolates poisoned cells, and an
    ambient checkpoint session makes the whole grid resumable."""
    from repro.analysis.protocols import chaos_run_task, merge_chaos_runs

    tasks = [
        (topology, protocol, seed, kw)
        for protocol in protocols
        for seed in seeds
    ]
    batch = run_batch_report(
        tasks, chaos_run_task, workers=workers, supervisor=supervisor
    )
    points = []
    per = len(seeds)
    for i, protocol in enumerate(protocols):
        runs = [
            run
            for run in batch.results[i * per:(i + 1) * per]
            if run is not None
        ]
        points.append(
            merge_chaos_runs(
                topology.name,
                protocol,
                kw.get("intensity", 1.0),
                runs,
            )
        )
    return ChaosGridReport(
        points=points, quarantine=batch.quarantine, fleet=batch.fleet
    )


def chaos_grid(
    topology,
    protocols: Sequence[str],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    supervisor: Optional[BatchSupervisor] = None,
    **kw,
):
    """The (protocol x seed) chaos grid — points only; see
    :func:`chaos_grid_report` for the quarantine report."""
    return chaos_grid_report(
        topology,
        protocols,
        seeds,
        workers=workers,
        supervisor=supervisor,
        **kw,
    ).points


def ablation_task(task: Tuple) -> bool:
    """One A1 cell: generate and reduce, with or without forgetting."""
    from repro.core.observed import ObservedOrderOptions
    from repro.core.reduction import reduce_to_roots
    from repro.workloads.generator import generate

    spec, config, forget = task
    recorded = generate(spec, config)
    options = ObservedOrderOptions(forget_nonconflicting=forget)
    return reduce_to_roots(recorded.system, options).succeeded


def compare_front_task(task: Tuple[str, int]) -> str:
    """Load one saved execution and describe its level front — the
    per-file half of ``repro compare``, shipped to a worker so the two
    (potentially expensive) reductions run concurrently."""
    from repro.core.equivalence import front_at_level
    from repro.exceptions import ReductionError
    from repro.io import load

    path, level = task
    system = load(path).system
    try:
        front = front_at_level(system, level)
    except ReductionError as err:
        return f"{path} @ level {level}: NO FRONT ({err})"
    obs = ", ".join(f"{x}<{y}" for x, y in front.observed.pairs())
    return (
        f"{path} @ level {level}: {{{', '.join(front.nodes)}}}\n"
        f"  observed: {obs or '(empty)'}"
    )
