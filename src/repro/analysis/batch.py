"""Parallel batch runner for (config x seed) grids.

Every sweep in the analysis layer — chaos grids, theorem-agreement
ensembles, hierarchy tables, ablations — is embarrassingly parallel:
independent simulator or checker runs whose results are folded into a
summary row.  :func:`run_batch` shards such a grid across a
``ProcessPoolExecutor`` with chunked dispatch.

Determinism contract
--------------------
``run_batch`` returns results **in task-submission order**, whatever
order the workers finish in.  Callers therefore merge results exactly
as the serial loop would have (same iteration order, hence the same
floating-point accumulation order), which makes ``--workers N`` output
bit-identical to ``--workers 1``.  The serial path (``workers <= 1``)
calls the very same worker functions in-process, so it *is* the old
code path, not an approximation of it.

The contract extends to telemetry: when the ambient
:func:`repro.obs.current` sink is active (or one is passed explicitly),
every task runs under its own ``taskNNNN`` stream named by submission
index, serial or sharded alike, and the collected events merge into one
canonical ``(stream, seq)`` order — so a ``--workers 4`` telemetry file
is a stable merge of the per-worker streams, identical (modulo wall
durations) to the serial file.

Failure reporting: a raising worker surfaces as
:class:`repro.exceptions.BatchTaskError` carrying the failing task and
its submission index — ``ProcessPoolExecutor.map`` alone loses which
grid cell died.  The error is raised for the *earliest* failing task in
submission order, another determinism guarantee.

Workers are module-level functions taking one picklable task tuple —
a requirement of the ``fork``/``spawn`` process pool, and the reason
the per-run halves of :mod:`repro.analysis.protocols` et al. are
top-level functions rather than closures.
"""

from __future__ import annotations

import dataclasses
import math
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.exceptions import BatchTaskError
from repro.obs import Telemetry, TelemetryEvent, current, using
from repro.simulator.metrics import Metrics

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class _TaskOutcome:
    """What one guarded worker call ships back (always picklable)."""

    index: int
    result: Any
    events: List[TelemetryEvent]
    error: Optional[str]  # repr of the exception, None on success
    error_traceback: str = ""


def _run_guarded(
    worker: Callable[[T], R],
    capture: bool,
    pair: Tuple[int, T],
) -> _TaskOutcome:
    """Run one task under its own telemetry stream, catching failures.

    Module-level (with :func:`functools.partial`) so the pool can
    pickle it.  ``capture=False`` skips all telemetry plumbing and
    costs one try/except over the bare worker call.
    """
    index, task = pair
    if not capture:
        try:
            return _TaskOutcome(index, worker(task), [], None)
        except Exception as err:
            return _TaskOutcome(
                index, None, [], repr(err), traceback.format_exc()
            )
    telemetry = Telemetry(stream=f"task{index:04d}")
    try:
        with using(telemetry):
            with telemetry.span("batch.task", index=index):
                result = worker(task)
    except Exception as err:
        return _TaskOutcome(
            index, None, telemetry.collect(), repr(err), traceback.format_exc()
        )
    return _TaskOutcome(index, result, telemetry.collect(), None)


def run_batch(
    tasks: Iterable[T],
    worker: Callable[[T], R],
    *,
    workers: int = 1,
    chunksize: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> List[R]:
    """Run ``worker`` over ``tasks``, results in task order.

    ``workers <= 1`` runs serially in-process.  Otherwise the tasks are
    dispatched to a process pool in chunks (default: enough chunks for
    ~4 rounds per worker, amortizing pickling without starving the
    pool).  ``worker`` must be a module-level (picklable) callable.

    ``telemetry`` defaults to the ambient sink; when active, each task
    records into its own stream and the events are absorbed here in
    submission order.  A raising worker aborts the batch with
    :class:`BatchTaskError` naming the earliest failing task.
    """
    tele = telemetry if telemetry is not None else current()
    capture = tele.enabled
    task_list = list(tasks)
    with tele.span(
        "batch.run", tasks=len(task_list), workers=workers
    ) as span:
        if workers <= 1 or len(task_list) <= 1:
            outcomes = [
                _run_guarded(worker, capture, (i, task))
                for i, task in enumerate(task_list)
            ]
        else:
            if chunksize <= 0:
                chunksize = max(
                    1, math.ceil(len(task_list) / (workers * 4))
                )
            span.note(chunksize=chunksize)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(task_list))
            ) as pool:
                outcomes = list(
                    pool.map(
                        partial(_run_guarded, worker, capture),
                        list(enumerate(task_list)),
                        chunksize=chunksize,
                    )
                )
        results: List[R] = []
        for outcome, task in zip(outcomes, task_list):
            if capture:
                tele.absorb(outcome.events)
            if outcome.error is not None:
                raise BatchTaskError(
                    f"batch task #{outcome.index} failed: {outcome.error} "
                    f"(task={task!r})\n--- worker traceback ---\n"
                    f"{outcome.error_traceback}",
                    index=outcome.index,
                    task=task,
                    worker_traceback=outcome.error_traceback,
                )
            results.append(outcome.result)
        return results


# ----------------------------------------------------------------------
# metrics aggregation
# ----------------------------------------------------------------------
#: how :func:`merge_metrics` folds each :class:`Metrics` dataclass field.
#: Every field MUST appear either here or in :data:`MERGE_EXEMPT_FIELDS`
#: — the regression test iterates ``dataclasses.fields(Metrics)`` so a
#: newly added counter cannot be silently dropped again (the fate of
#: ``static_precheck_skips`` before this table existed).
MERGE_RULES = {
    "commits": "sum",
    "gave_up": "sum",
    "operations": "sum",
    "static_precheck_skips": "sum",
    "response_times": "extend",
    # Horizons ADD: each part observed its components for its own
    # end_time, so the merged capacity is components x sum(end_time).
    # The old ``max`` here made ``availability`` divide N runs' summed
    # downtime by a single run's horizon — reporting availability far
    # below every part's own number.
    "end_time": "sum",
    "components": "max",
    "aborts_by_reason": "sum_map",
    "retries_by_reason": "sum_map",
    "giveups_by_reason": "sum_map",
    "faults_injected": "sum_map",
    "downtime": "sum_map",
}

#: fields intentionally NOT merged (none today; add with a comment why)
MERGE_EXEMPT_FIELDS: frozenset = frozenset()


def merge_metrics(parts: Sequence[Metrics]) -> Metrics:
    """Fold per-run :class:`Metrics` into one aggregate.

    Counters and per-reason/per-kind maps are summed (order-independent
    integer arithmetic); ``components`` takes the max (parts describe
    the same topology); ``end_time`` horizons are summed, so derived
    rates (``availability``, ``throughput``) become time-weighted means
    of the parts — for equal-horizon parts, exactly the mean.  Response
    times are concatenated in the order given — pass ``parts`` in task
    order so derived float statistics are reproducible.

    The fold is table-driven by :data:`MERGE_RULES`; a :class:`Metrics`
    field missing from both the table and :data:`MERGE_EXEMPT_FIELDS`
    raises rather than silently vanishing from sharded reports.
    """
    for spec in dataclasses.fields(Metrics):
        if spec.name not in MERGE_RULES and spec.name not in MERGE_EXEMPT_FIELDS:
            raise ValueError(
                f"Metrics.{spec.name} has no merge rule; add it to "
                "MERGE_RULES or MERGE_EXEMPT_FIELDS in repro.analysis.batch"
            )
    merged = Metrics()
    for part in parts:
        for name, rule in MERGE_RULES.items():
            ours = getattr(merged, name)
            theirs = getattr(part, name)
            if rule == "sum":
                setattr(merged, name, ours + theirs)
            elif rule == "max":
                setattr(merged, name, max(ours, theirs))
            elif rule == "extend":
                ours.extend(theirs)
            elif rule == "sum_map":
                for key, count in theirs.items():
                    ours[key] = ours.get(key, 0) + count
            else:  # pragma: no cover - table invariant
                raise ValueError(f"unknown merge rule {rule!r}")
    return merged


# ----------------------------------------------------------------------
# grid builders (the CLI-facing convenience layer)
# ----------------------------------------------------------------------
def chaos_grid(
    topology,
    protocols: Sequence[str],
    seeds: Sequence[int],
    *,
    workers: int = 1,
    **kw,
):
    """The (protocol x seed) chaos grid, one :class:`ChaosPoint` per
    protocol.  Equivalent to calling
    :func:`repro.analysis.protocols.evaluate_protocol_under_faults`
    per protocol, but with every (protocol, seed) cell an independent
    task — so ``workers`` parallelizes across protocols *and* seeds."""
    from repro.analysis.protocols import chaos_run_task, merge_chaos_runs

    tasks = [
        (topology, protocol, seed, kw)
        for protocol in protocols
        for seed in seeds
    ]
    runs = run_batch(tasks, chaos_run_task, workers=workers)
    points = []
    per = len(seeds)
    for i, protocol in enumerate(protocols):
        points.append(
            merge_chaos_runs(
                topology.name,
                protocol,
                kw.get("intensity", 1.0),
                runs[i * per:(i + 1) * per],
            )
        )
    return points


def ablation_task(task: Tuple) -> bool:
    """One A1 cell: generate and reduce, with or without forgetting."""
    from repro.core.observed import ObservedOrderOptions
    from repro.core.reduction import reduce_to_roots
    from repro.workloads.generator import generate

    spec, config, forget = task
    recorded = generate(spec, config)
    options = ObservedOrderOptions(forget_nonconflicting=forget)
    return reduce_to_roots(recorded.system, options).succeeded


def compare_front_task(task: Tuple[str, int]) -> str:
    """Load one saved execution and describe its level front — the
    per-file half of ``repro compare``, shipped to a worker so the two
    (potentially expensive) reductions run concurrently."""
    from repro.core.equivalence import front_at_level
    from repro.exceptions import ReductionError
    from repro.io import load

    path, level = task
    system = load(path).system
    try:
        front = front_at_level(system, level)
    except ReductionError as err:
        return f"{path} @ level {level}: NO FRONT ({err})"
    obs = ", ".join(f"{x}<{y}" for x, y in front.observed.pairs())
    return (
        f"{path} @ level {level}: {{{', '.join(front.nodes)}}}\n"
        f"  observed: {obs or '(empty)'}"
    )
