"""Plain-text table rendering for benchmark output.

The benchmark harness prints the paper-artifact tables to stdout; this
keeps the formatting in one place and deterministic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def banner(title: str) -> str:
    """A section banner used by every benchmark."""
    rule = "=" * max(len(title), 8)
    return f"\n{rule}\n{title}\n{rule}"
