"""One-shot consolidated experiment report.

``build_report()`` runs every paper artifact (figures F1–F4, theorem
validations T1–T4, the H1 hierarchy, the P2 scaling sweep, the A1
ablation, and optionally the P1 protocol study, which dominates the
runtime) and renders a single Markdown document — the programmatic
source for the numbers in EXPERIMENTS.md.  Available on the command
line as ``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import List

from repro import __version__
from repro.analysis.hierarchy import (
    HIERARCHY,
    run_hierarchy_experiment,
    total_violations,
)
from repro.analysis.scaling import checker_scaling
from repro.analysis.theorems import (
    theorem1_experiment,
    theorem2_rows,
    theorem3_rows,
    theorem4_rows,
)
from repro.core.correctness import check_composite_correctness
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import reduce_to_roots
from repro.figures import (
    figure1_system,
    figure2_system,
    figure3_system,
    figure4_system,
)
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


def _md_table(headers: List[str], rows: List[List[object]]) -> str:
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def build_report(
    *,
    trials: int = 30,
    include_protocols: bool = False,
    seed: int = 0,
) -> str:
    """Run everything and return the Markdown report text."""
    start = time.perf_counter()
    sections: List[str] = [
        f"# composite-tx experiment report (v{__version__})",
        "",
        f"ensemble size: {trials} instances per cell; seed base {seed}.",
    ]

    # ----- figures ------------------------------------------------------
    fig_rows = []
    for number, factory in (
        (1, figure1_system),
        (2, figure2_system),
        (3, figure3_system),
        (4, figure4_system),
    ):
        report = check_composite_correctness(factory())
        fig_rows.append(
            [
                f"Figure {number}",
                "Comp-C" if report.correct else "NOT Comp-C",
                " << ".join(report.serial_witness)
                if report.correct
                else report.failure.describe(),
            ]
        )
    sections += [
        "",
        "## Figures (F1–F4)",
        "",
        _md_table(["artifact", "verdict", "witness / counterexample"], fig_rows),
    ]

    # ----- theorem 1 ----------------------------------------------------
    t1 = theorem1_experiment(trials=trials, seed=seed)
    sections += [
        "",
        "## Theorem 1 (T1): Comp-C ⇔ level-N front, constructive",
        "",
        _md_table(
            ["configuration", "instances", "accepted", "witnesses", "certificates", "valid"],
            [
                [
                    r.label,
                    r.trials,
                    r.accepted,
                    f"{r.witnesses_valid}/{r.accepted}",
                    f"{r.certificates_valid}/{r.trials - r.accepted}",
                    "yes" if r.all_valid else "NO",
                ]
                for r in t1
            ],
        ),
    ]

    # ----- theorems 2-4 -------------------------------------------------
    for title, rows in (
        ("Theorem 2 (T2): SCC ⇔ Comp-C on stacks", theorem2_rows(trials=trials, seed=seed)),
        ("Theorem 3 (T3): FCC ⇔ Comp-C on forks", theorem3_rows(trials=trials, seed=seed)),
        ("Theorem 4 (T4): JCC ⇔ Comp-C on joins", theorem4_rows(trials=trials, seed=seed)),
    ):
        sections += [
            "",
            f"## {title}",
            "",
            _md_table(
                ["configuration", "instances", "agreements", "accepted"],
                [[r.label, r.trials, r.agreements, r.accepted] for r in rows],
            ),
        ]

    # ----- hierarchy ----------------------------------------------------
    h1 = run_hierarchy_experiment(trials=trials, seed=seed)
    sections += [
        "",
        "## Hierarchy (H1): LLSR, OPSR ⊊ SCC = Comp-C",
        "",
        _md_table(
            ["conflict rate"] + list(HIERARCHY),
            [
                [row.conflict_probability]
                + [f"{row.accepted[c]}/{row.trials}" for c in HIERARCHY]
                for row in h1
            ],
        ),
        "",
        f"containment violations: **{total_violations(h1)}**",
    ]

    # ----- scaling ------------------------------------------------------
    scaling = checker_scaling(root_counts=(2, 8, 32), repeats=2)
    sections += [
        "",
        "## Checker cost (P2)",
        "",
        _md_table(
            ["point", "nodes", "time (ms)"],
            [
                [p.label, p.operations, f"{p.seconds * 1000:.2f}"]
                for p in scaling
            ],
        ),
    ]

    # ----- ablation -----------------------------------------------------
    ensemble = [
        generate(
            stack_topology(2),
            WorkloadConfig(seed=seed + i, conflict_probability=0.2),
        )
        for i in range(trials)
    ]
    base = sum(reduce_to_roots(r.system).succeeded for r in ensemble)
    no_forget = sum(
        reduce_to_roots(
            r.system, ObservedOrderOptions(forget_nonconflicting=False)
        ).succeeded
        for r in ensemble
    )
    sections += [
        "",
        "## Ablation (A1): the forgetting rule",
        "",
        _md_table(
            ["variant", "accepted", "of"],
            [
                ["paper semantics", base, len(ensemble)],
                ["no forgetting (LLSR-like)", no_forget, len(ensemble)],
            ],
        ),
    ]

    # ----- protocols (optional: slow) ------------------------------------
    if include_protocols:
        from repro.analysis.protocols import evaluate_protocol
        from repro.workloads.topologies import join_topology

        rows = []
        for protocol in ("cc", "s2pl", "sgt", "to"):
            p = evaluate_protocol(
                join_topology(3), protocol, clients=4, seeds=(seed, seed + 1)
            )
            rows.append(
                [
                    p.protocol,
                    f"{p.throughput:.3f}",
                    f"{p.abort_rate:.3f}",
                    f"{p.comp_c_runs}/{p.runs}",
                ]
            )
        sections += [
            "",
            "## Protocols on the join (P1 excerpt)",
            "",
            _md_table(
                ["protocol", "throughput", "abort rate", "Comp-C runs"], rows
            ),
        ]

    elapsed = time.perf_counter() - start
    sections += ["", f"_generated in {elapsed:.1f}s_", ""]
    return "\n".join(sections)
