"""Decision-procedure cost measurements (the P2 artifact).

Times the Comp-C reduction against growing histories (more composite
transactions, hence more operations per schedule) and growing system
order (deeper stacks).  The checker is polynomial — the dominating costs
are the transitive closures and the per-level quotient tests — and the
measured curve should look near-quadratic in the operation count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.reduction import reduce_to_roots
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    TopologySpec,
    random_dag_topology,
    stack_topology,
    tree_topology,
)


@dataclass
class ScalingPoint:
    """One size point: problem size vs checker wall time."""

    label: str
    operations: int  # total nodes in the system
    seconds: float
    accepted: bool


def _count_nodes(system) -> int:
    return sum(1 for _ in system.all_nodes())


def checker_scaling(
    *,
    root_counts: Sequence[int] = (2, 4, 8, 16, 32),
    depth: int = 2,
    conflict_probability: float = 0.03,
    seed: int = 0,
    repeats: int = 3,
) -> List[ScalingPoint]:
    """Wall time vs history size at fixed depth."""
    points: List[ScalingPoint] = []
    spec = stack_topology(depth)
    for roots in root_counts:
        recorded = generate(
            spec,
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=conflict_probability,
                layout="random",
            ),
        )
        best = float("inf")
        accepted = False
        for _ in range(repeats):
            start = time.perf_counter()
            result = reduce_to_roots(recorded.system)
            best = min(best, time.perf_counter() - start)
            accepted = result.succeeded
        points.append(
            ScalingPoint(
                label=f"{roots} roots @ depth {depth}",
                operations=_count_nodes(recorded.system),
                seconds=best,
                accepted=accepted,
            )
        )
    return points


def depth_scaling(
    *,
    depths: Sequence[int] = (2, 3, 4, 5),
    roots: int = 6,
    conflict_probability: float = 0.03,
    seed: int = 0,
    repeats: int = 3,
) -> List[ScalingPoint]:
    """Wall time vs system order at fixed root count."""
    points: List[ScalingPoint] = []
    for depth in depths:
        recorded = generate(
            stack_topology(depth),
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=conflict_probability,
                layout="random",
            ),
        )
        best = float("inf")
        accepted = False
        for _ in range(repeats):
            start = time.perf_counter()
            result = reduce_to_roots(recorded.system)
            best = min(best, time.perf_counter() - start)
            accepted = result.succeeded
        points.append(
            ScalingPoint(
                label=f"depth {depth} @ {roots} roots",
                operations=_count_nodes(recorded.system),
                seconds=best,
                accepted=accepted,
            )
        )
    return points


# ----------------------------------------------------------------------
# incremental-vs-scratch and serial-vs-parallel speedups (PR 2)
# ----------------------------------------------------------------------
@dataclass
class SpeedupPoint:
    """One topology's incremental-vs-from-scratch measurement."""

    label: str
    operations: int
    scratch_seconds: float
    incremental_seconds: float
    scratch_rows: int
    incremental_rows: int
    verdicts_match: bool  # narratives byte-identical across both engines

    @property
    def speedup(self) -> float:
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.scratch_seconds / self.incremental_seconds


def _speedup_specs() -> List[Tuple[TopologySpec, int, float]]:
    """Deep topologies where per-level reuse has something to reuse.

    Serial layouts are Comp-C by construction, so every level actually
    runs (a rejected level-0 front would measure nothing)."""
    return [
        (stack_topology(5), 12, 0.02),
        (random_dag_topology(5, 3, seed=2), 6, 0.03),
        (random_dag_topology(6, 3, seed=2), 6, 0.03),
        (tree_topology(5, 2), 8, 0.03),
    ]


def incremental_speedup(
    *,
    repeats: int = 3,
    seed: int = 1,
    specs: Optional[List[Tuple[TopologySpec, int, float]]] = None,
) -> List[SpeedupPoint]:
    """Time the reduction with ``incremental=False`` vs ``True`` on
    deep serial-layout workloads, recording closure-row counts and
    verifying the two engines agree output-byte for output-byte."""
    points: List[SpeedupPoint] = []
    for spec, roots, rate in specs or _speedup_specs():
        recorded = generate(
            spec,
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=rate,
                layout="serial",
            ),
        )
        timing = {}
        rows = {}
        narratives = {}
        for incremental in (False, True):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                result = reduce_to_roots(
                    recorded.system, incremental=incremental
                )
                best = min(best, time.perf_counter() - start)
            timing[incremental] = best
            rows[incremental] = int(
                result.profile_totals()["closure_rows"]
            )
            narratives[incremental] = result.narrative()
        points.append(
            SpeedupPoint(
                label=spec.name,
                operations=_count_nodes(recorded.system),
                scratch_seconds=timing[False],
                incremental_seconds=timing[True],
                scratch_rows=rows[False],
                incremental_rows=rows[True],
                verdicts_match=narratives[False] == narratives[True],
            )
        )
    return points


@dataclass
class ClosurePathPoint:
    """Per-depth cost of maintaining the observed order's closure under
    the streaming (online) formulation.

    The ROADMAP's blocked scale items (streaming checking, saturation
    sweeps) all reduce to one kernel question: as observed pairs arrive
    in batches, is it cheaper to *maintain* the transitive closure
    (:meth:`Relation.add_closed` on the standing closed order) than to
    re-saturate from scratch after every batch
    (:meth:`Relation.transitive_closure`)?  Both paths are timed over
    the same real workload: the level-0 observed seed pairs of a
    depth-``d`` stack, replayed in arrival order.  Each path yields an
    up-to-date closed order after every batch — exactly what an online
    checker must query.
    """

    depth: int
    operations: int  # leaf operations of the streamed front
    batches: int
    pairs: int
    incremental_seconds: float
    scratch_seconds: float

    @property
    def speedup(self) -> float:
        if self.incremental_seconds <= 0:
            return float("inf")
        return self.scratch_seconds / self.incremental_seconds


def closure_path_speedup(
    *,
    depths: Sequence[int] = (2, 3, 4, 5),
    roots: int = 12,
    conflict_probability: float = 0.02,
    seed: int = 1,
    batch_size: int = 16,
    repeats: int = 3,
) -> List[ClosurePathPoint]:
    """Incremental vs from-scratch closure maintenance, per stack depth.

    For every depth, stream the level-0 observed seed pairs of the P2
    workload in ``batch_size`` chunks and keep a transitively closed
    order current after every chunk, once with the incremental kernel
    (``add_closed`` delta propagation on the standing closure) and once
    by re-closing from scratch per chunk.  Wall time is best-of
    ``repeats``; both paths are verified to end in the same relation.
    """
    from repro.core.observed import seed_observed_pairs
    from repro.core.orders import Relation

    points: List[ClosurePathPoint] = []
    for depth in depths:
        recorded = generate(
            stack_topology(depth),
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=conflict_probability,
                layout="serial",
            ),
        )
        leaves = tuple(recorded.system.leaves)
        pairs = list(seed_observed_pairs(recorded.system, leaves))
        batches = [
            pairs[i : i + batch_size]
            for i in range(0, len(pairs), batch_size)
        ] or [[]]
        inc_best = float("inf")
        scratch_best = float("inf")
        inc_final = scratch_final = None
        for _ in range(repeats):
            maintained = Relation(elements=leaves)
            start = time.perf_counter()
            for batch in batches:
                maintained.add_closed(batch)
            inc_best = min(inc_best, time.perf_counter() - start)
            inc_final = maintained

            accumulated = Relation(elements=leaves)
            closed = accumulated
            start = time.perf_counter()
            for batch in batches:
                accumulated.add_all(batch)
                closed = accumulated.transitive_closure()
            scratch_best = min(scratch_best, time.perf_counter() - start)
            scratch_final = closed
        assert inc_final == scratch_final, "closure paths diverged"
        points.append(
            ClosurePathPoint(
                depth=depth,
                operations=len(leaves),
                batches=len(batches),
                pairs=len(pairs),
                incremental_seconds=inc_best,
                scratch_seconds=scratch_best,
            )
        )
    return points


@dataclass
class SweepSpeedup:
    """Wall time of one multi-seed sweep, serial vs ``workers`` procs."""

    label: str
    tasks: int
    workers: int
    serial_seconds: float
    parallel_seconds: float
    identical: bool  # merged results equal across both paths

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.parallel_seconds


def sweep_speedup(
    *,
    workers: int = 2,
    protocols: Sequence[str] = ("cc", "s2pl"),
    seeds: Sequence[int] = (0, 1, 2, 3),
    depth: int = 2,
    **kw,
) -> SweepSpeedup:
    """Run the same chaos grid serially and with ``workers`` processes,
    timing both and checking the merged points are equal — the
    determinism contract of :mod:`repro.analysis.batch`, measured."""
    from repro.analysis.batch import chaos_grid

    spec = stack_topology(depth)
    start = time.perf_counter()
    serial = chaos_grid(spec, protocols, seeds, workers=1, **kw)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = chaos_grid(spec, protocols, seeds, workers=workers, **kw)
    parallel_seconds = time.perf_counter() - start
    return SweepSpeedup(
        label=f"chaos {len(protocols)}x{len(seeds)} @ stack {depth}",
        tasks=len(protocols) * len(seeds),
        workers=workers,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        identical=serial == parallel,
    )
