"""Decision-procedure cost measurements (the P2 artifact).

Times the Comp-C reduction against growing histories (more composite
transactions, hence more operations per schedule) and growing system
order (deeper stacks).  The checker is polynomial — the dominating costs
are the transitive closures and the per-level quotient tests — and the
measured curve should look near-quadratic in the operation count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.reduction import reduce_to_roots
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


@dataclass
class ScalingPoint:
    """One size point: problem size vs checker wall time."""

    label: str
    operations: int  # total nodes in the system
    seconds: float
    accepted: bool


def _count_nodes(system) -> int:
    return sum(1 for _ in system.all_nodes())


def checker_scaling(
    *,
    root_counts: Sequence[int] = (2, 4, 8, 16, 32),
    depth: int = 2,
    conflict_probability: float = 0.03,
    seed: int = 0,
    repeats: int = 3,
) -> List[ScalingPoint]:
    """Wall time vs history size at fixed depth."""
    points: List[ScalingPoint] = []
    spec = stack_topology(depth)
    for roots in root_counts:
        recorded = generate(
            spec,
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=conflict_probability,
                layout="random",
            ),
        )
        best = float("inf")
        accepted = False
        for _ in range(repeats):
            start = time.perf_counter()
            result = reduce_to_roots(recorded.system)
            best = min(best, time.perf_counter() - start)
            accepted = result.succeeded
        points.append(
            ScalingPoint(
                label=f"{roots} roots @ depth {depth}",
                operations=_count_nodes(recorded.system),
                seconds=best,
                accepted=accepted,
            )
        )
    return points


def depth_scaling(
    *,
    depths: Sequence[int] = (2, 3, 4, 5),
    roots: int = 6,
    conflict_probability: float = 0.03,
    seed: int = 0,
    repeats: int = 3,
) -> List[ScalingPoint]:
    """Wall time vs system order at fixed root count."""
    points: List[ScalingPoint] = []
    for depth in depths:
        recorded = generate(
            stack_topology(depth),
            WorkloadConfig(
                seed=seed,
                roots=roots,
                conflict_probability=conflict_probability,
                layout="random",
            ),
        )
        best = float("inf")
        accepted = False
        for _ in range(repeats):
            start = time.perf_counter()
            result = reduce_to_roots(recorded.system)
            best = min(best, time.perf_counter() - start)
            accepted = result.succeeded
        points.append(
            ScalingPoint(
                label=f"depth {depth} @ {roots} roots",
                operations=_count_nodes(recorded.system),
                seconds=best,
                accepted=accepted,
            )
        )
    return points
