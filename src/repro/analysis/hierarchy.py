"""Criteria-hierarchy experiments (the H1 artifact).

§4 of the paper claims LLSR, MLSR and OPSR are all *proper* subsets of
SCC (= Comp-C on stacks).  This module measures that claim on random
stack ensembles: for each conflict rate it computes the acceptance rate
of every criterion and counts containment violations — which must be
zero for

    OPSR ⊆ SCC = Comp-C   and   LLSR ⊆ SCC = Comp-C.

(The paper does not order LLSR against OPSR, and indeed neither contains
the other: LLSR forgives layout, OPSR forgives cross-level conflict
pull-ups.)

The ``serial`` row is a descriptive layout statistic, not a criterion:
per-schedule seriality of the *layout* does not imply OPSR or LLSR once
commuting transactions have been reordered across schedules — a
per-schedule-serial layout can still contradict an input order or
another schedule's serialization, both of which are invisible locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.batch import run_batch
from repro.core.correctness import is_composite_correct
from repro.criteria.llsr import is_llsr
from repro.criteria.opsr import is_opsr
from repro.criteria.registry import RecordedExecution
from repro.criteria.stack import is_scc
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

#: the criteria measured, narrowest-to-widest along the chain that is
#: actually ordered
HIERARCHY = ("serial", "llsr", "opsr", "scc", "comp_c")

#: containments the paper asserts (must never be violated)
CONTAINMENTS: Tuple[Tuple[str, str], ...] = (
    ("opsr", "scc"),
    ("llsr", "scc"),
    ("scc", "comp_c"),
    ("comp_c", "scc"),  # Theorem 2: equality on stacks
)


@dataclass
class HierarchyRow:
    """One parameter point of the acceptance-rate table."""

    conflict_probability: float
    trials: int
    accepted: Dict[str, int] = field(default_factory=dict)
    violations: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def rate(self, criterion: str) -> float:
        return self.accepted.get(criterion, 0) / self.trials if self.trials else 0.0


def judge(recorded: RecordedExecution) -> Dict[str, bool]:
    """All hierarchy verdicts for one stack execution."""
    system = recorded.system
    return {
        "serial": recorded.is_serial_layout(),
        "llsr": is_llsr(system),
        "opsr": is_opsr(system, recorded.executions),
        "scc": is_scc(system),
        "comp_c": is_composite_correct(system),
    }


def hierarchy_task(task: Tuple) -> Dict[str, bool]:
    """Batch worker: generate one stack execution and judge it."""
    spec, config = task
    return judge(generate(spec, config))


def run_hierarchy_experiment(
    *,
    depth: int = 2,
    roots: int = 3,
    conflict_rates: Sequence[float] = (0.05, 0.15, 0.3, 0.5),
    trials: int = 40,
    seed: int = 0,
    layout: str = "random",
    perturbation_swaps: int = 8,
    ops_per_transaction: Tuple[int, int] = (1, 3),
    workers: int = 1,
) -> List[HierarchyRow]:
    """Acceptance rates per criterion per conflict rate."""
    spec = stack_topology(depth)
    tasks = [
        (
            spec,
            WorkloadConfig(
                seed=seed + i,
                roots=roots,
                conflict_probability=rate,
                layout=layout,
                perturbation_swaps=perturbation_swaps,
                ops_per_transaction=ops_per_transaction,
            ),
        )
        for rate in conflict_rates
        for i in range(trials)
    ]
    results = run_batch(tasks, hierarchy_task, workers=workers)
    rows: List[HierarchyRow] = []
    for r, rate in enumerate(conflict_rates):
        row = HierarchyRow(conflict_probability=rate, trials=trials)
        row.accepted = {name: 0 for name in HIERARCHY}
        row.violations = {pair: 0 for pair in CONTAINMENTS}
        for verdicts in results[r * trials:(r + 1) * trials]:
            for name, verdict in verdicts.items():
                if verdict:
                    row.accepted[name] += 1
            for narrow, wide in CONTAINMENTS:
                if verdicts[narrow] and not verdicts[wide]:
                    row.violations[(narrow, wide)] += 1
        rows.append(row)
    return rows


def total_violations(rows: Sequence[HierarchyRow]) -> int:
    return sum(sum(row.violations.values()) for row in rows)
