"""Atomic, schema-versioned checkpoints for batch runs.

A long (config x seed) grid — the chaos and experiment sweeps — should
survive being killed.  A :class:`CheckpointSession` records every
completed task of every :func:`repro.analysis.batch.run_batch_report`
call under it (result, telemetry events, quarantine entries) into one
JSON document, rewritten atomically (write-then-fsync-then-rename, the
same discipline as :func:`repro.obs.sink.atomic_write_text`) so a
SIGKILL at any instant leaves either the previous or the next complete
checkpoint on disk, never a torn one.

Resuming (``composite-tx resume CHECKPOINT``, or ``--resume-from`` on
the grid commands) replays the session: each ``run_batch_report`` call
claims the next checkpoint *section* in call order, verifies its
fingerprint (a digest of the worker and the task list — resuming a
checkpoint into a different grid is refused, not mis-merged), skips
the completed tasks, and re-absorbs their recorded telemetry.  Because
the batch layer merges in submission order regardless of which tasks
actually ran, a resumed run's merged metrics and canonical telemetry
are byte-identical to an uninterrupted run's.

Results are stored with a small typed codec (scalars, lists, tuples,
sets, string-keyed mappings, packed-bitset relations, and dataclasses
by qualified name) — the shapes batch workers return, and, since the
stream recovery layer (:mod:`repro.stream.snapshot`) reuses the same
codec, the shapes inside a live checker's state.  Floats survive the
JSON round trip exactly (``repr`` shortest-round-trip), which the
byte-identity contract relies on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.supervise import QuarantinedTask
from repro.core.orders import Relation
from repro.exceptions import CheckpointError
from repro.obs import TelemetryEvent, atomic_write_text, to_record

#: bump when the checkpoint document shape changes incompatibly
CHECKPOINT_VERSION = 1

_KIND = "__kind__"


# ----------------------------------------------------------------------
# value codec (worker results -> JSON and back)
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode a worker result for the checkpoint document."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _KIND not in value:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _KIND: "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    if isinstance(value, (set, frozenset)):
        # Canonical member order: sets have no order of their own, and
        # the snapshot layer hashes encoded documents — sorting by the
        # JSON image makes equal sets encode byte-identically.
        items = sorted(
            (encode_value(v) for v in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
        return {_KIND: "set", "items": items}
    if isinstance(value, Relation):
        # The packed-bitset native state, verbatim: nodes in interned
        # order plus one hex successor bitmap per node, so a decoded
        # relation is *internally* identical (same interning, same
        # rows) — the property the stream snapshot's byte-for-byte
        # resume contract needs, not just pair-set equality.
        return {
            _KIND: "relation",
            "nodes": list(value.elements),
            "rows": [format(value.row_bits(e), "x") for e in value.elements],
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _KIND: "dataclass",
            "type": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                spec.name: encode_value(getattr(value, spec.name))
                for spec in dataclasses.fields(value)
            },
        }
    raise CheckpointError(
        f"cannot checkpoint a value of type {type(value).__name__}: "
        "batch results must be JSON scalars, lists, tuples, sets, "
        "str-keyed dicts, relations, or dataclasses thereof"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, dict):
        return value
    kind = value.get(_KIND)
    if kind is None:
        return {k: decode_value(v) for k, v in value.items()}
    if kind == "tuple":
        return tuple(decode_value(v) for v in value["items"])
    if kind == "set":
        return {decode_value(v) for v in value["items"]}
    if kind == "relation":
        nodes = [str(n) for n in value["nodes"]]
        rows = [int(str(r), 16) for r in value["rows"]]
        if len(rows) != len(nodes):
            raise CheckpointError(
                "relation state is torn: "
                f"{len(nodes)} nodes but {len(rows)} rows"
            )
        return Relation._from_state(nodes, rows, None)
    if kind == "dict":
        return {
            decode_value(k): decode_value(v) for k, v in value["items"]
        }
    if kind == "dataclass":
        module_name, _, qualname = str(value["type"]).partition(":")
        try:
            module = importlib.import_module(module_name)
            cls: Any = module
            for part in qualname.split("."):
                cls = getattr(cls, part)
        except (ImportError, AttributeError) as err:
            raise CheckpointError(
                f"checkpoint references unknown type {value['type']!r}: {err}"
            ) from err
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise CheckpointError(
                f"checkpoint type {value['type']!r} is not a dataclass"
            )
        fields = {
            name: decode_value(v) for name, v in value["fields"].items()
        }
        return cls(**fields)
    raise CheckpointError(f"unknown checkpoint value kind {kind!r}")


def _events_to_records(events: Sequence[TelemetryEvent]) -> List[Dict[str, Any]]:
    return [to_record(event) for event in events]


def _events_from_records(
    records: Sequence[Dict[str, Any]],
) -> List[TelemetryEvent]:
    out: List[TelemetryEvent] = []
    for record in records:
        fields = record.get("fields", {})
        out.append(
            TelemetryEvent(
                stream=str(record["stream"]),
                seq=int(record["seq"]),
                kind=str(record["kind"]),
                name=str(record["name"]),
                depth=int(record["depth"]),
                dur_s=record.get("dur_s"),
                fields=tuple(sorted(fields.items())),
            )
        )
    return out


def batch_fingerprint(worker: Callable[..., Any], tasks: Sequence[Any]) -> str:
    """Digest identifying one batch: the worker's qualified name plus
    every task's ``repr``.  Stable across processes and runs (task
    objects here are dataclasses, tuples, and scalars with
    deterministic reprs), so a resumed grid either matches exactly or
    is refused."""
    digest = hashlib.sha256()
    name = f"{getattr(worker, '__module__', '?')}." f"{getattr(worker, '__qualname__', repr(worker))}"
    digest.update(name.encode("utf-8"))
    digest.update(str(len(tasks)).encode("ascii"))
    for task in tasks:
        digest.update(b"\x00")
        digest.update(repr(task).encode("utf-8", "replace"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# the session and its per-batch sections
# ----------------------------------------------------------------------
class CheckpointSection:
    """The checkpoint state of one ``run_batch_report`` call."""

    def __init__(
        self,
        session: "CheckpointSession",
        fingerprint: str,
        total: int,
        completed: Dict[int, Tuple[Any, List[TelemetryEvent]]],
        quarantined: List[QuarantinedTask],
    ) -> None:
        self._session = session
        self.fingerprint = fingerprint
        self.total = total
        #: index -> (decoded result, restored telemetry events)
        self.completed = completed
        self.quarantined = quarantined

    def record(
        self, index: int, result: Any, events: Sequence[TelemetryEvent]
    ) -> None:
        """Record one finished task and let the session flush."""
        self.completed[index] = (result, list(events))
        self._session.task_recorded()

    def record_quarantine(self, entry: QuarantinedTask) -> None:
        self.quarantined.append(entry)
        self.quarantined.sort(key=lambda e: e.index)
        self._session.flush()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "total": self.total,
            "completed": [
                {
                    "index": index,
                    "result": encode_value(result),
                    "events": _events_to_records(events),
                }
                for index, (result, events) in sorted(self.completed.items())
            ],
            "quarantined": [entry.to_dict() for entry in self.quarantined],
        }


class CheckpointSession:
    """One checkpoint file shared by every batch of one command run.

    ``interval`` controls flush cadence: the document is rewritten
    atomically after every ``interval`` completed tasks (and always
    when the session closes or a task is quarantined).
    """

    def __init__(
        self,
        path: str,
        *,
        argv: Sequence[str] = (),
        interval: int = 1,
    ) -> None:
        self.path = path
        self.argv = list(argv)
        self.interval = max(1, interval)
        self.completed_ok = False
        self._sections: List[CheckpointSection] = []
        self._restored: List[Dict[str, Any]] = []
        self._pending = 0

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls, path: str, *, interval: int = 1
    ) -> "CheckpointSession":
        """Open an existing checkpoint for resumption."""
        document = read_checkpoint(path)
        session = cls(
            path, argv=[str(a) for a in document.get("argv", [])],
            interval=interval,
        )
        sections = document.get("sections", [])
        if not isinstance(sections, list):
            raise CheckpointError(f"{path}: 'sections' is not a list")
        session._restored = sections
        return session

    # ------------------------------------------------------------------
    def section(self, fingerprint: str, total: int) -> CheckpointSection:
        """Claim the next section (in call order) for a batch of
        ``total`` tasks with ``fingerprint``.

        On resume, the section restores the matching recorded state; a
        fingerprint or size mismatch means the command being resumed is
        not the command that wrote the checkpoint, and is refused.
        """
        position = len(self._sections)
        completed: Dict[int, Tuple[Any, List[TelemetryEvent]]] = {}
        quarantined: List[QuarantinedTask] = []
        if position < len(self._restored):
            raw = self._restored[position]
            recorded_fp = raw.get("fingerprint")
            recorded_total = raw.get("total")
            if recorded_fp != fingerprint or recorded_total != total:
                raise CheckpointError(
                    f"{self.path}: section {position} was written by a "
                    f"different grid (fingerprint {recorded_fp!r} over "
                    f"{recorded_total!r} tasks, resuming grid has "
                    f"{fingerprint!r} over {total}); refusing to resume"
                )
            for item in raw.get("completed", []):
                completed[int(item["index"])] = (
                    decode_value(item.get("result")),
                    _events_from_records(item.get("events", [])),
                )
            quarantined = [
                QuarantinedTask.from_dict(q)
                for q in raw.get("quarantined", [])
            ]
        section = CheckpointSection(
            self, fingerprint, total, completed, quarantined
        )
        self._sections.append(section)
        return section

    # ------------------------------------------------------------------
    def task_recorded(self) -> None:
        self._pending += 1
        if self._pending >= self.interval:
            self.flush()

    def to_dict(self) -> Dict[str, Any]:
        sections = [section.to_dict() for section in self._sections]
        # sections the resumed command has not (re-)claimed yet must
        # not be lost by an early flush
        sections.extend(self._restored[len(self._sections):])
        return {
            "v": CHECKPOINT_VERSION,
            "argv": self.argv,
            "complete": self.completed_ok,
            "sections": sections,
        }

    def mark_complete(self) -> None:
        """Record that the checkpointed command ran to the end — the
        definitive nothing-left-to-resume signal ``composite-tx
        resume`` consults before re-dispatching anything."""
        self.completed_ok = True

    def flush(self) -> None:
        """Atomically rewrite the checkpoint document."""
        atomic_write_text(
            self.path,
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n",
        )
        self._pending = 0

    def close(self) -> None:
        self.flush()


def checkpoint_complete(document: Dict[str, Any]) -> bool:
    """Whether a checkpoint document records a finished run.

    True when the command marked the checkpoint complete on a clean
    exit, or when every recorded section is fully accounted for (each
    task completed or quarantined) — the state an already-finished
    run's checkpoint is in.  ``composite-tx resume`` uses this to
    print "nothing to resume" and exit 0 instead of re-dispatching
    the full recorded command (and spawning a pool) for no work.
    """
    if document.get("complete") is True:
        return True
    sections = document.get("sections")
    if not isinstance(sections, list) or not sections:
        return False
    for section in sections:
        if not isinstance(section, dict):
            return False
        total = section.get("total")
        completed = section.get("completed", [])
        quarantined = section.get("quarantined", [])
        if not isinstance(total, int):
            return False
        if not isinstance(completed, list) or not isinstance(
            quarantined, list
        ):
            return False
        if len(completed) + len(quarantined) < total:
            return False
    return True


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Load and version-check a checkpoint document."""
    if not os.path.exists(path):
        raise CheckpointError(f"no such checkpoint: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise CheckpointError(f"{path}: unreadable checkpoint ({err})") from err
    if not isinstance(document, dict):
        raise CheckpointError(f"{path}: checkpoint is not a JSON object")
    version = document.get("v")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint schema version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return document


# ----------------------------------------------------------------------
# the ambient session (how the CLI reaches every nested run_batch)
# ----------------------------------------------------------------------
_SESSION: ContextVar[Optional[CheckpointSession]] = ContextVar(
    "repro_checkpoint_session", default=None
)


def ambient_session() -> Optional[CheckpointSession]:
    """The active checkpoint session of this context, if any."""
    return _SESSION.get()


@contextmanager
def checkpointing(session: CheckpointSession) -> Iterator[CheckpointSession]:
    """Make ``session`` ambient: every ``run_batch_report`` under the
    ``with`` block checkpoints into (and resumes from) it.  The
    session is flushed on entry (so the checkpoint file exists — and
    records the command line — from the first instant, making a run
    killed before its first completed task still resumable) and on
    exit, even on error.  A block that exits *cleanly* marks the
    checkpoint complete (see :func:`checkpoint_complete`)."""
    token = _SESSION.set(session)
    finished = False
    try:
        session.flush()
        yield session
        finished = True
    finally:
        _SESSION.reset(token)
        if finished:
            session.mark_complete()
        session.close()
