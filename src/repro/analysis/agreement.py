"""Pairwise criterion agreement (the incomparability picture).

H1 measures acceptance *rates*; this module measures *structure*: for
every pair of criteria, how often they agree, and in which direction
they disagree.  The interesting cells are the incomparable pairs — the
paper orders LLSR and OPSR below SCC but not against each other, and
indeed each accepts executions the other rejects (LLSR forgives layout,
OPSR forgives cross-level conflict pull-ups)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.analysis.hierarchy import HIERARCHY, judge
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


@dataclass
class AgreementMatrix:
    """Counts per ordered criterion pair over one ensemble."""

    trials: int
    #: (a, b) -> number of executions with a=True, b=False
    only_a: Dict[Tuple[str, str], int] = field(default_factory=dict)
    agreements: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def accepts_only(self, a: str, b: str) -> int:
        """Executions accepted by ``a`` but rejected by ``b``."""
        return self.only_a.get((a, b), 0)

    def agreement_rate(self, a: str, b: str) -> float:
        if self.trials == 0:
            return 1.0
        return self.agreements.get(tuple(sorted((a, b))), 0) / self.trials

    def incomparable(self, a: str, b: str) -> bool:
        """True when each criterion accepts something the other rejects."""
        return self.accepts_only(a, b) > 0 and self.accepts_only(b, a) > 0


def agreement_matrix(
    *,
    depth: int = 2,
    trials: int = 60,
    conflict_rates: Sequence[float] = (0.1, 0.25, 0.45),
    layouts: Sequence[str] = ("random", "perturbed"),
    seed: int = 0,
    criteria: Sequence[str] = HIERARCHY,
) -> AgreementMatrix:
    """Judge a mixed stack ensemble under every criterion pairwise."""
    matrix = AgreementMatrix(trials=0)
    spec = stack_topology(depth)
    per_cell = max(1, trials // (len(conflict_rates) * len(layouts)))
    for layout in layouts:
        for rate in conflict_rates:
            for i in range(per_cell):
                recorded = generate(
                    spec,
                    WorkloadConfig(
                        seed=seed + i,
                        roots=3,
                        conflict_probability=rate,
                        layout=layout,
                        perturbation_swaps=20,
                        ops_per_transaction=(1, 2),
                    ),
                )
                verdicts = judge(recorded)
                matrix.trials += 1
                names = list(criteria)
                for x in range(len(names)):
                    for y in range(x + 1, len(names)):
                        a, b = names[x], names[y]
                        va, vb = verdicts[a], verdicts[b]
                        if va == vb:
                            key = tuple(sorted((a, b)))
                            matrix.agreements[key] = (
                                matrix.agreements.get(key, 0) + 1
                            )
                        elif va and not vb:
                            matrix.only_a[(a, b)] = (
                                matrix.only_a.get((a, b), 0) + 1
                            )
                        else:
                            matrix.only_a[(b, a)] = (
                                matrix.only_a.get((b, a), 0) + 1
                            )
    return matrix


def format_agreement(matrix: AgreementMatrix, criteria: Sequence[str] = HIERARCHY) -> str:
    """A compact text rendering: ``a\\b`` cell = executions accepted by
    the row criterion and rejected by the column criterion."""
    names = list(criteria)
    width = max(len(n) for n in names) + 1
    lines = [
        "rows accept / columns reject   (n=" + str(matrix.trials) + ")",
        " " * width + " ".join(n.rjust(width) for n in names),
    ]
    for a in names:
        cells = []
        for b in names:
            cells.append(
                ("-" if a == b else str(matrix.accepts_only(a, b))).rjust(width)
            )
        lines.append(a.ljust(width) + " ".join(cells))
    return "\n".join(lines)
