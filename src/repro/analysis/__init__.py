"""Ensemble experiments and reporting over the core checker.

The modules here are the measurement layer the benchmark harness is
built on: criteria-hierarchy acceptance rates (H1), empirical theorem
validation (T1–T4), protocol evaluation via simulation (P1) and checker
cost scaling (P2), plus dependency-free stats and table formatting.
"""

from repro.analysis.agreement import (
    AgreementMatrix,
    agreement_matrix,
    format_agreement,
)
from repro.analysis.hierarchy import (
    CONTAINMENTS,
    HIERARCHY,
    HierarchyRow,
    judge,
    run_hierarchy_experiment,
    total_violations,
)
from repro.analysis.protocols import (
    ProtocolPoint,
    evaluate_protocol,
    protocol_sweep,
)
from repro.analysis.scaling import ScalingPoint, checker_scaling, depth_scaling
from repro.analysis.stats import (
    mean,
    proportion_summary,
    std_error,
    variance,
    wilson_interval,
)
from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import (
    AgreementRow,
    Theorem1Row,
    agreement_experiment,
    theorem1_experiment,
    theorem2_rows,
    theorem3_rows,
    theorem4_rows,
)

__all__ = [
    "AgreementMatrix",
    "agreement_matrix",
    "format_agreement",
    "CONTAINMENTS",
    "HIERARCHY",
    "HierarchyRow",
    "judge",
    "run_hierarchy_experiment",
    "total_violations",
    "ProtocolPoint",
    "evaluate_protocol",
    "protocol_sweep",
    "ScalingPoint",
    "checker_scaling",
    "depth_scaling",
    "mean",
    "proportion_summary",
    "std_error",
    "variance",
    "wilson_interval",
    "banner",
    "format_table",
    "AgreementRow",
    "Theorem1Row",
    "agreement_experiment",
    "theorem1_experiment",
    "theorem2_rows",
    "theorem3_rows",
    "theorem4_rows",
]
