"""Ensemble experiments and reporting over the core checker.

The modules here are the measurement layer the benchmark harness is
built on: criteria-hierarchy acceptance rates (H1), empirical theorem
validation (T1–T4), protocol evaluation via simulation (P1) and checker
cost scaling (P2), plus dependency-free stats and table formatting.
"""

from repro.analysis.agreement import (
    AgreementMatrix,
    agreement_matrix,
    format_agreement,
)
from repro.analysis.hierarchy import (
    CONTAINMENTS,
    HIERARCHY,
    HierarchyRow,
    judge,
    run_hierarchy_experiment,
    total_violations,
)
from repro.analysis.batch import (
    BatchReport,
    ChaosGridReport,
    chaos_grid,
    chaos_grid_report,
    merge_metrics,
    run_batch,
    run_batch_report,
)
from repro.analysis.checkpoint import (
    CheckpointSession,
    checkpointing,
    read_checkpoint,
)
from repro.analysis.supervise import (
    BatchSupervisor,
    QuarantinedTask,
    QuarantineReport,
)
from repro.analysis.protocols import (
    ChaosPoint,
    ChaosRun,
    ProtocolPoint,
    chaos_run,
    evaluate_protocol,
    evaluate_protocol_under_faults,
    merge_chaos_runs,
    protocol_sweep,
)
from repro.analysis.scaling import (
    ScalingPoint,
    SpeedupPoint,
    SweepSpeedup,
    checker_scaling,
    depth_scaling,
    incremental_speedup,
    sweep_speedup,
)
from repro.analysis.stats import (
    mean,
    proportion_summary,
    std_error,
    variance,
    wilson_interval,
)
from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import (
    AgreementRow,
    Theorem1Row,
    agreement_experiment,
    theorem1_experiment,
    theorem2_rows,
    theorem3_rows,
    theorem4_rows,
)

__all__ = [
    "AgreementMatrix",
    "agreement_matrix",
    "format_agreement",
    "CONTAINMENTS",
    "HIERARCHY",
    "HierarchyRow",
    "judge",
    "run_hierarchy_experiment",
    "total_violations",
    "BatchReport",
    "BatchSupervisor",
    "ChaosGridReport",
    "ChaosPoint",
    "ChaosRun",
    "CheckpointSession",
    "ProtocolPoint",
    "QuarantineReport",
    "QuarantinedTask",
    "chaos_grid",
    "chaos_grid_report",
    "chaos_run",
    "checkpointing",
    "read_checkpoint",
    "run_batch_report",
    "evaluate_protocol",
    "evaluate_protocol_under_faults",
    "merge_chaos_runs",
    "merge_metrics",
    "protocol_sweep",
    "run_batch",
    "ScalingPoint",
    "SpeedupPoint",
    "SweepSpeedup",
    "checker_scaling",
    "depth_scaling",
    "incremental_speedup",
    "sweep_speedup",
    "mean",
    "proportion_summary",
    "std_error",
    "variance",
    "wilson_interval",
    "banner",
    "format_table",
    "AgreementRow",
    "Theorem1Row",
    "agreement_experiment",
    "theorem1_experiment",
    "theorem2_rows",
    "theorem3_rows",
    "theorem4_rows",
]
