"""Empirical theorem validation (the T1–T4 artifacts).

The paper's results are theorems, not measurements; the reproducible
artifact is *agreement*: on randomized ensembles of the relevant
configurations, the special-case criteria must coincide with Comp-C
instance by instance (Theorems 2–4), and the reduction's verdicts must
be constructively certified in both directions (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.analysis.batch import run_batch
from repro.core.certificates import validate_failure_certificate
from repro.core.correctness import is_composite_correct
from repro.core.reduction import reduce_to_roots
from repro.core.serial import verify_theorem1_if_direction
from repro.criteria.fork import is_fcc
from repro.criteria.join import is_jcc
from repro.criteria.stack import is_scc
from repro.criteria.registry import RecordedExecution
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    TopologySpec,
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
)


@dataclass
class AgreementRow:
    """One ensemble point of a theorem-agreement table."""

    label: str
    trials: int
    agreements: int
    accepted: int  # by Comp-C

    @property
    def disagreements(self) -> int:
        return self.trials - self.agreements


def _ensemble_configs(
    *,
    trials: int,
    conflict_rates: Sequence[float],
    roots: int,
    seed: int,
) -> List[WorkloadConfig]:
    """The workload grid behind an ensemble — the picklable half of
    :func:`_ensemble`, shipped to batch workers instead of the
    generated executions themselves."""
    out = []
    per_rate = max(1, trials // len(conflict_rates))
    for rate in conflict_rates:
        for i in range(per_rate):
            out.append(
                WorkloadConfig(
                    seed=seed + i,
                    roots=roots,
                    conflict_probability=rate,
                    layout="random",
                    intra_order_probability=0.25,
                )
            )
    return out


def _ensemble(
    spec: TopologySpec,
    *,
    trials: int,
    conflict_rates: Sequence[float],
    roots: int,
    seed: int,
) -> List[RecordedExecution]:
    return [
        generate(spec, config)
        for config in _ensemble_configs(
            trials=trials, conflict_rates=conflict_rates, roots=roots,
            seed=seed,
        )
    ]


def agreement_task(task: Tuple) -> Tuple[bool, bool]:
    """Batch worker: one agreement trial.  Returns (agrees, comp_c)."""
    spec, config, criterion = task
    recorded = generate(spec, config)
    special = criterion(recorded.system)
    comp = is_composite_correct(recorded.system)
    return special == comp, comp


def agreement_experiment(
    spec: TopologySpec,
    criterion: Callable,
    label: str,
    *,
    trials: int = 80,
    conflict_rates: Sequence[float] = (0.05, 0.15, 0.3, 0.5),
    roots: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> AgreementRow:
    """Comp-C vs one special-case criterion on one configuration.

    ``criterion`` must be a module-level function (``is_scc`` etc.) so
    the trials can be shipped to batch workers when ``workers > 1``."""
    configs = _ensemble_configs(
        trials=trials, conflict_rates=conflict_rates, roots=roots, seed=seed
    )
    results = run_batch(
        [(spec, config, criterion) for config in configs],
        agreement_task,
        workers=workers,
    )
    agreements = accepted = 0
    for agrees, comp in results:
        if agrees:
            agreements += 1
        if comp:
            accepted += 1
    return AgreementRow(
        label=label,
        trials=len(results),
        agreements=agreements,
        accepted=accepted,
    )


def theorem2_rows(depths: Sequence[int] = (2, 3, 4), **kw) -> List[AgreementRow]:
    rows = []
    for d in depths:
        # Deep stacks compound conflicts across every level, so scale the
        # conflict rates down with depth to keep a mix of verdicts.
        if "conflict_rates" not in kw:
            scale = 2.0 / d
            rates = tuple(min(0.6, r * scale) for r in (0.05, 0.15, 0.3, 0.5))
            row = agreement_experiment(
                stack_topology(d),
                is_scc,
                f"stack depth {d}",
                conflict_rates=rates,
                **kw,
            )
        else:
            row = agreement_experiment(
                stack_topology(d), is_scc, f"stack depth {d}", **kw
            )
        rows.append(row)
    return rows


def theorem3_rows(
    branch_counts: Sequence[int] = (2, 3, 5), **kw
) -> List[AgreementRow]:
    return [
        agreement_experiment(
            fork_topology(n), is_fcc, f"fork x{n}", roots=max(3, n), **kw
        )
        for n in branch_counts
    ]


def theorem4_rows(
    client_counts: Sequence[int] = (2, 3, 5), **kw
) -> List[AgreementRow]:
    return [
        agreement_experiment(
            join_topology(n), is_jcc, f"join x{n}", roots=max(3, n), **kw
        )
        for n in client_counts
    ]


@dataclass
class Theorem1Row:
    """Constructive Theorem-1 validation on one configuration."""

    label: str
    trials: int
    accepted: int
    witnesses_valid: int  # if-direction containment checks that passed
    certificates_valid: int  # only-if-direction certificates that passed

    @property
    def all_valid(self) -> bool:
        rejected = self.trials - self.accepted
        return (
            self.witnesses_valid == self.accepted
            and self.certificates_valid == rejected
        )


def theorem1_task(task: Tuple) -> Tuple[bool, bool, bool]:
    """Batch worker: one constructive Theorem-1 trial.  Returns
    (accepted, witness_valid, certificate_valid)."""
    spec, config = task
    recorded = generate(spec, config)
    result = reduce_to_roots(recorded.system)
    if result.succeeded:
        return True, verify_theorem1_if_direction(result), False
    return False, False, validate_failure_certificate(result)


def theorem1_experiment(
    *,
    trials: int = 60,
    seed: int = 0,
    conflict_rates: Sequence[float] = (0.1, 0.3, 0.5),
    workers: int = 1,
) -> List[Theorem1Row]:
    """Both directions of Theorem 1, constructively, per configuration."""
    # Per-configuration conflict rates: deeper/wider systems compound
    # conflict opportunities, so the rates scale down to keep a mix of
    # accepted and rejected instances in every row.
    specs = [
        ("stack depth 3", stack_topology(3), 3, (0.02, 0.06, 0.15)),
        ("fork x3", fork_topology(3), 3, conflict_rates),
        ("join x3", join_topology(3), 3, conflict_rates),
        ("dag 3x2", random_dag_topology(3, 2, seed=1), 4, (0.02, 0.06, 0.15)),
    ]
    tasks = []
    bounds = []
    for label, spec, roots, rates in specs:
        configs = _ensemble_configs(
            trials=trials, conflict_rates=rates, roots=roots, seed=seed
        )
        bounds.append((label, len(configs)))
        tasks.extend((spec, config) for config in configs)
    results = run_batch(tasks, theorem1_task, workers=workers)
    rows: List[Theorem1Row] = []
    offset = 0
    for label, count in bounds:
        accepted = witnesses = certificates = 0
        for ok, witness, certificate in results[offset:offset + count]:
            if ok:
                accepted += 1
                if witness:
                    witnesses += 1
            elif certificate:
                certificates += 1
        offset += count
        rows.append(
            Theorem1Row(
                label=label,
                trials=count,
                accepted=accepted,
                witnesses_valid=witnesses,
                certificates_valid=certificates,
            )
        )
    return rows
