"""Worker supervision policy for the batch runner.

:mod:`repro.analysis.batch` executes (config x seed) grids; this module
holds the *resilience* vocabulary those executions run under:

* :class:`BatchSupervisor` — the supervision configuration: per-task
  wall-clock timeouts, per-task retry with seeded jittered backoff
  (reusing the :mod:`repro.simulator.retry` policy vocabulary, so one
  set of policies covers simulated retries and real harness retries),
  hung-worker detection, and the fail-fast/keep-going switch;
* :class:`QuarantinedTask` / :class:`QuarantineReport` — the structured
  failure report a keep-going grid emits instead of aborting: task id,
  parameters, reason, and the worker traceback;
* :func:`time_limit` — the in-worker wall-clock guard (SIGALRM based,
  a no-op where signals are unavailable).

Determinism contract
--------------------
Retry jitter is drawn from a per-task ``random.Random`` seeded with
``retry_seed`` and the task's submission index only (see
:meth:`BatchSupervisor.task_rng`), never from worker identity or wall
clock — so the delay sequence of any one task is identical whether the
grid runs serially, sharded, or resumed from a checkpoint.  This is
the same seeding contract :mod:`repro.simulator.retry` documents for
seeded policies.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.exceptions import TaskTimeoutError
from repro.simulator.retry import RetryPolicy, make_retry_policy

#: quarantine reasons (stable vocabulary for reports and tests)
REASON_EXCEPTION = "exception"
REASON_TIMEOUT = "timeout"
REASON_HUNG = "hung"
REASON_CRASH = "crash"

#: multiplier used to derive per-task RNG seeds; a large prime keeps
#: (seed, index) pairs from colliding for any realistic grid size
_SEED_STRIDE = 1_000_003


@contextmanager
def time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`TaskTimeoutError` in the calling thread after
    ``seconds`` of wall-clock time.

    Uses ``SIGALRM`` (via ``signal.setitimer``), so it only arms on
    platforms that have it *and* on the main thread — everywhere else
    it degrades to a no-op and the parent-side hang deadline is the
    only guard.  Worker processes of a ``ProcessPoolExecutor`` run
    tasks on their main thread, so the guard is active in exactly the
    place that matters.

    Contexts nest: ``setitimer`` returns the previously armed
    ``ITIMER_REAL`` value, and the remaining portion of that outer
    timer (minus the time spent inside this block) is re-armed on
    exit, so an inner ``time_limit`` never silently disarms an outer
    one.  An outer budget that expired *while* the inner guard held
    the timer fires immediately after the inner block exits.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum: int, frame: Any) -> None:
        raise TaskTimeoutError(
            f"task exceeded its {seconds:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    started = time.monotonic()
    outer_delay, outer_interval = signal.setitimer(
        signal.ITIMER_REAL, seconds
    )
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - started)
            # an already-overdue outer guard fires as soon as possible
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
            )


@dataclass
class QuarantinedTask:
    """One task the supervisor gave up on — the structured failure
    record a keep-going grid emits instead of aborting.

    ``task_repr`` is the ``repr`` of the task tuple (the parameters
    needed to reproduce the cell), ``reason`` one of
    ``exception``/``timeout``/``hung``, ``attempts`` how many times the
    supervisor tried, and ``error``/``traceback`` what the final
    attempt died with (``traceback`` is empty for hung workers — a
    SIGKILL-proof hang never reports back).
    """

    index: int
    task_repr: str
    reason: str
    error: str
    traceback: str = ""
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "task": self.task_repr,
            "reason": self.reason,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "QuarantinedTask":
        return cls(
            index=int(document["index"]),
            task_repr=str(document["task"]),
            reason=str(document["reason"]),
            error=str(document["error"]),
            traceback=str(document.get("traceback", "")),
            attempts=int(document.get("attempts", 1)),
        )


@dataclass
class QuarantineReport:
    """Every quarantined task of one batch, in submission order."""

    entries: List[QuarantinedTask] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QuarantinedTask]:
        return iter(self.entries)

    def add(self, entry: QuarantinedTask) -> None:
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.index)

    @classmethod
    def merge(
        cls, reports: "Iterable[QuarantineReport]"
    ) -> "QuarantineReport":
        """Deterministic cross-shard merge: entries from every report,
        ordered by task index, deduplicated by index (first report
        wins — lease races can deliver the same quarantined shard
        twice).  Fleet and serial keep-going runs therefore render
        identical quarantine sections regardless of completion order.
        """
        merged = cls()
        seen: Dict[int, QuarantinedTask] = {}
        for report in reports:
            for entry in report.entries:
                seen.setdefault(entry.index, entry)
        merged.entries = [seen[index] for index in sorted(seen)]
        return merged

    def indices(self) -> List[int]:
        return [entry.index for entry in self.entries]

    def render(self) -> str:
        """Human-readable report (the CLI prints this after the grid)."""
        lines = [
            f"{len(self.entries)} task(s) quarantined "
            "(grid completed without them):"
        ]
        for entry in self.entries:
            lines.append(
                f"  task #{entry.index} [{entry.reason} after "
                f"{entry.attempts} attempt(s)]: {entry.error}"
            )
            lines.append(f"    params: {entry.task_repr}")
        return "\n".join(lines)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.entries]


@dataclass
class BatchSupervisor:
    """How :func:`repro.analysis.batch.run_batch_report` guards tasks.

    ``task_timeout`` is the per-task wall-clock budget enforced
    *inside* the worker (SIGALRM); ``hang_timeout`` is the parent-side
    deadline after which a worker that stopped delivering results is
    declared hung and replaced (defaults to ``3 * task_timeout + 5``
    when a task timeout is set, else disabled).  ``max_attempts`` is
    the total number of tries per task; between tries the supervisor
    sleeps ``retry_policy.delay(...)`` drawn from the per-task seeded
    stream.  With ``fail_fast=True`` the first task that exhausts its
    attempts aborts the whole batch with
    :class:`~repro.exceptions.BatchTaskError` (the pre-supervision
    behaviour); otherwise the task is quarantined and the rest of the
    grid completes.
    """

    task_timeout: Optional[float] = None
    hang_timeout: Optional[float] = None
    max_attempts: int = 1
    retry_policy: Union[str, RetryPolicy] = "exponential"
    retry_base: float = 0.05
    retry_seed: int = 0
    fail_fast: bool = False
    #: injectable for tests; must stay a picklable module-level callable
    sleep: Callable[[float], None] = time.sleep

    def resolve_policy(self) -> RetryPolicy:
        """The retry policy instance (unseeded — the supervisor passes
        the per-task stream from :meth:`task_rng` to ``delay``)."""
        return make_retry_policy(self.retry_policy, base=self.retry_base)

    def task_rng(self, index: int) -> random.Random:
        """The deterministic jitter stream of task ``index`` — a
        function of ``(retry_seed, index)`` only, per the module's
        seeding contract."""
        return random.Random(self.retry_seed * _SEED_STRIDE + index)

    def effective_hang_timeout(self) -> Optional[float]:
        if self.hang_timeout is not None:
            return self.hang_timeout if self.hang_timeout > 0 else None
        if self.task_timeout:
            # the in-worker alarm should fire first on every attempt;
            # the parent deadline only catches workers the alarm cannot
            # reach (stuck outside the interpreter)
            return 3.0 * self.task_timeout + 5.0
        return None
