"""Fault-tolerant sharded checking fleet: lease-based coordination.

:mod:`repro.analysis.batch` drives one grid through one process pool;
this module promotes that to a *fleet*: long-lived worker processes
driven by a :class:`FleetCoordinator` over stdlib
:mod:`multiprocessing` pipes, designed so that **any worker can be
SIGKILLed, hang, or return garbage at any point** and the grid still
terminates with verdicts, metrics, and telemetry byte-identical to an
undisturbed serial run.

The robustness mechanisms, one per failure class:

* **lease-based shard assignment** — the grid is partitioned into
  shards (contiguous submission-index ranges); a shard is *leased* to
  a worker with a deadline.  Workers heartbeat while computing; a
  missed heartbeat past the deadline expires the lease, the worker is
  presumed hung and killed, and the shard re-enters the pending queue
  after a seeded backoff delay (the :mod:`repro.simulator.retry`
  policy vocabulary, jitter drawn per shard from the
  :meth:`~repro.analysis.supervise.BatchSupervisor.task_rng`
  determinism contract — a function of ``(retry_seed, first task
  index)`` only, never wall clock or worker identity).
* **worker lifecycle supervision** — a worker whose pipe reaches EOF
  (SIGKILL, OOM, segfault) is attributed
  :data:`~repro.analysis.supervise.REASON_CRASH`; one that stops
  heartbeating, :data:`~repro.analysis.supervise.REASON_HUNG`; one
  that ships an unintelligible message, a protocol violation (treated
  as a crash).  Failed workers are replaced to keep the fleet at
  strength while work remains.  A shard that fails on
  ``max_shard_retries`` *distinct* workers is quarantined — its
  undelivered tasks become quarantine entries in the batch's
  :class:`~repro.analysis.supervise.QuarantineReport` — instead of
  aborting the grid (``fail_fast`` restores the abort).
* **idempotent at-least-once execution** — a killed worker's shard is
  re-run elsewhere, so the same task may complete twice.  Results are
  deduplicated by shard id + batch fingerprint + task index (first
  delivery wins); reassignment can therefore never double-count
  metrics or double-record telemetry.

Determinism argument
--------------------
The coordinator only ever *collects* per-task outcomes into a dict
keyed by submission index; :func:`repro.analysis.batch.run_batch_report`
folds that dict in submission order exactly as the serial loop would.
Scheduling (which worker ran which shard, how often leases expired)
affects only *whether* a given index's outcome came from the first or
a later execution — and a task is a deterministic function of its
task tuple, so every execution returns the same value and the same
canonical telemetry events.  Fleet-level telemetry (lease expiries,
worker timelines) goes to the dedicated ``fleet`` stream, which
:func:`repro.obs.sink.canonical_dumps` projects away — so the
canonical stream of a ``--fleet 4`` run with a SIGKILLed worker is
byte-identical to ``--workers 1``.

Checkpoint integration: completed tasks are recorded into the ambient
:class:`~repro.analysis.checkpoint.CheckpointSection` as they arrive,
so a SIGKILLed *coordinator* resumes mid-fleet via ``composite-tx
resume`` with the usual byte-identity guarantee.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.checkpoint import CheckpointSection
from repro.analysis.supervise import (
    REASON_CRASH,
    REASON_HUNG,
    BatchSupervisor,
)
from repro.exceptions import CompositeTxError
from repro.obs import Telemetry

#: the telemetry stream fleet coordination events are recorded under;
#: listed in :data:`repro.obs.sink.ENV_STREAMS`, so canonical dumps
#: project the whole stream away (scheduling is environment, not work)
FLEET_STREAM = "fleet"

# message tags, worker -> coordinator
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_DONE = "done"
# message tags, coordinator -> worker
MSG_SHARD = "shard"
MSG_SHUTDOWN = "shutdown"

#: shard lifecycle states
SHARD_PENDING = "pending"
SHARD_LEASED = "leased"
SHARD_DONE = "done"
SHARD_QUARANTINED = "quarantined"


class FleetProtocolError(CompositeTxError):
    """A worker shipped a message the coordinator cannot interpret.

    Never escapes the coordinator: the offending worker is killed and
    replaced (crash attribution), exactly as if it had segfaulted —
    a worker that returns garbage must not be able to wedge the fleet.
    """


@dataclass
class FleetConfig:
    """How a fleet drives one batch.

    ``workers`` is the fleet size; ``heartbeat_interval`` how often a
    busy worker proves liveness; ``lease_timeout`` how long a shard
    lease survives without a heartbeat before the worker is presumed
    hung (defaults to ``max(6 * heartbeat_interval, 3.0)``);
    ``max_shard_retries`` how many *distinct* workers may fail a shard
    before it is quarantined; ``shard_size`` tasks per shard (0 =
    ``ceil(tasks / (workers * 4))``, the batch layer's chunking).
    """

    workers: int = 2
    heartbeat_interval: float = 0.5
    lease_timeout: Optional[float] = None
    max_shard_retries: int = 3
    shard_size: int = 0

    def effective_lease_timeout(self) -> float:
        if self.lease_timeout is not None and self.lease_timeout > 0:
            return self.lease_timeout
        return max(6.0 * self.heartbeat_interval, 3.0)


@dataclass
class WorkerTimeline:
    """One worker incarnation's liveness record (for the profile's
    per-worker timeline table)."""

    name: str
    pid: Optional[int]
    started_s: float
    ended_s: Optional[float]
    fate: str  # "shutdown" | REASON_CRASH | REASON_HUNG
    shards_completed: int


@dataclass
class FleetReport:
    """What one fleet run did — shards completed/reassigned/
    quarantined plus the per-worker liveness timeline.  The same data
    is emitted as ``fleet.*`` telemetry, which ``composite-tx
    profile`` renders back into these tables."""

    workers: int
    shards_total: int
    shards_completed: int = 0
    shards_reassigned: int = 0
    shards_quarantined: int = 0
    leases_expired: int = 0
    workers_replaced: int = 0
    duplicates_discarded: int = 0
    #: static safety verdicts folded from per-shard results
    #: (``verdict -> runs``; empty when the task type carries none)
    verdicts: Dict[str, int] = field(default_factory=dict)
    timeline: List[WorkerTimeline] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable summary (the CLI prints this after a grid)."""
        lines = [
            f"fleet: {self.workers} worker slot(s) over "
            f"{self.shards_total} shard(s): "
            f"{self.shards_completed} completed, "
            f"{self.shards_reassigned} reassignment(s), "
            f"{self.shards_quarantined} quarantined; "
            f"{self.leases_expired} lease(s) expired, "
            f"{self.workers_replaced} worker(s) replaced, "
            f"{self.duplicates_discarded} duplicate result(s) discarded"
        ]
        if self.verdicts:
            lines.append(
                "  verdicts: "
                + " ".join(
                    f"{verdict}:{count}"
                    for verdict, count in sorted(self.verdicts.items())
                )
            )
        for entry in self.timeline:
            ended = (
                f"{entry.ended_s:.2f}s" if entry.ended_s is not None else "?"
            )
            lines.append(
                f"  {entry.name}: pid {entry.pid}, "
                f"{entry.started_s:.2f}s-{ended}, "
                f"{entry.shards_completed} shard(s), {entry.fate}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _fleet_worker_main(
    conn: Connection,
    worker: Callable[[Any], Any],
    capture: bool,
    supervisor: Optional[BatchSupervisor],
    heartbeat_interval: float,
) -> None:
    """Worker loop: receive shard assignments, run their tasks under
    the usual per-task supervision, stream results back, heartbeat
    from a daemon thread while computing.

    The heartbeat thread only proves the *interpreter* is alive and
    scheduling threads; a worker stuck in a non-GIL-releasing C call
    (or SIGSTOPped) stops heartbeating and is correctly declared hung
    by the coordinator.
    """
    import threading

    from repro.analysis.batch import _run_guarded

    send_lock = threading.Lock()
    active_shard: List[Optional[int]] = [None]
    stop = threading.Event()

    def _send(message: Tuple[Any, ...]) -> None:
        with send_lock:
            conn.send(message)

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            shard_id = active_shard[0]
            if shard_id is None:
                continue
            try:
                _send((MSG_HEARTBEAT, shard_id))
            except OSError:
                return

    heartbeat = threading.Thread(
        target=_beat, name="fleet-heartbeat", daemon=True
    )
    heartbeat.start()
    try:
        while True:
            message = conn.recv()
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == MSG_SHUTDOWN:
                break
            if message[0] != MSG_SHARD:
                continue
            _, shard_id, fingerprint, pairs = message
            active_shard[0] = shard_id
            _send((MSG_HEARTBEAT, shard_id))
            for index, task in pairs:
                outcome = _run_guarded(
                    worker, capture, supervisor, (index, task)
                )
                _send((MSG_RESULT, shard_id, fingerprint, index, outcome))
            active_shard[0] = None
            _send((MSG_DONE, shard_id, fingerprint))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# coordinator state
# ----------------------------------------------------------------------
@dataclass
class _ShardState:
    """One shard's lifecycle record inside the coordinator."""

    shard_id: int
    pairs: List[Tuple[int, Any]]
    rng: random.Random
    status: str = SHARD_PENDING
    failed_workers: Set[str] = field(default_factory=set)
    attempts: int = 0
    ready_at: float = 0.0
    last_delay: float = 0.0

    def remaining(self, delivered: Set[int]) -> List[Tuple[int, Any]]:
        return [(i, task) for i, task in self.pairs if i not in delivered]


@dataclass
class _WorkerHandle:
    """One live worker incarnation as the coordinator sees it."""

    name: str
    process: Optional[Process]
    conn: Optional[Connection]
    started_s: float
    shard_id: Optional[int] = None
    deadline: float = 0.0
    shards_completed: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


def partition_shards(
    todo: Sequence[Tuple[int, Any]], workers: int, shard_size: int
) -> List[List[Tuple[int, Any]]]:
    """Split the (index, task) work list into contiguous shards.

    Contiguity in submission order keeps a shard the same unit Biswas
    & Enea's decomposition argument treats as independently checkable,
    and makes a shard's identity stable across coordinator restarts
    (same todo list -> same shards -> same per-shard RNG streams).
    """
    if shard_size <= 0:
        shard_size = max(1, -(-len(todo) // (max(1, workers) * 4)))
    return [
        list(todo[offset:offset + shard_size])
        for offset in range(0, len(todo), shard_size)
    ]


class FleetCoordinator:
    """Drives one batch's work list across a supervised worker fleet.

    The public surface is :meth:`run`; the message handlers are
    factored so tests can drive the state machine directly (simulated
    delivery schedules, duplicate results, worker kills) without
    spawning processes — handles with ``process=None, conn=None`` are
    legal and skip every OS interaction.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        todo: Sequence[Tuple[int, Any]],
        config: FleetConfig,
        *,
        capture: bool = False,
        supervisor: Optional[BatchSupervisor] = None,
        section: Optional[CheckpointSection] = None,
        fingerprint: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._worker = worker
        self._config = config
        self._capture = capture
        self._supervisor = supervisor
        self._section = section
        self._fingerprint = fingerprint
        self._clock = clock
        self._start = clock()
        self._lease_timeout = config.effective_lease_timeout()
        rng_source = (
            supervisor if supervisor is not None else BatchSupervisor()
        )
        self._policy = rng_source.resolve_policy()
        self._shards = [
            _ShardState(
                shard_id=shard_id,
                pairs=pairs,
                rng=rng_source.task_rng(pairs[0][0]),
            )
            for shard_id, pairs in enumerate(
                partition_shards(todo, config.workers, config.shard_size)
            )
        ]
        self._expected: Set[int] = {i for i, _ in todo}
        self._fail_fast = (
            supervisor.fail_fast if supervisor is not None else False
        )
        self._workers: Dict[str, _WorkerHandle] = {}
        self._incarnations = 0
        self._delivered: Set[int] = set()
        self._aborted = False
        self.outcomes: Dict[int, Any] = {}
        self.telemetry = Telemetry(stream=FLEET_STREAM, enabled=capture)
        self.report = FleetReport(
            workers=config.workers, shards_total=len(self._shards)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _elapsed(self) -> float:
        return self._now() - self._start

    def _finished(self) -> bool:
        return all(
            shard.status in (SHARD_DONE, SHARD_QUARANTINED)
            for shard in self._shards
        )

    def _unfinished_count(self) -> int:
        return sum(
            1
            for shard in self._shards
            if shard.status in (SHARD_PENDING, SHARD_LEASED)
        )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        name = f"w{self._incarnations}"
        self._incarnations += 1
        parent_conn, child_conn = Pipe()
        process = Process(
            target=_fleet_worker_main,
            args=(
                child_conn,
                self._worker,
                self._capture,
                self._supervisor,
                self._config.heartbeat_interval,
            ),
            name=f"fleet-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            name=name,
            process=process,
            conn=parent_conn,
            started_s=self._elapsed(),
        )
        self._workers[name] = handle
        return handle

    def _replace_workers(self) -> None:
        """Keep the fleet at strength while unfinished shards remain
        (never more workers than unfinished shards)."""
        target = min(self._config.workers, self._unfinished_count())
        while len(self._workers) < target:
            self._spawn_worker()

    def _retire(self, handle: _WorkerHandle, fate: str) -> None:
        """Remove a worker from the live set, kill its process, and
        record its timeline entry."""
        self._workers.pop(handle.name, None)
        self.report.timeline.append(
            WorkerTimeline(
                name=handle.name,
                pid=handle.pid,
                started_s=round(handle.started_s, 3),
                ended_s=round(self._elapsed(), 3),
                fate=fate,
                shards_completed=handle.shards_completed,
            )
        )
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        process = handle.process
        if process is not None:
            try:
                process.terminate()
                process.join(timeout=0.2)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            except (OSError, ValueError):
                pass

    def _fail_worker(
        self, handle: _WorkerHandle, reason: str, error: str
    ) -> None:
        """Crash/hang attribution: retire the worker, release (or
        quarantine) its leased shard, count the failure."""
        if handle.name not in self._workers:
            return  # already retired (double report)
        self._retire(handle, reason)
        self.report.workers_replaced += 1
        self.telemetry.count("fleet.worker_replaced", reason=reason)
        if reason == REASON_HUNG:
            self.report.leases_expired += 1
            self.telemetry.count("fleet.lease_expired")
        shard_id = handle.shard_id
        if shard_id is None:
            return
        shard = self._shards[shard_id]
        if shard.status != SHARD_LEASED:
            return
        shard.failed_workers.add(handle.name)
        if len(shard.failed_workers) >= self._config.max_shard_retries:
            self._quarantine_shard(shard, reason, error)
            return
        shard.status = SHARD_PENDING
        shard.last_delay = self._policy.delay(
            max(1, shard.attempts), shard.rng, shard.last_delay
        )
        shard.ready_at = self._now() + shard.last_delay
        self.report.shards_reassigned += 1
        self.telemetry.count("fleet.shard", status="reassigned")

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _lease(self, handle: _WorkerHandle, shard: _ShardState) -> None:
        """Assign a shard (its still-undelivered tasks) to a worker."""
        shard.status = SHARD_LEASED
        shard.attempts += 1
        handle.shard_id = shard.shard_id
        handle.deadline = self._now() + self._lease_timeout
        if handle.conn is None:
            return
        try:
            handle.conn.send(
                (
                    MSG_SHARD,
                    shard.shard_id,
                    self._fingerprint,
                    shard.remaining(self._delivered),
                )
            )
        except (OSError, ValueError) as err:
            self._fail_worker(
                handle, REASON_CRASH, f"assignment failed: {err!r}"
            )

    def _assign_ready_shards(self) -> None:
        now = self._now()
        ready = [
            shard
            for shard in self._shards
            if shard.status == SHARD_PENDING and shard.ready_at <= now
        ]
        ready.sort(key=lambda shard: shard.shard_id)
        idle = sorted(
            (
                handle
                for handle in self._workers.values()
                if handle.shard_id is None
            ),
            key=lambda handle: handle.name,
        )
        for handle, shard in zip(idle, ready):
            self._lease(handle, shard)

    def _quarantine_shard(
        self, shard: _ShardState, reason: str, error: str
    ) -> None:
        """Give up on a shard: every still-undelivered task becomes an
        error outcome (the batch fold turns those into
        :class:`~repro.analysis.supervise.QuarantinedTask` entries)."""
        from repro.analysis.batch import _TaskOutcome

        shard.status = SHARD_QUARANTINED
        distinct = len(shard.failed_workers)
        for index, _task in shard.remaining(self._delivered):
            self._delivered.add(index)
            self.outcomes[index] = _TaskOutcome(
                index,
                None,
                [],
                f"fleet shard {shard.shard_id} abandoned after failing "
                f"on {distinct} distinct worker(s): {error}",
                reason=reason,
                attempts=shard.attempts,
            )
        self.report.shards_quarantined += 1
        self.telemetry.count("fleet.shard", status="quarantined")
        if self._fail_fast:
            self._aborted = True

    def _complete_shard(
        self, handle: _WorkerHandle, shard: _ShardState
    ) -> None:
        shard.status = SHARD_DONE
        handle.shards_completed += 1
        if handle.shard_id == shard.shard_id:
            handle.shard_id = None
        self.report.shards_completed += 1
        self.telemetry.count("fleet.shard", status="completed")

    # ------------------------------------------------------------------
    # message handling (driven by run(), and directly by tests)
    # ------------------------------------------------------------------
    def note_result(
        self,
        handle: _WorkerHandle,
        shard_id: int,
        fingerprint: str,
        index: int,
        outcome: Any,
    ) -> bool:
        """Record one task outcome; ``False`` when it was deduplicated
        (lease-race duplicate or stale fingerprint).  This is the
        at-least-once -> exactly-once boundary: the first delivery for
        a (shard, fingerprint, index) wins, everything later is
        discarded, so reassignment can never double-count."""
        if fingerprint != self._fingerprint:
            self.report.duplicates_discarded += 1
            self.telemetry.count("fleet.duplicate_result", kind="stale")
            return False
        if not isinstance(shard_id, int) or not (
            0 <= shard_id < len(self._shards)
        ):
            raise FleetProtocolError(
                f"result names unknown shard {shard_id!r}"
            )
        if index not in self._expected:
            raise FleetProtocolError(f"result names unknown task {index!r}")
        if getattr(outcome, "index", None) != index:
            raise FleetProtocolError(
                f"malformed outcome for task {index!r}: {outcome!r}"
            )
        handle.deadline = self._now() + self._lease_timeout
        if index in self._delivered:
            self.report.duplicates_discarded += 1
            self.telemetry.count("fleet.duplicate_result", kind="replay")
            return False
        self._delivered.add(index)
        self.outcomes[index] = outcome
        if outcome.error is None:
            shard_verdicts = getattr(
                outcome.result, "safety_verdicts", None
            )
            if shard_verdicts:
                for verdict, count in shard_verdicts.items():
                    self.report.verdicts[verdict] = (
                        self.report.verdicts.get(verdict, 0) + int(count)
                    )
        if outcome.error is None and self._section is not None:
            self._section.record(index, outcome.result, outcome.events)
        if outcome.error is not None and self._fail_fast:
            self._aborted = True
        return True

    def _handle_message(self, handle: _WorkerHandle, message: Any) -> None:
        if not isinstance(message, tuple) or not message:
            raise FleetProtocolError(f"unintelligible message {message!r}")
        tag = message[0]
        if tag == MSG_HEARTBEAT:
            if len(message) != 2:
                raise FleetProtocolError(f"malformed heartbeat {message!r}")
            handle.deadline = self._now() + self._lease_timeout
            return
        if tag == MSG_RESULT:
            if len(message) != 5:
                raise FleetProtocolError(f"malformed result {message!r}")
            _, shard_id, fingerprint, index, outcome = message
            self.note_result(handle, shard_id, fingerprint, index, outcome)
            return
        if tag == MSG_DONE:
            if len(message) != 3:
                raise FleetProtocolError(f"malformed done {message!r}")
            _, shard_id, fingerprint = message
            if fingerprint != self._fingerprint:
                return
            if not isinstance(shard_id, int) or not (
                0 <= shard_id < len(self._shards)
            ):
                raise FleetProtocolError(
                    f"done names unknown shard {shard_id!r}"
                )
            shard = self._shards[shard_id]
            if shard.status in (SHARD_DONE, SHARD_QUARANTINED):
                # duplicate completion from a lease race
                self.report.duplicates_discarded += 1
                self.telemetry.count("fleet.duplicate_result", kind="done")
                if handle.shard_id == shard_id:
                    handle.shard_id = None
                return
            if any(
                index not in self._delivered for index, _ in shard.pairs
            ):
                # a done without all results is a lie (garbage worker);
                # ignore it — the lease will expire if nothing arrives
                return
            self._complete_shard(handle, shard)
            return
        raise FleetProtocolError(f"unknown message tag {tag!r}")

    def _drain(self, handle: _WorkerHandle) -> None:
        """Consume every buffered message from one worker, converting
        EOF into crash attribution and garbage into a protocol kill."""
        conn = handle.conn
        if conn is None:
            return
        try:
            while handle.name in self._workers and conn.poll():
                self._handle_message(handle, conn.recv())
        except (EOFError, OSError):
            self._fail_worker(
                handle,
                REASON_CRASH,
                "worker process died (connection closed)",
            )
        except Exception as err:
            # unpicklable payloads, malformed tuples, FleetProtocolError:
            # the worker is compromised — kill and replace it
            self._fail_worker(
                handle, REASON_CRASH, f"protocol violation: {err!r}"
            )

    def _expire_leases(self) -> None:
        now = self._now()
        for handle in list(self._workers.values()):
            if handle.shard_id is None:
                continue
            if now <= handle.deadline:
                continue
            self._fail_worker(
                handle,
                REASON_HUNG,
                f"lease expired: no heartbeat within "
                f"{self._lease_timeout:g}s",
            )

    # ------------------------------------------------------------------
    # the drive loop
    # ------------------------------------------------------------------
    def _wait_timeout(self) -> float:
        """Sleep until the next actionable instant: a lease deadline,
        a backoff-delayed shard becoming ready, or one heartbeat."""
        now = self._now()
        horizon = now + max(0.05, self._config.heartbeat_interval)
        for handle in self._workers.values():
            if handle.shard_id is not None:
                horizon = min(horizon, handle.deadline)
        for shard in self._shards:
            if shard.status == SHARD_PENDING and shard.ready_at > now:
                horizon = min(horizon, shard.ready_at)
        return max(0.005, horizon - now)

    def _shutdown(self) -> None:
        for handle in list(self._workers.values()):
            if handle.conn is not None:
                try:
                    handle.conn.send((MSG_SHUTDOWN,))
                except (OSError, ValueError):
                    pass
            self._retire(handle, "shutdown")

    def run(self) -> Tuple[Dict[int, Any], FleetReport]:
        """Drive the fleet until every shard is done or quarantined
        (or fail-fast aborts).  Returns the per-index outcome dict for
        the batch fold plus the :class:`FleetReport`."""
        with self.telemetry.span(
            "fleet.run",
            workers=self._config.workers,
            shards=len(self._shards),
        ) as span:
            try:
                while not self._finished() and not self._aborted:
                    self._replace_workers()
                    self._assign_ready_shards()
                    connections = {
                        handle.conn: handle
                        for handle in self._workers.values()
                        if handle.conn is not None
                    }
                    if connections:
                        for ready in _connection_wait(
                            list(connections), timeout=self._wait_timeout()
                        ):
                            handle = connections[ready]  # type: ignore[index]
                            self._drain(handle)
                    else:
                        time.sleep(min(0.01, self._wait_timeout()))
                    self._expire_leases()
            finally:
                self._shutdown()
            span.note(
                completed=self.report.shards_completed,
                reassigned=self.report.shards_reassigned,
                quarantined=self.report.shards_quarantined,
            )
        self._emit_report()
        return self.outcomes, self.report

    def _emit_report(self) -> None:
        tele = self.telemetry
        tele.meta(
            "fleet.summary",
            workers=self.report.workers,
            shards=self.report.shards_total,
            completed=self.report.shards_completed,
            reassigned=self.report.shards_reassigned,
            quarantined=self.report.shards_quarantined,
            leases_expired=self.report.leases_expired,
            workers_replaced=self.report.workers_replaced,
            duplicates_discarded=self.report.duplicates_discarded,
        )
        for entry in self.report.timeline:
            tele.meta(
                "fleet.worker",
                worker=entry.name,
                pid=entry.pid,
                started_s=entry.started_s,
                ended_s=entry.ended_s,
                fate=entry.fate,
                shards=entry.shards_completed,
            )


def run_fleet(
    worker: Callable[[Any], Any],
    todo: Sequence[Tuple[int, Any]],
    config: FleetConfig,
    *,
    capture: bool = False,
    supervisor: Optional[BatchSupervisor] = None,
    section: Optional[CheckpointSection] = None,
    fingerprint: str = "",
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Dict[int, Any], FleetReport]:
    """Run one work list under a fleet; the batch layer's entry point.

    ``telemetry`` (the batch's sink) absorbs the coordinator's
    ``fleet`` stream so ``--telemetry-out`` files carry the fleet
    timeline for ``composite-tx profile``.
    """
    coordinator = FleetCoordinator(
        worker,
        todo,
        config,
        capture=capture,
        supervisor=supervisor,
        section=section,
        fingerprint=fingerprint,
    )
    outcomes, report = coordinator.run()
    if telemetry is not None and telemetry.enabled:
        telemetry.absorb(coordinator.telemetry.collect())
    return outcomes, report


# ----------------------------------------------------------------------
# the ambient fleet (how the CLI reaches every nested run_batch)
# ----------------------------------------------------------------------
_FLEET: ContextVar[Optional[FleetConfig]] = ContextVar(
    "repro_fleet_config", default=None
)


def ambient_fleet() -> Optional[FleetConfig]:
    """The active fleet configuration of this context, if any."""
    return _FLEET.get()


@contextmanager
def fleet_scope(config: FleetConfig) -> Iterator[FleetConfig]:
    """Make ``config`` ambient: every
    :func:`repro.analysis.batch.run_batch_report` under the ``with``
    block shards its grid across a fleet instead of a process pool —
    how ``--fleet N`` reaches grids buried inside experiment code
    without threading a parameter through every signature."""
    token = _FLEET.set(config)
    try:
        yield config
    finally:
        _FLEET.reset(token)


__all__ = [
    "FLEET_STREAM",
    "FleetConfig",
    "FleetCoordinator",
    "FleetProtocolError",
    "FleetReport",
    "WorkerTimeline",
    "ambient_fleet",
    "fleet_scope",
    "partition_shards",
    "run_fleet",
]
