"""Small statistics helpers for ensemble experiments.

Nothing here needs numpy (kept dependency-free so the analysis runs
anywhere the library does); the benchmarks only need means, standard
errors and binomial confidence intervals for acceptance rates.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0 for fewer than two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def std_error(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    return math.sqrt(variance(values) / n)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extremes, which
    acceptance-rate experiments hit constantly (0% and 100% rows).
    """
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def proportion_summary(successes: int, trials: int) -> str:
    """``"0.42 [0.31, 0.54]"`` — rate with its 95% Wilson interval."""
    if trials == 0:
        return "n/a"
    lo, hi = wilson_interval(successes, trials)
    return f"{successes / trials:.2f} [{lo:.2f}, {hi:.2f}]"
