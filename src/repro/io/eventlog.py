"""Schema-versioned JSONL event logs for streaming Comp-C checking.

An *event log* is the streaming counterpart of the JSON documents in
:mod:`repro.io.text_format`: one JSON object per line, arriving in
temporal order, describing a composite execution as it unfolds.  The
first line is a header naming the schema version and the *derivation
mode*; the rest are typed events:

``log``
    header — ``{"e": "log", "v": 1, "derive": "declared"}``.
``txn``
    a transaction declaration staged under its root: name, owning
    schedule, operations, and intra-transaction weak/strong orders.
``conflict`` / ``order``
    a ``CON`` pair / an output- or input-order pair of a schedule.
    Declarations *activate* only once every mentioned node's root has
    committed, so a prefix of the log always describes the committed
    part of the execution.
``begin`` / ``commit`` / ``abort``
    root (composite transaction) lifecycle.  ``abort`` discards the
    root's staged declarations; a later ``begin`` restarts it.
``access`` / ``call``
    one operation observed at a schedule — a leaf access or an
    invocation of a lower-level schedule.  Arrival order per schedule
    is the temporal layout (``RecordedExecution.executions``).
``end``
    end of stream.

:func:`events_from_recorded` converts a finished
:class:`~repro.criteria.registry.RecordedExecution` into the
equivalent event log; :class:`repro.stream.assembler.StreamAssembler`
folds the log back.  The two are exact inverses: converting and
reassembling reproduces the original system byte-for-byte (same
declaration order, hence the same interned element order in every
:class:`~repro.core.orders.Relation`).

See ``docs/STREAMING.md`` for the schema reference.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.criteria.registry import RecordedExecution
from repro.exceptions import ModelError, ParseError

EVENTLOG_VERSION = 1

EVENT_KINDS = (
    "log",
    "txn",
    "conflict",
    "order",
    "begin",
    "access",
    "call",
    "commit",
    "abort",
    "end",
)

DERIVE_MODES = ("declared", "temporal")

ORDER_KINDS = ("weak_output", "strong_output", "weak_input", "strong_input")

# Required Event attributes per kind (beyond ``kind`` itself).
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "log": ("derive",),
    "txn": ("root", "schedule", "txn", "ops"),
    "conflict": ("schedule", "a", "b"),
    "order": ("schedule", "order_kind", "a", "b"),
    "begin": ("root",),
    "access": ("root", "schedule", "txn", "op"),
    "call": ("root", "schedule", "txn", "op"),
    "commit": ("root",),
    "abort": ("root",),
    "end": (),
}

# Attribute name -> JSON key (identity unless listed).
_JSON_KEY = {"order_kind": "kind"}


@dataclass(frozen=True)
class Event:
    """One line of an event log.  Unused fields keep their defaults."""

    kind: str
    derive: Optional[str] = None
    root: Optional[str] = None
    schedule: Optional[str] = None
    txn: Optional[str] = None
    op: Optional[str] = None
    ops: Tuple[str, ...] = ()
    weak: Tuple[Tuple[str, str], ...] = ()
    strong: Tuple[Tuple[str, str], ...] = ()
    a: Optional[str] = None
    b: Optional[str] = None
    order_kind: Optional[str] = None
    item: Optional[str] = None
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ParseError(f"unknown event kind {self.kind!r}")
        for attr in _REQUIRED[self.kind]:
            value = getattr(self, attr)
            if value is None or (attr == "ops" and value == ()):
                raise ParseError(
                    f"{self.kind!r} event is missing required field "
                    f"{_JSON_KEY.get(attr, attr)!r}"
                )
        if self.kind == "log" and self.derive not in DERIVE_MODES:
            raise ParseError(f"unknown derivation mode {self.derive!r}")
        if self.kind == "order" and self.order_kind not in ORDER_KINDS:
            raise ParseError(f"unknown order kind {self.order_kind!r}")


_EVENT_ATTRS = tuple(f.name for f in fields(Event) if f.name != "kind")
_ATTR_OF_KEY = {_JSON_KEY.get(a, a): a for a in _EVENT_ATTRS}


def event_to_dict(event: Event) -> Dict[str, object]:
    """The JSON object for one event (defaults omitted)."""
    doc: Dict[str, object] = {"e": event.kind}
    if event.kind == "log":
        doc["v"] = EVENTLOG_VERSION
    for attr in _EVENT_ATTRS:
        value = getattr(event, attr)
        if value is None or value == ():
            continue
        key = _JSON_KEY.get(attr, attr)
        if attr in ("weak", "strong"):
            doc[key] = [list(pair) for pair in value]
        elif attr == "ops":
            doc[key] = list(value)
        else:
            doc[key] = value
    return doc


def _context(source: Optional[str], line: Optional[int]) -> str:
    if source is None and line is None:
        return ""
    where = source or "<event log>"
    if line is not None:
        where = f"{where}:{line}"
    return f"{where}: "


def event_from_dict(
    document: object,
    *,
    source: Optional[str] = None,
    line: Optional[int] = None,
) -> Event:
    """Validate one parsed JSON object into an :class:`Event`."""
    ctx = _context(source, line)
    if not isinstance(document, dict):
        raise ParseError(f"{ctx}event is not a JSON object")
    kind = document.get("e")
    if not isinstance(kind, str) or kind not in EVENT_KINDS:
        raise ParseError(f"{ctx}unknown event kind {kind!r}")
    kwargs: Dict[str, object] = {}
    for key, value in document.items():
        if key == "e":
            continue
        if key == "v":
            if kind != "log":
                raise ParseError(f"{ctx}'v' is only valid on the header")
            if value != EVENTLOG_VERSION:
                raise ParseError(
                    f"{ctx}unsupported event log version {value!r} "
                    f"(expected {EVENTLOG_VERSION})"
                )
            continue
        attr = _ATTR_OF_KEY.get(key)
        if attr is None:
            raise ParseError(f"{ctx}unknown event field {key!r}")
        if attr in ("weak", "strong"):
            try:
                value = tuple(
                    (str(pair[0]), str(pair[1])) for pair in value  # type: ignore[index]
                )
            except (TypeError, IndexError, KeyError):
                raise ParseError(
                    f"{ctx}field {key!r} is not a list of pairs"
                ) from None
        elif attr == "ops":
            if not isinstance(value, list) or not all(
                isinstance(o, str) for o in value
            ):
                raise ParseError(f"{ctx}field 'ops' is not a list of strings")
            value = tuple(value)
        elif not isinstance(value, str):
            raise ParseError(f"{ctx}field {key!r} is not a string")
        kwargs[attr] = value
    if kind == "log" and "v" not in document:
        raise ParseError(f"{ctx}header is missing the schema version 'v'")
    try:
        return Event(kind=kind, **kwargs)  # type: ignore[arg-type]
    except ParseError as exc:
        raise ParseError(f"{ctx}{exc}") from None


def dumps_event(event: Event) -> str:
    """One canonical JSONL line (no trailing newline)."""
    return json.dumps(
        event_to_dict(event), sort_keys=True, separators=(",", ":")
    )


def parse_event_line(
    text: str,
    *,
    source: Optional[str] = None,
    line: Optional[int] = None,
) -> Event:
    """Parse one JSONL line into an :class:`Event`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(
            f"{_context(source, line)}invalid JSON in event log: {exc.msg}"
        ) from None
    return event_from_dict(document, source=source, line=line)


def dumps_event_log(events: List[Event]) -> str:
    """The whole log as JSONL text (one event per line)."""
    return "".join(dumps_event(event) + "\n" for event in events)


def loads_event_log(
    text: str, *, source: Optional[str] = None
) -> List[Event]:
    """Parse a complete event log, validating the header.

    This is the strict batch loader — every line must parse and the
    first event must be a known-version header.  Tailing a *growing*
    log (torn tails, incremental arrival) is
    :class:`repro.stream.tail.EventLogTail`'s job.
    """
    events: List[Event] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        events.append(parse_event_line(stripped, source=source, line=number))
    if not events or events[0].kind != "log":
        raise ParseError(
            f"{_context(source, None)}event log does not start with a "
            "'log' header"
        )
    return events


def save_event_log(events: List[Event], path: Union[str, Path]) -> None:
    """Write a complete log (plain write; logs are append streams)."""
    Path(path).write_text(dumps_event_log(events), encoding="utf-8")


def append_events(events: List[Event], path: Union[str, Path]) -> int:
    """Append events to a (possibly new) log; returns the new size.

    The writer half of a live stream: one ``write`` call per batch, so
    a concurrent :class:`repro.stream.tail.EventLogTail` sees at most
    one torn line per poll.  Used by the chaos harness and tests to
    play the producer role.
    """
    data = dumps_event_log(events).encode("utf-8")
    with open(path, "ab") as handle:
        handle.write(data)
    return os.path.getsize(path)


def log_prefix_digest(
    path: Union[str, Path], offset: int
) -> Optional[str]:
    """SHA-256 hex digest of the log's first ``offset`` bytes.

    This is the fingerprint a :mod:`repro.stream.snapshot` binds to:
    a snapshot summarizes exactly the prefix ``[0, offset)``, so
    re-hashing that prefix at resume time detects truncation, rotation
    and divergence.  Returns ``None`` when the file is missing or
    shorter than ``offset`` — a prefix that cannot be verified.
    """
    if offset < 0:
        return None
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            remaining = offset
            while remaining > 0:
                chunk = handle.read(min(remaining, 1 << 20))
                if not chunk:
                    return None  # file shorter than the claimed prefix
                digest.update(chunk)
                remaining -= len(chunk)
    except FileNotFoundError:
        return None
    return digest.hexdigest()


def interleave_by_commit(events: List[Event]) -> List[Event]:
    """Re-lay a converter log out as a *live* trace.

    :func:`events_from_recorded` emits the batch-shaped layout — every
    declaration and arrival first, all commits at the tail — which is
    the degenerate case for an online checker (there is nothing to
    answer until the last handful of events).  A watch stream sees
    roots run and commit interleaved; model that as each root's txn
    declarations, begin, arrivals, and commit in turn.  Declared
    orders are unchanged, so the final system and verdict are too.
    """
    header, end = events[0], events[-1]
    txn_decls: Dict[str, List[Event]] = {}
    arrivals: Dict[str, List[Event]] = {}
    other_decls: List[Event] = []
    for e in events:
        if e.kind == "txn":
            assert e.root is not None
            txn_decls.setdefault(e.root, []).append(e)
        elif e.kind in ("conflict", "order"):
            other_decls.append(e)
        elif e.kind in ("access", "call"):
            assert e.root is not None
            arrivals.setdefault(e.root, []).append(e)
    begins = {e.root: e for e in events if e.kind == "begin"}
    out = [header] + other_decls
    for commit in (e for e in events if e.kind == "commit"):
        assert commit.root is not None
        out += txn_decls.get(commit.root, [])
        out.append(begins[commit.root])
        out += arrivals.get(commit.root, [])
        out.append(commit)
    out.append(end)
    if len(out) != len(events):
        raise ModelError(
            "interleave dropped or duplicated events "
            f"({len(out)} != {len(events)}); the log names roots its "
            "begin/commit events do not cover"
        )
    return out


def load_event_log(path: Union[str, Path]) -> List[Event]:
    return loads_event_log(
        Path(path).read_text(encoding="utf-8"), source=str(path)
    )


# ----------------------------------------------------------------------
# Converter: RecordedExecution -> event log
# ----------------------------------------------------------------------
def events_from_recorded(recorded: RecordedExecution) -> List[Event]:
    """The event log equivalent to a finished recorded execution.

    Declarations are emitted in the exact order
    :meth:`~repro.core.builder.SystemBuilder.from_spec` would replay
    them (per schedule: transactions, conflicts, then the four order
    kinds), so reassembling the log rebuilds a system whose interned
    element orders — and therefore every downstream ``Relation``,
    verdict and telemetry byte — match the original.  Operation
    arrival events mirror ``recorded.executions``; schedules without a
    recorded temporal layout get no arrival events (the declarations
    already carry their committed orders), which keeps the converter
    an exact inverse of assembly.
    """
    system = recorded.system
    leaf_set = set(system.leaves)
    events: List[Event] = [Event(kind="log", derive="declared")]
    for sname, schedule in system.schedules.items():
        for tname, txn in schedule.transactions.items():
            events.append(
                Event(
                    kind="txn",
                    root=system.root_of(tname),
                    schedule=sname,
                    txn=tname,
                    ops=tuple(txn.operations),
                    weak=tuple(txn.weak_order.pairs()),
                    strong=tuple(txn.strong_order.pairs()),
                )
            )
        for pair in sorted(sorted(p) for p in schedule.conflicts):
            events.append(
                Event(kind="conflict", schedule=sname, a=pair[0], b=pair[1])
            )
        for order_kind, relation in (
            ("weak_output", schedule.weak_output),
            ("strong_output", schedule.strong_output),
            ("weak_input", schedule.weak_input),
            ("strong_input", schedule.strong_input),
        ):
            for a, b in relation.pairs():
                events.append(
                    Event(
                        kind="order",
                        schedule=sname,
                        order_kind=order_kind,
                        a=a,
                        b=b,
                    )
                )
    for root in system.roots:
        events.append(Event(kind="begin", root=root))
    for sname, sequence in recorded.executions.items():
        if sname not in system.schedules:
            raise ModelError(
                f"executions name unknown schedule {sname!r}"
            )
        operations = set(system.schedules[sname].operations)
        for op in sequence:
            if op not in operations:
                raise ModelError(
                    f"executions of schedule {sname!r} name unknown "
                    f"operation {op!r}"
                )
            events.append(
                Event(
                    kind="access" if op in leaf_set else "call",
                    root=system.root_of(op),
                    schedule=sname,
                    txn=system.parent(op),
                    op=op,
                )
            )
    for root in system.roots:
        events.append(Event(kind="commit", root=root))
    events.append(Event(kind="end"))
    return events
