"""Machine-readable reduction traces.

Serializes a :class:`repro.core.reduction.ReductionResult` — every
front's nodes and relations, the per-level witness sequences, the
per-level cost profile, and the failure certificate when rejected — as
a JSON document.  Useful for debugging checker verdicts offline, for
diffing two runs, and as input to external visualizers.  Exposed on
the CLI as ``check --trace``.

Traces round-trip: :func:`load_trace` / :func:`trace_from_dict` rebuild
the fronts as real :class:`~repro.core.front.Front` objects (relations
included), so a saved trace can be re-validated and diffed against a
fresh run without the original execution file.  Every document carries
``TRACE_VERSION`` and loading rejects unknown versions instead of
misreading them.

Version history
---------------
``2``
    adds the explicit ``skip`` field: ``null`` for a fully-reduced run,
    ``{"direction": "precheck"}`` / ``{"direction": "refutation"}``
    when the verdict came from the static prover alone.  Version-1
    traces encoded precheck skips as ``"serial_witness": null`` —
    indistinguishable from a dropped witness — and lost the
    refutation-skip state entirely; they are still loadable, with the
    skip inferred from the certificate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.front import Front
from repro.core.orders import Relation
from repro.core.reduction import LevelProfile, ReductionResult
from repro.exceptions import ParseError
from repro.io.jsondoc import parse_json_document

TRACE_VERSION = 2


def _front_to_dict(front: Front) -> Dict:
    return {
        "level": front.level,
        "nodes": list(front.nodes),
        "observed": [list(p) for p in front.observed.pairs()],
        "input_weak": [list(p) for p in front.input_weak.pairs()],
        "input_strong": [list(p) for p in front.input_strong.pairs()],
        "conflict_consistent": front.is_conflict_consistent(),
    }


def trace_to_dict(result: ReductionResult) -> Dict:
    """The full reduction trace as a plain dictionary."""
    document: Dict = {
        "version": TRACE_VERSION,
        "order": result.system.order,
        "roots": list(result.system.roots),
        "succeeded": result.succeeded,
        "fronts": [_front_to_dict(front) for front in result.fronts],
        "witnesses": [list(w) for w in result.witnesses],
        "profile": [
            {
                "level": p.level,
                "seconds": p.seconds,
                "closure_calls": p.closure_calls,
                "closure_rows": p.closure_rows,
                "nodes": p.nodes,
                "observed_pairs": p.observed_pairs,
                "skipped": p.skipped,
            }
            for p in result.profile
        ],
    }
    if result.static_certificate is not None:
        document["static_certificate"] = result.static_certificate.to_dict()
    if result.skipped_by_precheck:
        document["skip"] = {"direction": "precheck"}
    elif result.skipped_by_refutation:
        document["skip"] = {"direction": "refutation"}
    else:
        document["skip"] = None
    if result.succeeded:
        if result.skipped_by_precheck:
            # No reduction ran, so there is no witness to record; the
            # explicit ``skip`` above is what says so (in version 1
            # this ``null`` was the only — ambiguous — marker).
            document["serial_witness"] = None
        else:
            document["serial_witness"] = result.serial_order()
    else:
        failure = result.failure
        document["failure"] = {
            "level": failure.level,
            "stage": failure.stage,
            "cycle": list(failure.cycle),
            "blocked": list(failure.blocked),
            "description": failure.describe(),
        }
    return document


def dumps_trace(result: ReductionResult, *, indent: int = 2) -> str:
    return json.dumps(trace_to_dict(result), indent=indent, sort_keys=True)


def save_trace(result: ReductionResult, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps_trace(result), encoding="utf-8")


# ----------------------------------------------------------------------
# loading (the other half of the round trip)
# ----------------------------------------------------------------------
@dataclass
class ReductionTrace:
    """A reloaded reduction trace.

    A system-free view of a :class:`ReductionResult`: the fronts are
    real :class:`Front` objects (relations rebuilt, so consistency can
    be re-checked), but the composite system itself is not stored in a
    trace — reload the execution file for that.
    """

    order: int
    roots: List[str]
    succeeded: bool
    fronts: List[Front]
    witnesses: List[List[str]]
    profile: List[LevelProfile] = field(default_factory=list)
    serial_witness: Optional[List[str]] = None
    failure: Optional[Dict] = None
    #: the static prover's report (plain dict) when the producing run
    #: used ``static_precheck``; ``None`` otherwise
    static_certificate: Optional[Dict] = None
    #: ``{"direction": "precheck" | "refutation"}`` when the verdict
    #: came from the static prover alone; ``None`` when the reduction
    #: actually ran (inferred for version-1 traces)
    skip: Optional[Dict] = None

    @property
    def skipped_by_precheck(self) -> bool:
        return self.skip is not None and self.skip.get("direction") == "precheck"

    @property
    def skipped_by_refutation(self) -> bool:
        return (
            self.skip is not None
            and self.skip.get("direction") == "refutation"
        )

    def level(self, level: int) -> Front:
        for front in self.fronts:
            if front.level == level:
                return front
        raise ParseError(f"trace has no level-{level} front")


def _front_from_dict(document: Dict) -> Front:
    nodes = tuple(document["nodes"])
    front = Front(
        level=document["level"],
        nodes=nodes,
        observed=Relation(document["observed"], elements=nodes),
        input_weak=Relation(document["input_weak"], elements=nodes),
        input_strong=Relation(document["input_strong"], elements=nodes),
    )
    recorded = document.get("conflict_consistent")
    if recorded is not None and recorded != front.is_conflict_consistent():
        raise ParseError(
            f"trace level-{front.level} front records "
            f"conflict_consistent={recorded} but the reloaded relations "
            "disagree"
        )
    return front


def _infer_v1_skip(document: Dict) -> Optional[Dict]:
    """Recover the skip state a version-1 trace only implied.

    Version 1 had no ``skip`` field: a precheck-skipped accept was the
    pattern (succeeded, no fronts, certified certificate, null
    witness), and a refutation skip (succeeded=False, no fronts,
    certificate verdict ``certified_unsafe``) was not distinguishable
    from a trace whose fronts were simply stripped — we trust the
    certificate here, which a reduction-produced rejection never
    carries with that verdict.
    """
    if document.get("fronts"):
        return None
    certificate = document.get("static_certificate")
    if not certificate:
        return None
    if (
        document.get("succeeded")
        and certificate.get("certified")
        and document.get("serial_witness") is None
    ):
        return {"direction": "precheck"}
    if (
        not document.get("succeeded")
        and certificate.get("verdict") == "certified_unsafe"
    ):
        return {"direction": "refutation"}
    return None


def trace_from_dict(document: Dict) -> ReductionTrace:
    """Rebuild a :class:`ReductionTrace` from a trace dictionary.

    Raises :class:`~repro.exceptions.ParseError` on a missing or
    unsupported ``version`` and when a front's recorded consistency
    verdict contradicts its reloaded relations.
    """
    version = document.get("version")
    if version not in (1, TRACE_VERSION):
        raise ParseError(
            f"unsupported trace version {version!r} "
            f"(this library reads versions 1..{TRACE_VERSION})"
        )
    skip = document.get("skip")
    if version == 1:
        skip = _infer_v1_skip(document)
    return ReductionTrace(
        order=document["order"],
        roots=list(document["roots"]),
        succeeded=document["succeeded"],
        fronts=[_front_from_dict(f) for f in document.get("fronts", [])],
        witnesses=[list(w) for w in document.get("witnesses", [])],
        profile=[
            LevelProfile(
                level=p["level"],
                seconds=p["seconds"],
                closure_calls=p["closure_calls"],
                closure_rows=p["closure_rows"],
                nodes=p["nodes"],
                observed_pairs=p["observed_pairs"],
                skipped=p.get("skipped", False),
            )
            for p in document.get("profile", [])
        ],
        serial_witness=document.get("serial_witness"),
        failure=document.get("failure"),
        static_certificate=document.get("static_certificate"),
        skip=skip,
    )


def loads_trace(text: str, *, source: Optional[str] = None) -> ReductionTrace:
    """Parse trace JSON with the hardened document loader: invalid,
    truncated, or non-object text raises :class:`ParseError` carrying
    a ``CTX4xx`` diagnostic (file, line, byte offset) instead of a raw
    ``json.JSONDecodeError``."""
    return trace_from_dict(
        parse_json_document(text, source=source, expect_object=True)
    )


def load_trace(path: Union[str, Path]) -> ReductionTrace:
    return loads_trace(
        Path(path).read_text(encoding="utf-8"), source=str(path)
    )


def diff_traces(a: ReductionTrace, b: ReductionTrace) -> List[str]:
    """Human-readable differences between two traces.

    Compares verdicts, front structure, and witnesses — not the
    ``profile`` timings, which vary run to run by construction.  An
    empty list means the reductions were equivalent."""
    out: List[str] = []
    if a.succeeded != b.succeeded:
        out.append(f"verdict: {a.succeeded} vs {b.succeeded}")
    if a.skip != b.skip:
        out.append(f"skip: {a.skip} vs {b.skip}")
    if a.serial_witness != b.serial_witness:
        out.append(
            f"serial witness: {a.serial_witness} vs {b.serial_witness}"
        )
    levels_a = {front.level: front for front in a.fronts}
    levels_b = {front.level: front for front in b.fronts}
    for level in sorted(set(levels_a) | set(levels_b)):
        fa, fb = levels_a.get(level), levels_b.get(level)
        if fa is None or fb is None:
            out.append(
                f"level {level}: present only in "
                f"{'second' if fa is None else 'first'} trace"
            )
            continue
        if fa.nodes != fb.nodes:
            out.append(
                f"level {level} nodes: {list(fa.nodes)} vs {list(fb.nodes)}"
            )
        for attr in ("observed", "input_weak", "input_strong"):
            pa = list(getattr(fa, attr).pairs())
            pb = list(getattr(fb, attr).pairs())
            if pa != pb:
                out.append(
                    f"level {level} {attr}: {len(pa)} pair(s) vs "
                    f"{len(pb)} pair(s)"
                )
    if a.witnesses != b.witnesses:
        out.append("witness sequences differ")
    return out
