"""Machine-readable reduction traces.

Serializes a :class:`repro.core.reduction.ReductionResult` — every
front's nodes and relations, the per-level witness sequences, and the
failure certificate when rejected — as a JSON document.  Useful for
debugging checker verdicts offline, for diffing two runs, and as input
to external visualizers.  Exposed on the CLI as ``check --trace``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.front import Front
from repro.core.reduction import ReductionResult

TRACE_VERSION = 1


def _front_to_dict(front: Front) -> Dict:
    return {
        "level": front.level,
        "nodes": list(front.nodes),
        "observed": [list(p) for p in front.observed.pairs()],
        "input_weak": [list(p) for p in front.input_weak.pairs()],
        "input_strong": [list(p) for p in front.input_strong.pairs()],
        "conflict_consistent": front.is_conflict_consistent(),
    }


def trace_to_dict(result: ReductionResult) -> Dict:
    """The full reduction trace as a plain dictionary."""
    document: Dict = {
        "version": TRACE_VERSION,
        "order": result.system.order,
        "roots": list(result.system.roots),
        "succeeded": result.succeeded,
        "fronts": [_front_to_dict(front) for front in result.fronts],
        "witnesses": [list(w) for w in result.witnesses],
    }
    if result.succeeded:
        document["serial_witness"] = result.serial_order()
    else:
        failure = result.failure
        document["failure"] = {
            "level": failure.level,
            "stage": failure.stage,
            "cycle": list(failure.cycle),
            "blocked": list(failure.blocked),
            "description": failure.describe(),
        }
    return document


def dumps_trace(result: ReductionResult, *, indent: int = 2) -> str:
    return json.dumps(trace_to_dict(result), indent=indent, sort_keys=True)


def save_trace(result: ReductionResult, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps_trace(result))
