"""Persistence: JSON text format for composite executions and traces."""

from repro.io.text_format import dumps, load, loads, save, system_to_spec
from repro.io.trace import dumps_trace, save_trace, trace_to_dict

__all__ = [
    "dumps",
    "load",
    "loads",
    "save",
    "system_to_spec",
    "dumps_trace",
    "save_trace",
    "trace_to_dict",
]
