"""Persistence: JSON text format for composite executions and traces."""

from repro.io.text_format import dumps, load, loads, save, system_to_spec
from repro.io.trace import (
    ReductionTrace,
    diff_traces,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "dumps",
    "load",
    "loads",
    "save",
    "system_to_spec",
    "ReductionTrace",
    "diff_traces",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
]
