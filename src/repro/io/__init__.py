"""Persistence: JSON text format for composite executions, reduction
traces, and streaming event logs."""

from repro.io.eventlog import (
    EVENTLOG_VERSION,
    Event,
    dumps_event,
    dumps_event_log,
    event_from_dict,
    event_to_dict,
    events_from_recorded,
    load_event_log,
    loads_event_log,
    parse_event_line,
    save_event_log,
)
from repro.io.text_format import dumps, load, loads, save, system_to_spec
from repro.io.trace import (
    ReductionTrace,
    diff_traces,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "dumps",
    "load",
    "loads",
    "save",
    "system_to_spec",
    "EVENTLOG_VERSION",
    "Event",
    "dumps_event",
    "dumps_event_log",
    "event_from_dict",
    "event_to_dict",
    "events_from_recorded",
    "load_event_log",
    "loads_event_log",
    "parse_event_line",
    "save_event_log",
    "ReductionTrace",
    "diff_traces",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
]
