"""Hardened JSON document parsing for the :mod:`repro.io` loaders.

:func:`parse_json_document` is what ``load``/``loads`` and the trace
loaders call instead of raw :func:`json.loads`.  A file that is not
valid JSON no longer surfaces as a bare :class:`json.JSONDecodeError`
— it becomes a :class:`~repro.exceptions.ParseError` carrying a
lint-style diagnostic with a stable code, the offending file, the
1-based line, and the byte offset:

* ``CTX401`` — the text is not valid JSON (a defect *inside* the
  document: a stray character, a missing delimiter);
* ``CTX402`` — the JSON text ends unexpectedly, the signature of a
  **truncated** file (an interrupted write, a partial copy).  The
  distinction matters operationally: CTX402 means go find the
  complete original, CTX401 means the document was never valid;
* ``CTX403`` — the text parsed but its root is not a JSON object
  (every composite-tx document format is an object at the root).

The diagnostic rides on the exception (``err.diagnostic``, with
``err.line`` and ``err.offset``), so callers can match codes exactly
like lint findings; see docs/RESILIENCE.md.
"""

from __future__ import annotations

import json
from typing import Any, NoReturn, Optional

from repro.exceptions import ParseError


def _raise(
    code: str,
    message: str,
    *,
    source: Optional[str],
    line: Optional[int] = None,
    offset: Optional[int] = None,
    fix_hint: Optional[str] = None,
) -> NoReturn:
    # imported lazily: the lint package imports repro.io for its
    # version constants, so a module-level import here would be a cycle
    from repro.lint.diagnostics import DiagnosticCollector

    collector = DiagnosticCollector(file=source)
    diagnostic = collector.report(code, message, fix_hint=fix_hint)
    error = ParseError(
        diagnostic.render(), offset=offset, diagnostic=diagnostic
    )
    # the rendered diagnostic already spells out the line; set the
    # attribute without re-appending ParseError's "(line N)" suffix
    error.line = line
    raise error from None


def parse_json_document(
    text: str,
    *,
    source: Optional[str] = None,
    expect_object: bool = False,
) -> Any:
    """Parse ``text`` as one JSON document, with lint-style failures.

    ``source`` names the originating file in the diagnostic (omitted
    for in-memory text).  With ``expect_object`` a non-object root is
    refused as CTX403.  Raises :class:`~repro.exceptions.ParseError`
    whose ``diagnostic``/``line``/``offset`` attributes pinpoint the
    defect; never lets :class:`json.JSONDecodeError` escape.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as err:
        # a decode error at/after the last non-whitespace character
        # means the text ended mid-value — truncation, not corruption
        truncated = err.pos >= len(text.rstrip())
        _raise(
            "CTX402" if truncated else "CTX401",
            (
                "JSON text ends unexpectedly"
                if truncated
                else f"not valid JSON: {err.msg}"
            )
            + f" at line {err.lineno}, column {err.colno} "
            f"(byte offset {err.pos})",
            source=source,
            line=err.lineno,
            offset=err.pos,
            fix_hint=(
                "the file looks truncated; recover the complete original"
                if truncated
                else None
            ),
        )
    if expect_object and not isinstance(document, dict):
        _raise(
            "CTX403",
            "document root is "
            f"{type(document).__name__}, expected a JSON object",
            source=source,
            line=1,
            offset=0,
        )
    return document
