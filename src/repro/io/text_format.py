"""Save/load composite executions as JSON documents.

The on-disk shape is the nested-dict *spec* that
:meth:`repro.core.builder.SystemBuilder.from_spec` consumes, extended
with a top-level ``executions`` section for temporal layouts.  Orders
are stored explicitly (not as ``executed`` sequences) so a round trip
reproduces the exact committed relations of the original system.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem
from repro.criteria.registry import RecordedExecution
from repro.exceptions import ParseError
from repro.io.jsondoc import parse_json_document

FORMAT_VERSION = 1


def system_to_spec(system: CompositeSystem) -> Dict:
    """Extract the builder spec of an existing system."""
    schedules: Dict[str, Dict] = {}
    for name, schedule in system.schedules.items():
        transactions = {}
        for tname, txn in schedule.transactions.items():
            transactions[tname] = {
                "ops": list(txn.operations),
                "weak": [list(p) for p in txn.weak_order.pairs()],
                "strong": [list(p) for p in txn.strong_order.pairs()],
            }
        schedules[name] = {
            "transactions": transactions,
            "conflicts": sorted(sorted(pair) for pair in schedule.conflicts),
            "weak_output": [list(p) for p in schedule.weak_output.pairs()],
            "strong_output": [list(p) for p in schedule.strong_output.pairs()],
            "weak_input": [list(p) for p in schedule.weak_input.pairs()],
            "strong_input": [list(p) for p in schedule.strong_input.pairs()],
        }
    return {"version": FORMAT_VERSION, "schedules": schedules}


def dumps(
    recorded: Union[RecordedExecution, CompositeSystem], *, indent: int = 2
) -> str:
    """Serialize a system or recorded execution to JSON text."""
    if isinstance(recorded, CompositeSystem):
        document = system_to_spec(recorded)
    else:
        document = system_to_spec(recorded.system)
        document["executions"] = {
            name: list(seq) for name, seq in recorded.executions.items()
        }
    return json.dumps(document, indent=indent, sort_keys=True)


def loads(text: str, *, source: Optional[str] = None) -> RecordedExecution:
    """Parse JSON text back into a recorded execution.

    Systems saved without an ``executions`` section come back with an
    empty execution map.  ``source`` names the originating file in
    parse diagnostics; text that is not valid JSON, truncated, or not
    an object at the root raises :class:`ParseError` carrying a
    ``CTX401``/``CTX402``/``CTX403`` diagnostic with file, line, and
    byte offset (see :mod:`repro.io.jsondoc`).
    """
    document = parse_json_document(text, source=source, expect_object=True)
    if "schedules" not in document:
        raise ParseError("document has no 'schedules' section")
    version = document.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported format version {version}")
    builder = SystemBuilder.from_spec(document)
    system = builder.build()
    executions = {
        name: list(seq)
        for name, seq in document.get("executions", {}).items()
    }
    return RecordedExecution(system=system, executions=executions)


def save(
    recorded: Union[RecordedExecution, CompositeSystem],
    path: Union[str, Path],
) -> None:
    Path(path).write_text(dumps(recorded))


def load(path: Union[str, Path]) -> RecordedExecution:
    return loads(Path(path).read_text(), source=str(path))
