"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
check       decide Comp-C for a saved execution (JSON)
lint        static analysis of system/trace/topology documents
info        structure + every applicable criterion for a saved execution
render      DOT/ASCII renderings of a saved execution
generate    random composite execution -> JSON file
simulate    run the discrete-event simulator, print metrics
chaos       simulate under injected faults, re-check Comp-C per protocol
figures     walk the paper's Figures 1-4
experiment  run one of the paper-artifact experiments (t1..t4, h1, p2, a1)
compare     Def.-18 front equivalence of two saved executions
report      run every experiment, write one Markdown report
profile     render a telemetry JSONL file into per-phase time tables
eventlog    convert a saved execution into a streaming JSONL event log
watch       tail an event log through the incremental Comp-C checker
resume      continue a killed run from its --checkpoint-out file

``check``, ``simulate``, ``chaos`` and ``experiment`` accept
``--telemetry-out PATH``: the run executes under an ambient
:mod:`repro.obs` sink and writes one schema-versioned JSONL event
stream (spans, counters) to ``PATH``, deterministically ordered across
worker counts.  ``profile PATH`` turns such a file back into tables
(see docs/OBSERVABILITY.md).

``chaos`` and ``experiment`` accept ``--checkpoint-out PATH``: the run
periodically writes an atomic, schema-versioned checkpoint of every
completed grid cell.  A killed run continues with ``composite-tx
resume PATH`` (or ``--resume-from PATH`` on the original command),
re-running only what had not finished — the resumed run's metrics and
canonical telemetry are byte-identical to an uninterrupted run's.
``chaos`` additionally supervises its cells (``--task-timeout``,
``--task-retries``) and quarantines cells that keep failing instead of
aborting the grid; ``--fail-fast`` restores the abort-everything
behaviour.  ``--fleet N`` (on ``chaos`` and ``experiment``) replaces
the process pool with the lease-based coordinator of
:mod:`repro.analysis.fleet` — long-lived heartbeating workers that
survive SIGKILL, hangs, and garbage messages with byte-identical
output (``--heartbeat-interval``, ``--lease-timeout``,
``--max-shard-retries`` tune it).  See docs/RESILIENCE.md.

The CLI is a thin veneer over the library; every command maps onto the
public API used by the examples and benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import banner, format_table
from repro.core.correctness import check_composite_correctness
from repro.criteria.registry import classify
from repro.io import load, save
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.viz.ascii_art import render_forest, render_levels
from repro.viz.dot import forest_dot, invocation_graph_dot
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)


def _topology(args: argparse.Namespace):
    kind = args.topology
    if kind == "stack":
        return stack_topology(args.depth)
    if kind == "fork":
        return fork_topology(args.width)
    if kind == "join":
        return join_topology(args.width)
    if kind == "tree":
        return tree_topology(args.depth, args.width)
    if kind == "dag":
        return random_dag_topology(args.depth, args.width, seed=args.seed)
    raise SystemExit(f"unknown topology {kind!r}")


def _add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard independent runs across N processes (1 = serial; "
        "output is bit-identical either way)",
    )


def _add_fleet_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="drive the grid with a fault-tolerant fleet of N "
        "long-lived heartbeating workers instead of a process pool: "
        "shards are leased with deadlines, crashed or hung workers "
        "are replaced and their shards re-run, duplicate results are "
        "deduplicated — output stays byte-identical to --workers 1 "
        "(0 = off; see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often fleet workers prove liveness (default: 0.5)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="missed-heartbeat deadline before a fleet worker is "
        "presumed hung and its shard reassigned (default: "
        "max(6 x heartbeat interval, 3))",
    )
    parser.add_argument(
        "--max-shard-retries",
        type=int,
        default=3,
        metavar="N",
        help="distinct fleet workers a shard may fail on before it is "
        "quarantined instead of reassigned (default: 3)",
    )


def _fleet_config(args: argparse.Namespace):
    """The :class:`repro.analysis.fleet.FleetConfig` for this
    invocation, or ``None`` when ``--fleet`` is off/absent."""
    if getattr(args, "fleet", 0) <= 0:
        return None
    from repro.analysis.fleet import FleetConfig

    return FleetConfig(
        workers=args.fleet,
        heartbeat_interval=args.heartbeat_interval,
        lease_timeout=args.lease_timeout,
        max_shard_retries=args.max_shard_retries,
    )


def _add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write a schema-versioned JSONL telemetry stream (spans + "
        "counters) for this run; render it with `composite-tx profile`",
    )


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-out",
        metavar="PATH",
        help="periodically write an atomic checkpoint of completed "
        "grid cells; a killed run continues with `composite-tx resume "
        "PATH`",
    )
    parser.add_argument(
        "--resume-from",
        metavar="PATH",
        help="resume from a checkpoint written by --checkpoint-out: "
        "completed cells are restored, only unfinished work re-runs "
        "(quarantined cells are NOT retried; rerun without this flag "
        "to retry them)",
    )


def _add_static_precheck_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--static-precheck",
        action="store_true",
        help="consult the two-sided static analyzer first and skip the "
        "reduction when the system is provably Comp-C (certified) or "
        "provably rejected (refuted, replay-validated witness) -- "
        "identical verdicts either way; recorded as a skipped profile "
        "level",
    )


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        choices=("stack", "fork", "join", "tree", "dag"),
        default="stack",
    )
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--width", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_check(args: argparse.Namespace) -> int:
    recorded = load(args.file)
    report = check_composite_correctness(
        recorded.system, static_precheck=args.static_precheck
    )
    print(report.narrative())
    if args.profile:
        print()
        print(banner("reduction profile"))
        rows = [
            [
                f"{p.level} (skipped)" if p.skipped else p.level,
                f"{p.seconds * 1000:.2f}",
                p.closure_calls,
                p.closure_rows,
                p.nodes,
                p.observed_pairs,
            ]
            for p in report.reduction.profile
        ]
        totals = report.reduction.profile_totals()
        rows.append(
            [
                "total",
                f"{totals['seconds'] * 1000:.2f}",
                int(totals["closure_calls"]),
                int(totals["closure_rows"]),
                "",
                "",
            ]
        )
        print(
            format_table(
                ["level", "ms", "closures", "rows", "nodes", "obs pairs"],
                rows,
            )
        )
    if not report.correct and args.explain:
        print()
        print(report.explain())
    if args.trace:
        from repro.io.trace import save_trace

        save_trace(report.reduction, args.trace)
        print(f"reduction trace written to {args.trace}")
    if args.strict and not report.correct:
        return 2
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        lint_paths,
        render_json,
        render_text,
        write_witness_file,
    )

    result, missing = lint_paths(args.paths, workers=args.workers)
    for path in missing:
        print(f"lint: no such file or directory: {path}", file=sys.stderr)
    if missing:
        return 1
    if not result.reports:
        print("lint: no JSON documents found", file=sys.stderr)
        return 1
    if args.format == "json":
        print(render_json(result, strict=args.strict), end="")
    else:
        print(
            render_text(result, strict=args.strict, explain=args.explain)
        )
    if args.witness_out:
        # Written before the exit code is decided: a refuting run (exit
        # 2) is exactly when the witness document matters.
        write_witness_file(args.witness_out, result)
        print(
            f"witness document written to {args.witness_out}",
            file=sys.stderr,
        )
    return result.exit_code(strict=args.strict)


def cmd_info(args: argparse.Namespace) -> int:
    recorded = load(args.file)
    system = recorded.system
    print(banner("structure"))
    print(render_levels(system))
    print()
    print(render_forest(system))
    if recorded.executions:
        from repro.viz.timeline import render_lanes

        print(banner("execution lanes"))
        print(render_lanes(recorded))
    print(banner("criteria"))
    rows = []
    for name, verdict in classify(recorded).items():
        cell = "-" if verdict is None else ("yes" if verdict else "NO")
        rows.append([name, cell])
    print(format_table(["criterion", "verdict"], rows))
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    recorded = load(args.file)
    if args.format == "dot-invocation":
        print(invocation_graph_dot(recorded.system))
    elif args.format == "dot-forest":
        print(forest_dot(recorded.system))
    else:
        print(render_levels(recorded.system))
        print()
        print(render_forest(recorded.system))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    spec = _topology(args)
    recorded = generate(
        spec,
        WorkloadConfig(
            seed=args.seed,
            roots=args.roots,
            conflict_probability=args.conflicts,
            layout=args.layout,
        ),
    )
    save(recorded, args.output)
    verdict = check_composite_correctness(recorded.system)
    print(
        f"wrote {args.output}: {spec.name}, {args.roots} roots, "
        f"{'Comp-C' if verdict.correct else 'NOT Comp-C'}"
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    spec = _topology(args)
    result = simulate(
        SimulationConfig(
            topology=spec,
            protocol=args.protocol,
            clients=args.clients,
            transactions_per_client=args.transactions,
            seed=args.seed,
            program=ProgramConfig(
                items_per_component=args.items, item_skew=args.skew
            ),
        )
    )
    report = None
    if result.assembled is not None:
        report = check_composite_correctness(
            result.assembled.recorded.system,
            static_precheck=args.static_precheck,
        )
        if report.reduction.skipped_by_precheck:
            result.metrics.static_precheck_skips += 1
        if report.reduction.skipped_by_refutation:
            result.metrics.static_refute_skips += 1
    rows = [[k, v] for k, v in result.metrics.summary().items()]
    print(format_table(["metric", "value"], rows))
    if report is not None:
        verdict = "Comp-C" if report.correct else "NOT Comp-C"
        if report.reduction.skipped_by_precheck:
            verdict += " (statically certified, reduction skipped)"
        elif report.reduction.skipped_by_refutation:
            verdict += " (statically refuted, reduction skipped)"
        print(f"committed execution: {verdict}")
        if args.output:
            save(result.assembled.recorded, args.output)
            print(f"recorded execution written to {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.batch import chaos_grid_report
    from repro.analysis.supervise import BatchSupervisor

    spec = _topology(args)
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    supervisor = BatchSupervisor(
        task_timeout=args.task_timeout,
        max_attempts=max(1, args.task_retries),
        retry_seed=args.seed,
        fail_fast=args.fail_fast,
    )
    grid = chaos_grid_report(
        spec,
        protocols,
        tuple(range(args.seed, args.seed + args.runs)),
        workers=args.workers,
        supervisor=supervisor,
        intensity=args.intensity,
        clients=args.clients,
        transactions_per_client=args.transactions,
        retry_policy=args.retry_policy,
        static_precheck=args.static_precheck,
    )
    points = grid.points
    print(
        format_table(
            [
                "protocol",
                "commits",
                "gave up",
                "availability",
                "abort rate",
                "aborts by reason",
                "wasted ops",
                "Comp-C",
                "lint",
                "verdicts",
            ],
            [
                [
                    p.protocol,
                    p.commits,
                    p.gave_up,
                    f"{p.availability:.3f}",
                    f"{p.abort_rate:.3f}",
                    p.abort_breakdown(),
                    p.discarded_operations,
                    f"{p.comp_c_runs}/{p.assembled_runs}",
                    p.lint_breakdown(),
                    p.verdict_breakdown(),
                ]
                for p in points
            ],
        )
    )
    print(
        f"\nfault intensity {args.intensity} over {args.runs} seeded "
        f"run(s) per protocol on {spec.name}; faults degrade liveness, "
        f"never safety: composite-aware protocols stay Comp-C."
    )
    if grid.quarantine:
        print()
        print(grid.quarantine.render())
    if grid.fleet is not None:
        print()
        print(grid.fleet.render())
    if args.strict:
        for point in points:
            if point.protocol in ("cc", "s2pl") and point.comp_c_rate < 1.0:
                return 2
    return 1 if grid.quarantine else 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro import reduce_to_roots
    from repro.figures import (
        figure1_system,
        figure2_system,
        figure3_system,
        figure4_system,
    )

    factories = {
        1: figure1_system,
        2: figure2_system,
        3: figure3_system,
        4: figure4_system,
    }
    numbers = [args.number] if args.number else sorted(factories)
    for n in numbers:
        print(banner(f"Figure {n}"))
        print(reduce_to_roots(factories[n]()).narrative())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "t1":
        from repro.analysis.theorems import theorem1_experiment

        rows = theorem1_experiment(trials=args.trials, workers=args.workers)
        print(
            format_table(
                ["configuration", "trials", "accepted", "witnesses", "certificates"],
                [
                    [r.label, r.trials, r.accepted, r.witnesses_valid, r.certificates_valid]
                    for r in rows
                ],
            )
        )
        return 0 if all(r.all_valid for r in rows) else 2
    if name in ("t2", "t3", "t4"):
        from repro.analysis.theorems import (
            theorem2_rows,
            theorem3_rows,
            theorem4_rows,
        )

        rows = {
            "t2": theorem2_rows,
            "t3": theorem3_rows,
            "t4": theorem4_rows,
        }[name](trials=args.trials, workers=args.workers)
        print(
            format_table(
                ["configuration", "trials", "agreements", "accepted"],
                [[r.label, r.trials, r.agreements, r.accepted] for r in rows],
            )
        )
        return 0 if all(r.disagreements == 0 for r in rows) else 2
    if name == "h1":
        from repro.analysis.hierarchy import (
            HIERARCHY,
            run_hierarchy_experiment,
            total_violations,
        )

        rows = run_hierarchy_experiment(
            trials=args.trials, workers=args.workers
        )
        print(
            format_table(
                ["conflict rate"] + list(HIERARCHY),
                [
                    [row.conflict_probability]
                    + [f"{row.accepted[c]}/{row.trials}" for c in HIERARCHY]
                    for row in rows
                ],
            )
        )
        print(f"containment violations: {total_violations(rows)}")
        return 0 if total_violations(rows) == 0 else 2
    if name == "p2":
        from repro.analysis.scaling import (
            checker_scaling,
            incremental_speedup,
            sweep_speedup,
        )

        points = checker_scaling(repeats=2)
        print(
            format_table(
                ["point", "nodes", "ms"],
                [
                    [p.label, p.operations, f"{p.seconds * 1000:.2f}"]
                    for p in points
                ],
            )
        )
        print()
        print(banner("incremental closure vs from-scratch"))
        speedups = incremental_speedup(repeats=2)
        print(
            format_table(
                ["topology", "nodes", "scratch ms", "incr ms", "speedup",
                 "rows", "verdicts"],
                [
                    [
                        s.label,
                        s.operations,
                        f"{s.scratch_seconds * 1000:.1f}",
                        f"{s.incremental_seconds * 1000:.1f}",
                        f"{s.speedup:.2f}x",
                        f"{s.incremental_rows}/{s.scratch_rows}",
                        "same" if s.verdicts_match else "DIFFER",
                    ]
                    for s in speedups
                ],
            )
        )
        if args.workers > 1:
            sweep = sweep_speedup(workers=args.workers)
            print(
                f"\n{sweep.label}: {sweep.tasks} tasks, serial "
                f"{sweep.serial_seconds:.2f}s vs {sweep.workers} workers "
                f"{sweep.parallel_seconds:.2f}s ({sweep.speedup:.2f}x), "
                f"results {'identical' if sweep.identical else 'DIFFER'}"
            )
        return 0 if all(s.verdicts_match for s in speedups) else 2
    if name == "a1":
        from repro.analysis.batch import ablation_task, run_batch
        from repro.workloads.generator import WorkloadConfig as WC

        spec = stack_topology(2)
        configs = [
            WC(seed=s, conflict_probability=0.2) for s in range(args.trials)
        ]
        verdicts = run_batch(
            [
                (spec, config, forget)
                for forget in (True, False)
                for config in configs
            ],
            ablation_task,
            workers=args.workers,
        )
        base = sum(verdicts[:len(configs)])
        ablated = sum(verdicts[len(configs):])
        print(
            format_table(
                ["variant", "accepted", "of"],
                [
                    ["default", base, len(configs)],
                    ["no forgetting", ablated, len(configs)],
                ],
            )
        )
        return 0
    raise SystemExit(f"unknown experiment {name!r}")


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.batch import compare_front_task, run_batch
    from repro.core.equivalence import level_equivalent_systems

    a = load(args.file_a).system
    b = load(args.file_b).system
    level_a = args.level_a if args.level_a is not None else a.order
    level_b = args.level_b if args.level_b is not None else b.order
    rename = {}
    for pair in args.rename or []:
        if "=" not in pair:
            raise SystemExit(f"--rename expects old=new, got {pair!r}")
        old, new = pair.split("=", 1)
        rename[old] = new
    descriptions = run_batch(
        [(args.file_a, level_a), (args.file_b, level_b)],
        compare_front_task,
        workers=args.workers,
    )
    for description in descriptions:
        print(description)
    equivalent = level_equivalent_systems(
        a, level_a, b, level_b, rename=rename or None
    )
    print(
        f"level-{level_a}/level-{level_b} equivalent (Def. 18): "
        + ("YES" if equivalent else "NO")
    )
    return 0 if equivalent else 3


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import TornTail, iter_records, validate_records
    from repro.obs.profile import render_profile

    # Stream the records instead of slurping: a sink a live run is
    # still appending to reads cleanly, its torn tail tolerated.
    torn_box: List[TornTail] = []
    records = list(iter_records(args.file, on_torn=torn_box.append))
    torn = torn_box[0] if torn_box else None
    if torn is not None:
        print(f"warning: {torn.describe()}", file=sys.stderr)
    problems = validate_records(records)
    if args.check:
        if torn is not None:
            problems = [torn.describe()] + problems
        for problem in problems:
            print(f"telemetry: {problem}", file=sys.stderr)
        print(
            f"{args.file}: {len(records)} records, "
            + ("INVALID" if problems else "schema OK")
        )
        return 1 if problems else 0
    if problems:
        print(
            f"warning: {len(problems)} schema problem(s); "
            "run `profile --check` for details",
            file=sys.stderr,
        )
    print(render_profile(records, top=args.top))
    return 0


def cmd_eventlog(args: argparse.Namespace) -> int:
    from repro.io.eventlog import events_from_recorded, save_event_log

    recorded = load(args.file)
    events = events_from_recorded(recorded)
    save_event_log(events, args.output)
    print(
        f"{args.output}: {len(events)} events "
        f"({len(recorded.system.roots)} roots, "
        f"{len(recorded.system.leaves)} leaf operations)"
    )
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs import current
    from repro.stream import (
        EventLogTail,
        IncrementalChecker,
        SnapshotWriter,
        read_snapshot,
        restore_checker,
        restore_tail,
        verify_snapshot,
    )

    if args.resume_from_snapshot:
        if args.from_offset:
            raise SystemExit(
                "--resume-from-snapshot and --from-offset are mutually "
                "exclusive: the snapshot carries its own offset"
            )
        document = read_snapshot(args.resume_from_snapshot)
        verify_snapshot(
            document, args.file, snapshot_path=args.resume_from_snapshot
        )
        checker = restore_checker(document)
        tail = restore_tail(document, args.file)
        restored = checker.verdict()
        checker.telemetry.meta(
            "stream.recover",
            mode="snapshot",
            offset=tail.offset,
            line=tail.line,
            events=restored.events,
        )
        last_status: Optional[str] = restored.status
        print(
            f"resumed from {args.resume_from_snapshot}: "
            f"{restored.events} event(s) restored "
            f"({restored.commits} commits, {restored.status}); "
            f"replaying the log from offset {tail.offset}",
            file=sys.stderr,
        )
    else:
        checker = IncrementalChecker()
        tail = EventLogTail(args.file)
        last_status = None
    writer: Optional[SnapshotWriter] = None
    if args.snapshot_out:
        writer = SnapshotWriter(
            args.snapshot_out,
            every=args.snapshot_every,
            telemetry=checker.telemetry,
        )
    replayed = 0
    try:
        while True:
            batch = tail.poll()
            for tailed in batch:
                verdict = checker.ingest(tailed.event)
                replayed += 1
                if tailed.offset <= args.from_offset:
                    # catch-up below the resume offset: state is
                    # rebuilt, transitions are not re-announced
                    last_status = verdict.status
                    continue
                if verdict.status != last_status:
                    last_status = verdict.status
                    print(f"[offset {tailed.offset}] {verdict.describe()}")
                if checker.ended:
                    break
            if writer is not None and batch:
                writer.maybe(checker, tail)
            if checker.ended:
                break
            if not batch:
                if not args.follow:
                    break
                _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted; certifying the prefix seen so far",
              file=sys.stderr)
        if writer is not None:
            writer.write(checker, tail)
    if args.resume_from_snapshot:
        checker.telemetry.count("stream.recover.replayed", replayed)
    result = checker.finalize()
    current().absorb(checker.telemetry.collect())
    if result.reduction is None:
        print(f"{args.file}: no committed roots; nothing to check")
        return 0
    print()
    print(banner("final verdict (batch-certified)"))
    print(result.reduction.narrative())
    verdict = result.verdict
    print(
        f"stream: {verdict.events} event(s), {verdict.commits} "
        f"commit(s); resume offset {tail.offset}"
    )
    if writer is not None and writer.written:
        print(f"snapshots: {writer.written} written to {writer.path}")
    if args.strict and verdict.rejected:
        return 2
    return 0


def cmd_chaos_stream(args: argparse.Namespace) -> int:
    from repro.stream.chaos import SCENARIOS, run_chaos_suite

    scenarios = args.scenario if args.scenario else list(SCENARIOS)
    outcomes = run_chaos_suite(
        seed=args.seed,
        roots=args.roots,
        batch_lines=args.batch_lines,
        scenarios=scenarios,
    )
    print(banner("chaos-stream: fault scenarios vs batch check"))
    for outcome in outcomes:
        print(outcome.describe())
    print(
        f"{len(outcomes)} scenario(s): final verdict, witness, and "
        "canonical telemetry byte-identical to `check` under every "
        "fault"
    )
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.analysis.checkpoint import checkpoint_complete, read_checkpoint

    document = read_checkpoint(args.checkpoint)
    if checkpoint_complete(document):
        # every section is fully recorded (or the session closed
        # cleanly): re-dispatching would spawn a pool just to restore
        # everything and re-print — say so and succeed instead
        print(
            f"{args.checkpoint}: nothing to resume "
            "(checkpoint records a completed run)"
        )
        return 0
    stored = [str(a) for a in document.get("argv", [])]
    if not stored:
        raise SystemExit(
            f"{args.checkpoint}: no command line recorded; resume with "
            "the original command plus --resume-from"
        )
    # re-dispatch the recorded command with --resume-from appended
    # (dropping any stale --resume-from a doubly-resumed run recorded)
    forwarded: List[str] = []
    skip_next = False
    for argument in stored:
        if skip_next:
            skip_next = False
            continue
        if argument == "--resume-from":
            skip_next = True
            continue
        if argument.startswith("--resume-from="):
            continue
        forwarded.append(argument)
    print(
        "resuming: repro " + " ".join(forwarded + ["--resume-from", args.checkpoint]),
        file=sys.stderr,
    )
    return main(forwarded + ["--resume-from", args.checkpoint])


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report

    text = build_report(
        trials=args.trials, include_protocols=args.protocols
    )
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"report written to {args.output}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="composite-tx: composite transaction correctness "
        "(PODS 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="decide Comp-C for a saved execution")
    p.add_argument("file")
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit with status 2 when the execution is not Comp-C",
    )
    p.add_argument(
        "--trace", help="write the JSON reduction trace to this path"
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="on rejection, trace the counterexample cycle back to "
        "concrete conflicting accesses",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print the per-level reduction profile (wall time, "
        "closure calls, bitset rows touched)",
    )
    _add_static_precheck_option(p)
    _add_telemetry_option(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint",
        help="static analysis of system/trace/topology documents "
        "(stable CTX*** diagnostic codes)",
    )
    p.add_argument(
        "paths",
        nargs="+",
        help="JSON documents and/or directories (searched recursively "
        "for *.json)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the provenance chain behind each verdict: the "
        "concrete SafetyEdge list of every cycle witness and the "
        "recorded executions a refutation replays",
    )
    p.add_argument(
        "--witness-out",
        metavar="PATH",
        help="write a schema-versioned canonical-JSON witness document "
        "(verdict counts plus every replayable refutation); replay it "
        "with repro.lint.replay_witness_file",
    )
    _add_workers_option(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("info", help="structure + criteria classification")
    p.add_argument("file")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("render", help="render a saved execution")
    p.add_argument("file")
    p.add_argument(
        "--format",
        choices=("ascii", "dot-invocation", "dot-forest"),
        default="ascii",
    )
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("generate", help="random execution -> JSON")
    _add_topology_options(p)
    p.add_argument("--roots", type=int, default=4)
    p.add_argument("--conflicts", type=float, default=0.2)
    p.add_argument(
        "--layout", choices=("serial", "random", "perturbed"), default="random"
    )
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("simulate", help="run the discrete-event simulator")
    _add_topology_options(p)
    p.add_argument(
        "--protocol", choices=("cc", "s2pl", "sgt", "to"), default="cc"
    )
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--transactions", type=int, default=8)
    p.add_argument("--items", type=int, default=4)
    p.add_argument("--skew", type=float, default=0.8)
    p.add_argument("-o", "--output")
    _add_static_precheck_option(p)
    _add_telemetry_option(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "chaos",
        help="simulate under injected faults (crashes, drops, "
        "degradation) and re-check Comp-C per protocol",
    )
    _add_topology_options(p)
    p.add_argument(
        "--protocols",
        default="cc,s2pl,sgt,to",
        help="comma-separated protocol list (default: all four)",
    )
    p.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="fault-plan scale: 0 disables faults, 1 is the default "
        "mix, >1 amplifies it",
    )
    p.add_argument("--clients", type=int, default=3)
    p.add_argument("--transactions", type=int, default=5)
    p.add_argument(
        "--runs", type=int, default=2, help="seeded runs per protocol"
    )
    p.add_argument(
        "--retry-policy",
        choices=("linear", "exponential", "decorrelated-jitter"),
        default="exponential",
        help="in-simulation retry pacing; named policies are seeded "
        "per cell for reproducible sharded runs (default: seeded "
        "full-jitter exponential; 'linear' restores the legacy pacing)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when a composite-aware protocol (cc/s2pl) commits "
        "a non-Comp-C execution under faults",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget enforced inside the worker; "
        "a cell over budget is retried, then quarantined",
    )
    p.add_argument(
        "--task-retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per grid cell (seeded jittered backoff between "
        "them) before it is quarantined (default: 1)",
    )
    p.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole grid on the first cell that exhausts its "
        "attempts, instead of quarantining it and finishing the rest",
    )
    _add_static_precheck_option(p)
    _add_workers_option(p)
    _add_fleet_options(p)
    _add_telemetry_option(p)
    _add_checkpoint_options(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("figures", help="walk the paper's figures")
    p.add_argument("number", nargs="?", type=int, choices=(1, 2, 3, 4))
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("experiment", help="run a paper-artifact experiment")
    p.add_argument(
        "name", choices=("t1", "t2", "t3", "t4", "h1", "p2", "a1")
    )
    p.add_argument("--trials", type=int, default=30)
    _add_workers_option(p)
    _add_fleet_options(p)
    _add_telemetry_option(p)
    _add_checkpoint_options(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "compare",
        help="Def.-18 equivalence of two saved executions' fronts",
    )
    p.add_argument("file_a")
    p.add_argument("file_b")
    p.add_argument("--level-a", type=int, default=None)
    p.add_argument("--level-b", type=int, default=None)
    p.add_argument(
        "--rename",
        action="append",
        metavar="OLD=NEW",
        help="rename nodes of the first front before comparing",
    )
    _add_workers_option(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "profile",
        help="render a --telemetry-out JSONL file into per-phase time "
        "tables and a slowest-spans list",
    )
    p.add_argument("file")
    p.add_argument(
        "--top", type=int, default=10, help="slowest spans to list"
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="validate the stream against the event schema and exit "
        "(status 1 on any violation)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "eventlog",
        help="convert a saved execution (JSON) into a streaming JSONL "
        "event log for `composite-tx watch`",
    )
    p.add_argument("file", help="saved execution (see `generate`)")
    p.add_argument("output", help="event log path (JSONL)")
    p.set_defaults(func=cmd_eventlog)

    p = sub.add_parser(
        "watch",
        help="stream an event log through the incremental Comp-C "
        "checker: live verdict transitions, batch-certified final "
        "verdict",
    )
    p.add_argument("file", help="JSONL event log (may still be growing)")
    p.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing after EOF until an `end` event arrives "
        "(torn tails are waited out, not errors)",
    )
    p.add_argument(
        "--from-offset",
        type=int,
        default=0,
        metavar="BYTES",
        help="suppress re-announcing transitions at or below this byte "
        "offset (printed as `resume offset` by a previous watch); the "
        "checker still replays the whole log to rebuild its state",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="poll interval while following (default 0.2s)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when the stream is rejected",
    )
    p.add_argument(
        "--snapshot-out",
        metavar="PATH",
        help="atomically write a resumable checker snapshot here while "
        "watching (see --snapshot-every); a killed watch resumes with "
        "--resume-from-snapshot, replaying only the unseen suffix",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=1,
        metavar="EVENTS",
        help="snapshot cadence: write after every poll batch that "
        "ingested at least this many events since the last snapshot "
        "(default 1)",
    )
    p.add_argument(
        "--resume-from-snapshot",
        metavar="PATH",
        help="restore checker state from a snapshot and replay only "
        "the log suffix past its offset; refused (CTX501) when the "
        "log's prefix no longer matches the snapshot's fingerprint",
    )
    _add_telemetry_option(p)
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "chaos-stream",
        help="torture the supervised watch loop with log faults "
        "(kill, torn writes, corruption, duplicates, reordering, "
        "rotation) and hard-assert the certified verdict stays "
        "byte-identical to `check`",
    )
    p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    p.add_argument("--seed", type=int, default=3)
    p.add_argument(
        "--roots", type=int, default=4, help="workload roots (default 4)"
    )
    p.add_argument(
        "--batch-lines",
        type=int,
        default=40,
        metavar="N",
        help="lines per simulated append batch (default 40)",
    )
    _add_telemetry_option(p)
    p.set_defaults(func=cmd_chaos_stream)

    p = sub.add_parser(
        "resume",
        help="continue a killed chaos/experiment run from its "
        "--checkpoint-out file (re-dispatches the recorded command "
        "with --resume-from)",
    )
    p.add_argument("checkpoint")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "report", help="run every experiment, write a Markdown report"
    )
    p.add_argument("-o", "--output", default="REPORT.md")
    p.add_argument("--trials", type=int, default=30)
    p.add_argument(
        "--protocols",
        action="store_true",
        help="include the (slow) protocol simulation excerpt",
    )
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    raw_argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = parser.parse_args(raw_argv)

    def invoke() -> int:
        # --fleet N routes every batch under the command (chaos grids,
        # experiment ensembles) through the lease-based coordinator via
        # the ambient fleet scope — no per-experiment plumbing
        fleet = _fleet_config(args)
        if fleet is None:
            return args.func(args)
        from repro.analysis.fleet import fleet_scope

        with fleet_scope(fleet):
            return args.func(args)

    def dispatch() -> int:
        telemetry_out = getattr(args, "telemetry_out", None)
        if not telemetry_out:
            return invoke()
        from repro.obs import Telemetry, using, write_jsonl

        telemetry = Telemetry(stream="main")
        with using(telemetry):
            with telemetry.span("cli.command", command=args.command):
                code = invoke()
        write_jsonl(telemetry.collect(), telemetry_out)
        print(f"telemetry written to {telemetry_out}", file=sys.stderr)
        return code

    checkpoint_out = getattr(args, "checkpoint_out", None)
    resume_from = getattr(args, "resume_from", None)
    if not checkpoint_out and not resume_from:
        return dispatch()
    from repro.analysis.checkpoint import CheckpointSession, checkpointing

    if resume_from:
        # keep checkpointing into the same file (or --checkpoint-out's
        # override) so a resumed run can itself be killed and resumed;
        # the recorded argv stays the original command's
        session = CheckpointSession.resume(resume_from)
        if checkpoint_out:
            session.path = checkpoint_out
    else:
        session = CheckpointSession(checkpoint_out, argv=raw_argv)
    with checkpointing(session):
        return dispatch()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
