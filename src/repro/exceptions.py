"""Exception hierarchy for the composite-tx library.

All exceptions raised by the library derive from :class:`CompositeTxError`
so that callers can catch library failures with a single ``except`` clause
while still distinguishing model-construction problems from checking
problems.
"""

from __future__ import annotations


class CompositeTxError(Exception):
    """Base class for every error raised by this library."""


class ModelError(CompositeTxError):
    """A composite-system model violates a structural definition.

    Raised while *constructing* schedules or composite systems, e.g. a
    transaction assigned to two schedules (Def. 4.1), a recursive
    invocation graph (Def. 4.6), or an order relation that is not a
    strict partial order.
    """


class ScheduleAxiomError(ModelError):
    """A schedule violates one of the output-order axioms of Def. 3.

    The offending axiom is recorded in :attr:`axiom` using the paper's
    numbering (``"1a"``, ``"1b"``, ``"1c"``, ``"2a"``, ``"2b"``, ``"3"``,
    ``"4"``).  The violation is also carried structurally so callers
    (the lint layer, debuggers) never have to parse the message:
    :attr:`schedule` names the offending schedule, :attr:`operations`
    the operation pair and :attr:`transactions` the transaction pair
    involved (either tuple may be empty when the axiom does not mention
    that kind of node).
    """

    def __init__(
        self,
        axiom: str,
        message: str,
        *,
        schedule: "str | None" = None,
        operations: "tuple[str, ...]" = (),
        transactions: "tuple[str, ...]" = (),
    ) -> None:
        super().__init__(f"schedule axiom {axiom} violated: {message}")
        self.axiom = axiom
        self.schedule = schedule
        self.operations = tuple(operations)
        self.transactions = tuple(transactions)


class OrderPropagationError(ModelError):
    """Def. 4.7 violated: a caller's output order between two operations
    that are transactions of one callee is missing from that callee's
    input order.

    Carries the violation structurally: :attr:`caller` / :attr:`callee`
    are the schedule names, :attr:`pair` the offending operation pair,
    and :attr:`kind` is ``"weak"`` or ``"strong"``.
    """

    def __init__(
        self,
        message: str,
        *,
        caller: str,
        callee: str,
        pair: "tuple[str, str]",
        kind: str,
    ) -> None:
        super().__init__(message)
        self.caller = caller
        self.callee = callee
        self.pair = (pair[0], pair[1])
        self.kind = kind


class CycleError(ModelError):
    """An order relation that must be acyclic contains a cycle.

    :attr:`cycle` holds one witness cycle as a list of node names,
    ``[a, b, ..., a]``.
    """

    def __init__(self, message: str, cycle: list) -> None:
        super().__init__(f"{message}: cycle {' -> '.join(map(str, cycle))}")
        self.cycle = list(cycle)


class ReductionError(CompositeTxError):
    """The reduction engine was used inconsistently.

    This signals a *usage* problem (e.g. asking for a level-3 front of an
    order-2 system), never an incorrect execution; incorrect executions
    are reported through :class:`repro.core.correctness.CorrectnessReport`.
    """


class StreamError(CompositeTxError):
    """An event stream was malformed or arrived out of protocol.

    Raised by the streaming checker for protocol violations — a commit
    of a root that never declared transactions, events before the
    header, a live/batch verdict disagreement (which would falsify the
    streaming equivalence invariant) — never for *incorrect* composite
    executions, which are reported through the live verdict exactly
    like the batch path reports them through
    :class:`repro.core.correctness.CorrectnessReport`.
    """


class EventLogTruncatedError(StreamError):
    """The tailed event log shrank below the consumed byte offset.

    A log file can only legally *grow*; a size regression means the file
    was truncated or rotated underneath the tailer, and every byte of
    consumed state past the new end is unverifiable.  Carries the
    ``CTX502`` :class:`repro.lint.diagnostics.Diagnostic` plus the
    structural facts (:attr:`path`, :attr:`offset` consumed,
    :attr:`size` observed) so the stream supervisor can fall back to a
    snapshot-verified re-read instead of silently mis-checking.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str,
        offset: int,
        size: int,
        diagnostic: "object | None" = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.size = size
        self.diagnostic = diagnostic


class SnapshotError(StreamError):
    """A checker snapshot could not be written, read, or trusted.

    Raised for unreadable/corrupt snapshot documents and schema
    versions this build cannot read (``CTX503``), and for snapshots
    whose log-prefix fingerprint disagrees with the log being resumed
    (``CTX501`` — the log diverged, rotated, or was rewritten, so the
    snapshot summarizes bytes that no longer exist).  The rendered
    lint-style diagnostic rides along in :attr:`diagnostic` so tooling
    can match the stable code instead of the message text.
    """

    def __init__(
        self, message: str, *, diagnostic: "object | None" = None
    ) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class SimulationError(CompositeTxError):
    """The discrete-event simulator reached an inconsistent state."""


class FaultError(SimulationError):
    """A fault plan is malformed (invalid probabilities, negative times,
    crash windows naming components the topology does not have).

    Raised while *constructing* or *attaching* fault plans; faults that
    fire during a run are normal simulated behaviour and never raise.
    """


class WorkloadError(CompositeTxError):
    """A workload generator received unsatisfiable parameters."""


class TelemetryError(CompositeTxError):
    """The telemetry layer was misused or fed an unreadable stream.

    Raised for span-stack overflows (a programming error in
    instrumented code) and for telemetry files whose schema version or
    line format this build cannot read.  Never raised by normal
    recording: a full event buffer *drops* (and counts) events instead
    of failing the instrumented run.
    """


class BatchTaskError(CompositeTxError):
    """A batch worker raised; carries which task died.

    ``ProcessPoolExecutor.map`` re-raises worker exceptions with no
    hint of which task produced them — for a (protocol, seed) grid that
    loses exactly the information needed to reproduce the failure.
    :attr:`task` is the failing task object, :attr:`index` its position
    in submission order, and :attr:`worker_traceback` the formatted
    traceback captured inside the worker process (the original
    exception object itself may not survive pickling).

    The work that *did* finish is not thrown away: :attr:`completed`
    maps submission index -> result for every task that succeeded
    before the batch aborted, and :attr:`missing` lists the submission
    indices with no result (the failing task plus any other failed or
    never-delivered tasks), so callers can salvage the partial grid.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        task: object,
        worker_traceback: str = "",
        completed: "dict[int, object] | None" = None,
        missing: "tuple[int, ...] | list[int] | None" = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.task = task
        self.worker_traceback = worker_traceback
        self.completed: "dict[int, object]" = dict(completed or {})
        self.missing: "tuple[int, ...]" = tuple(missing or ())


class TaskTimeoutError(CompositeTxError):
    """A supervised batch task exceeded its per-task wall-clock budget.

    Raised *inside* the worker by the supervision alarm (see
    :mod:`repro.analysis.supervise`); the supervisor converts it into a
    retry or a quarantine entry with reason ``"timeout"``.
    """


class CheckpointError(CompositeTxError):
    """A batch checkpoint could not be written, read, or resumed.

    Raised for unreadable/torn checkpoint documents, for schema
    versions this build does not understand, and for resume attempts
    whose grid fingerprint does not match the checkpoint (resuming a
    checkpoint into a *different* grid would silently mis-merge
    results).
    """


class ParseError(CompositeTxError):
    """The text format parser rejected its input.

    :attr:`line` is the 1-based line number of the offending line when
    known, otherwise ``None``.  Parse failures detected by the hardened
    document loaders additionally carry :attr:`offset` (the byte offset
    of the defect) and :attr:`diagnostic` (the lint-style
    ``CTX4xx`` :class:`repro.lint.diagnostics.Diagnostic`, so tooling
    can match the stable code instead of the message text).
    """

    def __init__(
        self,
        message: str,
        line: "int | None" = None,
        *,
        offset: "int | None" = None,
        diagnostic: "object | None" = None,
    ) -> None:
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.offset = offset
        self.diagnostic = diagnostic
