"""Fork schedules and Fork Conflict Consistency (Def. 23–24, Thm. 3).

A *fork* is one caller schedule ``S_F`` whose operations are served by
``n`` disjoint callee schedules ``S_1 … S_n`` — the shape of a
distributed transaction or a federated database accessed through a
coordinator.  Operations handed to different branches are assumed to
commute (Def. 23.3 — the branches manage disjoint data).

FCC — the caller conflict consistent and the branch orders jointly
acyclic — characterizes Comp-C on forks (Theorem 3, validated by the T3
benchmark).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.orders import Relation
from repro.core.system import CompositeSystem


def fork_parts(
    system: CompositeSystem,
) -> Optional[Tuple[str, List[str]]]:
    """``(S_F, [S_1 … S_n])`` when the system is a fork, else ``None``.

    Structure: exactly two levels; a single top schedule invoking every
    bottom schedule; every bottom transaction invoked by the top
    (``O_{S_F} = ∪ T_{S_i}``); bottom schedules host only leaves.
    """
    if system.order != 2:
        return None
    tops = system.schedules_at_level(2)
    if len(tops) != 1:
        return None
    top = tops[0]
    branches = list(system.schedules_at_level(1))
    top_ops = set(system.schedule(top).operations)
    branch_txns = set()
    for branch in branches:
        schedule = system.schedule(branch)
        branch_txns.update(schedule.transaction_names)
        if any(system.is_transaction(op) for op in schedule.operations):
            return None
    if top_ops != branch_txns:
        return None
    return top, branches


def is_fork(system: CompositeSystem) -> bool:
    """Structural test for Def. 23."""
    return fork_parts(system) is not None


def branch_order_union(system: CompositeSystem, branches: List[str]) -> Relation:
    """``⋃ (serialization_{S_i} ∪ →_{S_i})`` over all branches — the
    joint relation Def. 24 requires to be acyclic.  Branch transaction
    sets are disjoint, so this is acyclic iff every branch is CC; the
    union form is kept because it is the paper's literal definition."""
    union = Relation()
    for branch in branches:
        schedule = system.schedule(branch)
        union = union.union(schedule.serialization_order(), schedule.weak_input)
    return union


def is_fcc(system: CompositeSystem) -> bool:
    """Def. 24: the caller is CC and the branch order union is acyclic."""
    parts = fork_parts(system)
    if parts is None:
        raise ValueError("FCC is only defined for fork schedules (Def. 23)")
    top, branches = parts
    if not system.schedule(top).is_conflict_consistent():
        return False
    return branch_order_union(system, branches).is_acyclic()
