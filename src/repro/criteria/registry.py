"""Uniform interface over every correctness criterion.

The analysis package and the benchmark harness need to run "every
criterion that applies" over a recorded execution and tabulate verdicts.
:class:`RecordedExecution` bundles a composite system with the temporal
execution sequences the order-sensitive criteria (OPSR, seriality) need;
:func:`classify` returns a name → verdict mapping, skipping criteria
whose structural preconditions (stack/fork/join) fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.core.correctness import is_composite_correct
from repro.core.system import CompositeSystem
from repro.criteria.fork import is_fcc, is_fork
from repro.criteria.join import is_jcc, is_join
from repro.criteria.llsr import is_llsr
from repro.criteria.opsr import is_opsr
from repro.criteria.stack import is_scc, is_stack


@dataclass
class RecordedExecution:
    """A composite execution plus its temporal layout.

    ``executions`` maps schedule names to the temporal operation
    sequences actually observed; criteria that only need committed
    orders ignore it.
    """

    system: CompositeSystem
    executions: Dict[str, Sequence[str]] = field(default_factory=dict)

    def is_serial_layout(self) -> bool:
        """True when no schedule interleaved operations of different
        transactions (the strongest, trivially correct layout)."""
        for name, execution in self.executions.items():
            schedule = self.system.schedule(name)
            seen_done = set()
            current: Optional[str] = None
            for op in execution:
                txn = schedule.transaction_of(op)
                if txn != current:
                    if txn in seen_done:
                        return False
                    if current is not None:
                        seen_done.add(current)
                    current = txn
        return True


#: Criterion names in permissiveness order (narrowest first) as used by
#: the H1 hierarchy benchmark.
CRITERIA_ORDER = ("serial", "llsr", "opsr", "scc", "fcc", "jcc", "comp_c")


def classify(recorded: RecordedExecution) -> Mapping[str, Optional[bool]]:
    """Verdict of every criterion on a recorded execution.

    Returns a mapping from criterion name to ``True``/``False``;
    criteria whose structural precondition does not hold map to
    ``None`` (not applicable).
    """
    system = recorded.system
    stacky = is_stack(system)
    forky = is_fork(system)
    joiny = is_join(system)
    verdicts: Dict[str, Optional[bool]] = {
        "serial": recorded.is_serial_layout() if recorded.executions else None,
        "llsr": is_llsr(system) if stacky else None,
        "opsr": is_opsr(system, recorded.executions)
        if recorded.executions
        else None,
        "scc": is_scc(system) if stacky else None,
        "fcc": is_fcc(system) if forky else None,
        "jcc": is_jcc(system) if joiny else None,
        "comp_c": is_composite_correct(system),
    }
    return verdicts


def applicable_criteria(system: CompositeSystem) -> Sequence[str]:
    """The criterion names defined for this configuration.

    Returned in :data:`CRITERIA_ORDER`.  ``serial``, ``opsr`` and
    ``comp_c`` apply to every configuration (the first two merely need
    recorded executions to yield a verdict — see :func:`classify`);
    ``llsr``/``scc``, ``fcc`` and ``jcc`` are gated on the stack, fork
    and join structural preconditions.
    """
    names = {"serial", "opsr", "comp_c"}
    if is_stack(system):
        names.update(("llsr", "scc"))
    if is_fork(system):
        names.add("fcc")
    if is_join(system):
        names.add("jcc")
    return tuple(name for name in CRITERIA_ORDER if name in names)
