"""Bridge between flat read/write histories and composite systems.

The composite theory must degenerate gracefully: a single-schedule
system whose transactions are flat read/write programs is exactly a
textbook history, and on those Comp-C coincides with classical conflict
serializability.  :func:`flat_to_composite` performs the embedding and
``tests/criteria/test_bridge.py`` property-tests the agreement — a
useful sanity anchor for both sides.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem
from repro.criteria.classical import FlatHistory


def flat_to_composite(
    history: FlatHistory, *, schedule: str = "DB"
) -> CompositeSystem:
    """Embed a flat history as a one-schedule composite system.

    Each operation becomes a uniquely named leaf; conflicts are the
    read/write conflicts of the history; the execution sequence is the
    history's total order; transactions carry their program order as a
    weak intra-transaction order.
    """
    builder = SystemBuilder()
    op_names: List[str] = []
    per_txn: Dict[str, List[str]] = {}
    for index, op in enumerate(history.operations):
        name = f"{op.txn}.{op.kind}{index}[{op.item}]"
        op_names.append(name)
        per_txn.setdefault(op.txn, []).append(name)
    for txn, ops in per_txn.items():
        builder.transaction(
            txn, schedule, ops, weak_order=list(zip(ops, ops[1:]))
        )
    for i, j in history.conflict_pairs():
        builder.conflict(schedule, op_names[i], op_names[j])
    builder.executed(schedule, op_names)
    return builder.build()


def comp_c_of_flat(history: FlatHistory) -> bool:
    """Comp-C of the embedded history (should equal classical CSR)."""
    from repro.core.correctness import is_composite_correct

    return is_composite_correct(flat_to_composite(history))
