"""Correctness criteria: the paper's special cases and the prior art.

* classical conflict serializability (CSR) and flat OPSR — the textbook
  baselines [BHG87, BBG89];
* SCC, FCC, JCC — the stack/fork/join criteria of the companion papers
  (Def. 21–27), proved equivalent to Comp-C on their configurations
  (Theorems 2–4);
* LLSR — level-by-level serializability [We91], the conservative
  multilevel criterion Comp-C strictly extends;
* a registry that classifies one recorded execution under everything
  applicable.
"""

from repro.criteria.bridge import comp_c_of_flat, flat_to_composite
from repro.criteria.classical import (
    FlatHistory,
    FlatOp,
    csr_serial_order,
    is_conflict_serializable,
    is_order_preserving_serializable,
    precedence_graph,
    read,
    serialization_graph,
    write,
)
from repro.criteria.fork import branch_order_union, fork_parts, is_fcc, is_fork
from repro.criteria.join import ghost_graph, is_jcc, is_join, join_parts
from repro.criteria.llsr import (
    LLSR_OPTIONS,
    conflict_faithfulness_gaps,
    is_conflict_faithful,
    is_llsr,
)
from repro.criteria.opsr import (
    flat_opsr,
    is_opsr,
    is_schedule_opsr,
    opsr_violations,
    schedule_precedence,
)
from repro.criteria.registry import (
    CRITERIA_ORDER,
    RecordedExecution,
    applicable_criteria,
    classify,
)
from repro.criteria.stack import is_scc, is_stack, scc_violations, stack_chain

__all__ = [
    "comp_c_of_flat",
    "flat_to_composite",
    "FlatHistory",
    "FlatOp",
    "csr_serial_order",
    "is_conflict_serializable",
    "is_order_preserving_serializable",
    "precedence_graph",
    "read",
    "serialization_graph",
    "write",
    "branch_order_union",
    "fork_parts",
    "is_fcc",
    "is_fork",
    "ghost_graph",
    "is_jcc",
    "is_join",
    "join_parts",
    "LLSR_OPTIONS",
    "conflict_faithfulness_gaps",
    "is_conflict_faithful",
    "is_llsr",
    "flat_opsr",
    "is_opsr",
    "is_schedule_opsr",
    "opsr_violations",
    "schedule_precedence",
    "CRITERIA_ORDER",
    "RecordedExecution",
    "applicable_criteria",
    "classify",
    "is_scc",
    "is_stack",
    "scc_violations",
    "stack_chain",
]
