"""Level-by-level serializability (LLSR) for stack configurations [We91].

LLSR is the multilevel-transaction criterion the paper's introduction
singles out: it allows independent schedulers per level only under the
*conflict-faithfulness* assumption — "if two operations conflict at one
level, they must also conflict at all lower levels" — i.e. conflicts
never disappear on the way up, and consequently lower-level
serialization orders constrain every level above.

Operationalization (recorded in DESIGN.md): LLSR is the Comp-C
reduction with the forgetting rule disabled
(``ObservedOrderOptions(forget_nonconflicting=False)``).  Under
conflict faithfulness the two coincide by construction; without it this
reduction is exactly "pull every order up regardless of declared
commutativity and demand level-by-level isolation", which is the
conservative guarantee LLSR offers.  The containment LLSR ⊆ SCC = Comp-C
claimed in §4 is therefore structural here — the H1 benchmark measures
how *strict* the containment is on random workloads.

The module also provides :func:`is_conflict_faithful`, the assumption
check itself, so experiments can report how often real workloads violate
it (the paper's modularity complaint).
"""

from __future__ import annotations


from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import reduce_to_roots
from repro.core.system import CompositeSystem
from repro.criteria.stack import is_stack

#: The option set that turns the Comp-C reduction into the LLSR test.
LLSR_OPTIONS = ObservedOrderOptions(forget_nonconflicting=False)


def is_llsr(system: CompositeSystem, *, require_stack: bool = True) -> bool:
    """Level-by-level serializability of a recorded stack execution."""
    if require_stack and not is_stack(system):
        raise ValueError("LLSR is defined for stack configurations")
    return reduce_to_roots(system, LLSR_OPTIONS).succeeded


def is_conflict_faithful(system: CompositeSystem) -> bool:
    """The LLSR modeling assumption: whenever two operations of a
    schedule conflict, the work they delegated downward also conflicts
    (some pair of their descendants conflicts at a common schedule).

    This is the restriction the paper criticizes ("the design of each
    level has to be done taking into consideration all other levels"):
    it couples the conflict tables of every level.
    """
    for schedule in system.schedules.values():
        for pair in schedule.conflicts:
            a, b = sorted(pair)
            if system.is_leaf(a) or system.is_leaf(b):
                continue
            if not _descendants_conflict(system, a, b):
                return False
    return True


def _descendants_conflict(system: CompositeSystem, a: str, b: str) -> bool:
    # Proper descendants only: the conflicting pair itself must be
    # re-witnessed at a lower level, not merely repeated.
    tree_a = system.activity(a)
    tree_b = system.activity(b)
    for x in tree_a:
        for y in tree_b:
            if x == y:
                continue
            shared = system.common_schedule(x, y)
            if shared is not None and system.schedule(shared).conflicting(x, y):
                return True
    return False


def conflict_faithfulness_gaps(system: CompositeSystem):
    """The conflicting pairs whose delegated work does *not* conflict —
    the places where LLSR's assumption breaks (diagnostic helper)."""
    gaps = []
    for name, schedule in system.schedules.items():
        for pair in schedule.conflicts:
            a, b = sorted(pair)
            if system.is_leaf(a) or system.is_leaf(b):
                continue
            if not _descendants_conflict(system, a, b):
                gaps.append((name, a, b))
    return gaps
