"""Order-preserving (conflict) serializability — OPSR [BBG89].

OPSR strengthens serializability per schedule: the equivalent serial
order must also preserve the *temporal* order of non-overlapping
transactions.  Like LLSR it permits independent schedulers in a stack,
at the price of preserving orders that semantic knowledge would allow to
flip; the paper shows it is a proper subset of SCC.

Because temporal extents are not part of the Def.-3 schedule object
(which records committed *orders*, not wall-clock layout), the OPSR
test takes the recorded per-schedule execution sequences alongside the
system — exactly what the workload generator and the simulator emit.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.core.orders import Relation
from repro.core.system import CompositeSystem
from repro.criteria.classical import (
    FlatHistory,
    is_order_preserving_serializable,
)


def schedule_precedence(
    system: CompositeSystem, schedule_name: str, execution: Sequence[str]
) -> Relation:
    """``T → T'`` when ``T``'s last operation precedes ``T'``'s first in
    the recorded execution of one schedule (temporal non-overlap)."""
    schedule = system.schedule(schedule_name)
    position = {op: i for i, op in enumerate(execution)}
    first: dict = {}
    last: dict = {}
    for op in execution:
        txn = schedule.transaction_of(op)
        first.setdefault(txn, position[op])
        last[txn] = position[op]
    graph = Relation(elements=schedule.transaction_names)
    names = list(first)
    for a in names:
        for b in names:
            if a != b and last[a] < first[b]:
                graph.add(a, b)
    return graph


def is_schedule_opsr(
    system: CompositeSystem, schedule_name: str, execution: Sequence[str]
) -> bool:
    """One schedule is OPSR when serialization ∪ temporal precedence ∪
    input orders is acyclic."""
    schedule = system.schedule(schedule_name)
    combined = schedule.serialization_order().union(
        schedule_precedence(system, schedule_name, execution),
        schedule.weak_input,
    )
    return combined.is_acyclic()


def is_opsr(
    system: CompositeSystem, executions: Mapping[str, Sequence[str]]
) -> bool:
    """OPSR of a recorded composite execution: every schedule is OPSR.

    ``executions`` maps each schedule name to the temporal sequence of
    its operations.  Schedules without a recorded sequence (pure-order
    inputs) fall back to plain conflict consistency, which OPSR
    degenerates to when nothing overlaps.
    """
    for name, schedule in system.schedules.items():
        execution = executions.get(name)
        if execution is None:
            if not schedule.is_conflict_consistent():
                return False
        elif not is_schedule_opsr(system, name, execution):
            return False
    return True


def flat_opsr(history: FlatHistory) -> bool:
    """OPSR on a classical flat history (re-export for discoverability)."""
    return is_order_preserving_serializable(history)


def opsr_violations(
    system: CompositeSystem, executions: Mapping[str, Sequence[str]]
) -> List[str]:
    """Schedules whose recorded execution breaks order preservation."""
    bad = []
    for name in system.schedules:
        execution = executions.get(name)
        if execution is not None and not is_schedule_opsr(
            system, name, execution
        ):
            bad.append(name)
    return bad
