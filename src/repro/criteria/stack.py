"""Stack schedules and Stack Conflict Consistency (Def. 21–22, Thm. 2).

A *stack* is the multilevel-transaction configuration: ``n`` schedules
in a single chain, the transactions of each level being exactly the
operations of the level above.  SCC — every schedule in the stack
individually conflict consistent — characterizes Comp-C on stacks
(Theorem 2), which the T2 benchmark validates empirically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.system import CompositeSystem


def is_stack(system: CompositeSystem) -> bool:
    """Structural test for Def. 21.

    The invocation graph must be a single chain and, level by level,
    the callee's transactions must be exactly the caller's operations
    (``T_{S_{i-1}} = O_{S_i}``).
    """
    return stack_chain(system) is not None


def stack_chain(system: CompositeSystem) -> Optional[List[str]]:
    """The stack's schedules ordered top (level ``n``) to bottom
    (level 1), or ``None`` when the system is not a stack."""
    levels = system.levels
    by_level = {}
    for name, level in levels.items():
        if level in by_level:
            return None  # two schedules on one level: not a chain
        by_level[level] = name
    chain = [by_level[level] for level in sorted(by_level, reverse=True)]
    for caller, callee in zip(chain, chain[1:]):
        caller_ops = set(system.schedule(caller).operations)
        callee_txns = set(system.schedule(callee).transaction_names)
        if caller_ops != callee_txns:
            return None
    # The bottom schedule must be a leaf schedule (only leaf operations).
    bottom_ops = system.schedule(chain[-1]).operations
    if any(system.is_transaction(op) for op in bottom_ops):
        return None
    return chain


def is_scc(system: CompositeSystem) -> bool:
    """Def. 22: every schedule of the stack is conflict consistent.

    Raises ``ValueError`` when the system is not a stack — SCC is only
    defined for stack configurations.
    """
    if not is_stack(system):
        raise ValueError("SCC is only defined for stack schedules (Def. 21)")
    return all(
        schedule.is_conflict_consistent()
        for schedule in system.schedules.values()
    )


def scc_violations(system: CompositeSystem) -> List[str]:
    """Names of the schedules that break conflict consistency."""
    if not is_stack(system):
        raise ValueError("SCC is only defined for stack schedules (Def. 21)")
    return [
        name
        for name, schedule in system.schedules.items()
        if not schedule.is_conflict_consistent()
    ]
