"""Classical flat-history conflict serializability (the CSR baseline).

The paper positions Comp-C against the textbook theory [BHG87]: a flat
history over read/write operations is conflict serializable iff its
serialization graph is acyclic.  This module implements that baseline
from scratch — flat operations, histories, the conflict relation (same
item, at least one write), the serialization graph and the CSR test —
both for its own sake (benchmarks, teaching examples) and as the
degenerate single-schedule case the composite theory must agree with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.orders import Relation
from repro.exceptions import ModelError


@dataclass(frozen=True)
class FlatOp:
    """One read or write of a flat history."""

    txn: str
    kind: str  # "r" or "w"
    item: str

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ModelError(f"operation kind must be 'r' or 'w', not {self.kind!r}")

    def conflicts_with(self, other: "FlatOp") -> bool:
        """Same item, different transactions, at least one write."""
        return (
            self.item == other.item
            and self.txn != other.txn
            and ("w" in (self.kind, other.kind))
        )

    def __str__(self) -> str:
        return f"{self.kind}_{self.txn}[{self.item}]"


def read(txn: str, item: str) -> FlatOp:
    """Convenience constructor: ``read("T1", "x")``."""
    return FlatOp(txn, "r", item)


def write(txn: str, item: str) -> FlatOp:
    """Convenience constructor: ``write("T1", "x")``."""
    return FlatOp(txn, "w", item)


class FlatHistory:
    """A totally ordered flat history of read/write operations."""

    def __init__(self, operations: Sequence[FlatOp]) -> None:
        self.operations: Tuple[FlatOp, ...] = tuple(operations)

    @classmethod
    def parse(cls, text: str) -> "FlatHistory":
        """Parse the compact textbook notation, e.g.
        ``"r1[x] w2[x] w1[y] c"`` — commits (``c``/``a`` markers) are
        ignored; transaction ids become ``T<n>``."""
        ops: List[FlatOp] = []
        for token in text.split():
            if token in ("c", "a") or token.startswith(("c", "a")) and token[1:].isdigit():
                continue
            kind = token[0]
            rest = token[1:]
            if "[" not in rest or not rest.endswith("]"):
                raise ModelError(f"cannot parse operation token {token!r}")
            txn_id, item = rest[:-1].split("[", 1)
            ops.append(FlatOp(f"T{txn_id}", kind, item))
        return cls(ops)

    @property
    def transactions(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for op in self.operations:
            seen.setdefault(op.txn, None)
        return tuple(seen)

    @property
    def items(self) -> Set[str]:
        return {op.item for op in self.operations}

    def operations_of(self, txn: str) -> List[FlatOp]:
        return [op for op in self.operations if op.txn == txn]

    def conflict_pairs(self) -> Iterable[Tuple[int, int]]:
        """Index pairs ``(i, j)``, ``i < j``, of conflicting operations."""
        for i, a in enumerate(self.operations):
            for j in range(i + 1, len(self.operations)):
                if a.conflicts_with(self.operations[j]):
                    yield (i, j)

    def first_position(self, txn: str) -> int:
        for i, op in enumerate(self.operations):
            if op.txn == txn:
                return i
        raise ModelError(f"transaction {txn!r} not in history")

    def last_position(self, txn: str) -> int:
        for i in range(len(self.operations) - 1, -1, -1):
            if self.operations[i].txn == txn:
                return i
        raise ModelError(f"transaction {txn!r} not in history")

    def is_serial(self) -> bool:
        """True when transactions never interleave."""
        current: Optional[str] = None
        finished: Set[str] = set()
        for op in self.operations:
            if op.txn != current:
                if op.txn in finished:
                    return False
                if current is not None:
                    finished.add(current)
                current = op.txn
        return True

    def __len__(self) -> int:
        return len(self.operations)

    def __str__(self) -> str:
        return " ".join(str(op) for op in self.operations)


def serialization_graph(history: FlatHistory) -> Relation:
    """``T → T'`` when an operation of ``T`` precedes a conflicting
    operation of ``T'`` (the classical SG)."""
    graph = Relation(elements=history.transactions)
    for i, j in history.conflict_pairs():
        graph.add(history.operations[i].txn, history.operations[j].txn)
    return graph


def is_conflict_serializable(history: FlatHistory) -> bool:
    """The CSR test: acyclicity of the serialization graph.

    >>> is_conflict_serializable(FlatHistory.parse("r1[x] w1[x] r2[x]"))
    True
    >>> is_conflict_serializable(FlatHistory.parse("r1[x] r2[x] w1[x] w2[x]"))
    False
    """
    return serialization_graph(history).is_acyclic()


def csr_serial_order(history: FlatHistory) -> Optional[List[str]]:
    """An equivalent serial transaction order, or ``None`` when not CSR."""
    graph = serialization_graph(history)
    if not graph.is_acyclic():
        return None
    return graph.topological_sort()


def precedence_graph(history: FlatHistory) -> Relation:
    """``T → T'`` when ``T`` finished before ``T'`` started (the temporal
    non-overlap order that OPSR must preserve)."""
    graph = Relation(elements=history.transactions)
    txns = history.transactions
    for a in txns:
        for b in txns:
            if a != b and history.last_position(a) < history.first_position(b):
                graph.add(a, b)
    return graph


def is_order_preserving_serializable(history: FlatHistory) -> bool:
    """OPSR [BBG89] on flat histories: a serial order must exist that
    respects both the conflicts and the temporal precedence of
    non-overlapping transactions."""
    combined = serialization_graph(history).union(precedence_graph(history))
    return combined.is_acyclic()
