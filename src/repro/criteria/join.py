"""Join schedules, the ghost graph and JCC (Def. 25–27, Thm. 4).

A *join* is the mirror image of a fork: ``n`` caller schedules
``S_1 … S_n`` share one callee schedule ``S_J`` — the shape of several
independent applications hitting one database.  The difficulty is that
transactions of different callers share no schedule, yet interfere
through the callee; the **ghost graph** (Def. 26) materializes exactly
those hidden dependencies (it is the two-level special case of the
observed order, as the Theorem 4 proof notes: ``<_o = 𝒢 ∪ ⋃ ⇝_{S_i}``).

JCC — the callee conflict consistent and the ghost graph joined with
every caller's serialization and input orders acyclic — characterizes
Comp-C on joins (Theorem 4, validated by the T4 benchmark).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.orders import Relation
from repro.core.system import CompositeSystem


def join_parts(
    system: CompositeSystem,
) -> Optional[Tuple[List[str], str]]:
    """``([S_1 … S_n], S_J)`` when the system is a join, else ``None``.

    Structure: exactly two levels; a single bottom schedule; every top
    operation is a transaction of the bottom schedule; tops host the
    roots.
    """
    if system.order != 2:
        return None
    bottoms = system.schedules_at_level(1)
    if len(bottoms) != 1:
        return None
    bottom = bottoms[0]
    tops = list(system.schedules_at_level(2))
    bottom_txns = set(system.schedule(bottom).transaction_names)
    top_ops = set()
    for top in tops:
        top_ops.update(system.schedule(top).operations)
    if top_ops != bottom_txns:
        return None
    return tops, bottom


def is_join(system: CompositeSystem) -> bool:
    """Structural test for Def. 25."""
    return join_parts(system) is not None


def ghost_graph(system: CompositeSystem, bottom: str) -> Relation:
    """Def. 26: ``T 𝒢 T'`` when children ``t`` of ``T`` and ``t'`` of
    ``T'`` (transactions of *different* caller schedules) are ordered by
    the callee's serialization order."""
    schedule = system.schedule(bottom)
    ghost = Relation()
    for t, t2 in schedule.serialization_order().pairs():
        parent, parent2 = system.parent(t), system.parent(t2)
        if parent == parent2:
            continue
        owner = system.schedule_of_transaction(parent)
        owner2 = system.schedule_of_transaction(parent2)
        if owner != owner2:
            ghost.add(parent, parent2)
    return ghost


def is_jcc(system: CompositeSystem) -> bool:
    """Def. 27: callee CC, and ghost graph ∪ caller orders acyclic."""
    parts = join_parts(system)
    if parts is None:
        raise ValueError("JCC is only defined for join schedules (Def. 25)")
    tops, bottom = parts
    if not system.schedule(bottom).is_conflict_consistent():
        return False
    combined = ghost_graph(system, bottom)
    for top in tops:
        schedule = system.schedule(top)
        combined = combined.union(
            schedule.serialization_order(), schedule.weak_input
        )
    return combined.is_acyclic()
