"""Reference reconstructions of the paper's worked figures.

The paper illustrates its machinery with four figures.  Their images are
prose-described rather than tabulated, so this module reconstructs each
as a concrete composite execution exhibiting exactly the phenomenon the
text walks through:

* :func:`figure1_system` — the example *configuration*: five schedules
  at levels 1–3, roots of different heights, and transactions that share
  no schedule (the paper's ``T4``/``T5`` observation).
* :func:`figure2_system` — conflict and observed order: a conflict
  between leaves of a shared bottom schedule is pulled up two levels and
  incrementally relates root transactions that share no schedule.
* :func:`figure3_system` — the *incorrect* execution: two composite
  transactions interfere through two different mid-level schedules in
  opposite directions; the reduction builds the level-2 front but cannot
  isolate ``T1`` at the final step.
* :func:`figure4_system` — the *correct* execution: the same
  interference pattern, but the two roots belong to one top schedule
  that declares their subtransactions non-conflicting, so the pulled-up
  orders are **forgotten** (§3.7) and the reduction completes.

Each function returns a freshly built
:class:`repro.core.system.CompositeSystem`.
"""

from __future__ import annotations

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem


def figure1_system() -> CompositeSystem:
    """The Figure-1 example configuration (a correct execution).

    Levels: ``SD``/``SE`` = 1, ``SB``/``SC`` = 2, ``SA`` = 3.  Roots:
    ``T1, T2`` (on SA), ``T3`` (on SC), ``T4`` (on SB), ``T5`` (on SD) —
    composite transactions of different heights; ``T3`` and ``T5`` share
    no schedule yet become related through the observed order.
    """
    b = SystemBuilder()
    # Level 3 schedule SA: roots T1, T2.
    b.transaction("T1", "SA", ["x1", "b1"])
    b.transaction("T2", "SA", ["b2"])
    b.conflict("SA", "b1", "b2")
    b.executed("SA", ["x1", "b1", "b2"])
    # Level 2 schedule SB: subtransactions of T1/T2 plus the root T4.
    b.transaction("b1", "SB", ["d1", "e1"])
    b.transaction("b2", "SB", ["e2"])
    b.transaction("T4", "SB", ["d4"])
    b.conflict("SB", "d1", "d4")
    b.conflict("SB", "e1", "e2")
    b.executed("SB", ["d1", "e1", "e2", "d4"])
    # Level 2 schedule SC: the root T3.
    b.transaction("T3", "SC", ["e3"])
    b.executed("SC", ["e3"])
    # Level 1 schedule SD: invoked by SB, also hosts the root T5.
    b.transaction("d1", "SD", ["p1", "p2"])
    b.transaction("d4", "SD", ["p3"])
    b.transaction("T5", "SD", ["p4"])
    b.conflict("SD", "p2", "p3")
    b.conflict("SD", "p3", "p4")
    b.executed("SD", ["p1", "p2", "p3", "p4"])
    # Level 1 schedule SE: shared by SB and SC.
    b.transaction("e1", "SE", ["q1"])
    b.transaction("e2", "SE", ["q2"])
    b.transaction("e3", "SE", ["q3"])
    b.conflict("SE", "q1", "q2")
    b.conflict("SE", "q2", "q3")
    b.executed("SE", ["q1", "q2", "q3"])
    return b.build()


def figure2_system() -> CompositeSystem:
    """The Figure-2 illustration: leaves ``o13`` and ``o25`` conflict on
    the shared bottom schedule ``S4``; the observed order and the
    generalized conflict climb the two execution trees and relate the
    roots ``T1`` and ``T2`` (and transitively ``T1`` and ``T3``)."""
    b = SystemBuilder()
    # Top schedule S1 hosts the three roots.
    b.transaction("T1", "S1", ["t11"])
    b.transaction("T2", "S1", ["t21"])
    b.transaction("T3", "S1", ["t31"])
    b.conflict("S1", "t11", "t21")
    b.conflict("S1", "t21", "t31")
    b.executed("S1", ["t11", "t21", "t31"])
    # Mid schedules S2 and S3.
    b.transaction("t11", "S2", ["v1"])
    b.transaction("t21", "S3", ["v2"])
    b.transaction("t31", "S3", ["v3"])
    b.executed("S2", ["v1"])
    b.conflict("S3", "v2", "v3")
    b.executed("S3", ["v2", "v3"])
    # Shared bottom schedule S4.
    b.transaction("v1", "S4", ["o13"])
    b.transaction("v2", "S4", ["o25"])
    b.transaction("v3", "S4", ["o35"])
    b.conflict("S4", "o13", "o25")
    b.executed("S4", ["o13", "o25", "o35"])
    return b.build()


def _cross_interference(top_split: bool) -> SystemBuilder:
    """The shared skeleton of Figures 3 and 4: roots ``T1 = {p, q}`` and
    ``T2 = {r, s}``; ``p, r`` meet on mid-schedule ``SP`` (serialized
    ``p`` before ``r``) and ``q, s`` meet on mid-schedule ``SQ``
    (serialized ``s`` before ``q``) — opposite directions.

    With ``top_split`` the roots live on different top schedules, so no
    schedule can vouch for commutativity and the crossed observed orders
    survive to the root step (Figure 3).  Without it both roots live on
    one top schedule ``SA`` that declares no conflicts among
    ``p, q, r, s``, so the pulled-up orders are forgotten (Figure 4).
    """
    b = SystemBuilder()
    if top_split:
        b.transaction("T1", "SA", ["p", "q"])
        b.transaction("T2", "SB", ["r", "s"])
        b.executed("SA", ["p", "q"])
        b.executed("SB", ["r", "s"])
    else:
        b.transaction("T1", "SA", ["p", "q"])
        b.transaction("T2", "SA", ["r", "s"])
        b.executed("SA", ["p", "r", "s", "q"])
    # Mid schedule SP executes p's and r's work via bottom schedule SC.
    b.transaction("p", "SP", ["c1"])
    b.transaction("r", "SP", ["c2"])
    b.conflict("SP", "c1", "c2")
    b.executed("SP", ["c1", "c2"])
    # Mid schedule SQ executes q's and s's work via bottom schedule SD.
    b.transaction("q", "SQ", ["d1"])
    b.transaction("s", "SQ", ["d2"])
    b.conflict("SQ", "d1", "d2")
    b.executed("SQ", ["d2", "d1"])
    # Bottom schedules: the actual conflicting leaf accesses.
    b.transaction("c1", "SC", ["x1"])
    b.transaction("c2", "SC", ["x2"])
    b.conflict("SC", "x1", "x2")
    b.executed("SC", ["x1", "x2"])
    b.transaction("d1", "SD", ["y1"])
    b.transaction("d2", "SD", ["y2"])
    b.conflict("SD", "y1", "y2")
    b.executed("SD", ["y2", "y1"])
    return b


def figure3_system() -> CompositeSystem:
    """The Figure-3 *incorrect* execution (see module docstring).

    The reduction builds the level-1 and level-2 fronts — the crossed
    dependencies ``p <_o r`` and ``s <_o q`` are pulled up pessimistically
    because each pair originates on different top schedules — and then
    fails: isolating ``T1`` would need ``T1`` both before and after
    ``T2``.
    """
    return _cross_interference(top_split=True).build()


def figure4_system() -> CompositeSystem:
    """The Figure-4 *correct* execution (see module docstring).

    Identical leaf-level behaviour to Figure 3, but both roots are
    transactions of one top schedule that declares their operations
    non-conflicting, so the crossed orders are forgotten at the meeting
    point and the reduction completes to a serial front.
    """
    return _cross_interference(top_split=False).build()


def figure3_strict_variant() -> CompositeSystem:
    """Figure 4's configuration with the commutativity claim *removed*
    (the top schedule declares the subtransaction conflicts).  Used by
    tests to show the forgetting rule is exactly what separates the two
    verdicts."""
    b = _cross_interference(top_split=False)
    b.conflict("SA", "p", "r")
    b.conflict("SA", "s", "q")
    return b.build()
