"""Serialization-graph testing (SGT).

The optimistic aggressive protocol: every granted access records
conflict edges into a serialization graph over live (and recently
committed) transactions; a request that would close a cycle is aborted.
No blocking, no timestamps — the accepted executions are exactly the
conflict-serializable prefixes, which makes SGT the most permissive of
the classical protocols.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.core.orders import Relation
from repro.schedulers.base import Access, ComponentScheduler, Decision


class SerializationGraphTesting(ComponentScheduler):
    """SGT with committed-node retention.

    Committed transactions stay in the graph while they still have
    incoming paths from live ones (forgetting them too early would
    admit non-serializable executions); they are garbage collected once
    every live transaction started after their commit.
    """

    protocol = "sgt"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._graph = Relation()
        self._accesses: List[Access] = []
        self._committed: Set[str] = set()

    def request(self, txn: str, item: str, mode: str) -> Decision:
        access = Access(txn, item, mode)
        new_edges: List[Tuple[str, str]] = []
        for earlier in self._accesses:
            if earlier.conflicts_with(access):
                new_edges.append((earlier.txn, txn))
        probe = self._graph.copy()
        for a, b in new_edges:
            probe.add(a, b)
        if probe.reaches(txn, txn):
            return Decision.ABORT
        self._graph = probe
        self._accesses.append(access)
        return Decision.GRANT

    def commit(self, txn: str) -> None:
        super().commit(txn)
        self._committed.add(txn)
        self._collect_garbage()

    def abort(self, txn: str) -> None:
        super().abort(txn)
        self._accesses = [a for a in self._accesses if a.txn != txn]
        self._graph = self._rebuild_graph()

    def _rebuild_graph(self) -> Relation:
        graph = Relation()
        for i, earlier in enumerate(self._accesses):
            for later in self._accesses[i + 1:]:
                if earlier.conflicts_with(later):
                    graph.add(earlier.txn, later.txn)
        return graph

    def _collect_garbage(self) -> None:
        # A committed transaction with no live predecessors can never be
        # part of a future cycle: drop its accesses.
        live = self._active
        removable = {
            txn
            for txn in self._committed
            if not any(
                self._graph.reaches(other, txn) for other in live
            )
            and txn not in live
        }
        if removable:
            self._accesses = [
                a for a in self._accesses if a.txn not in removable
            ]
            self._committed -= removable
            self._graph = self._rebuild_graph()

    def serialization_graph(self) -> Relation:
        """The current graph (diagnostics/tests)."""
        return self._graph.copy()
