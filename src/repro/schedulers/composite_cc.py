"""CC scheduling: the order-propagating composite protocol.

The companion papers [ABFS97, AFPS99] sketch *CC scheduling*: each
component guarantees its own conflict consistency — serializability that
additionally respects the weak/strong input orders handed down by its
callers (Def. 4.7) — and propagates the orders it produces to the
components it invokes.  Per-component CC suffices for stacks and forks
(Theorems 2–3), but a *join* can hide a cycle in the ghost graph
(Def. 26): two clients' subtransactions serialized in opposite
directions at a shared server, invisible to every individual scheduler.
The practical remedy the paper's §4 points at is the **ticket method**
for federated transaction management: a shared registry fixes one
serialization order over composite transactions, and every component
refuses accesses that would contradict it.

So the scheduler here is serialization-graph testing with two additions:

* **required input orders** (Def. 4.7 plumbing from callers) are extra
  graph edges;
* an optional :class:`RootOrderRegistry`, shared by all CC schedulers of
  one system, tracks the order between *composite transactions*
  (origins) implied by every granted conflicting access and refuses
  accesses that would invert an established cross-root order — the
  conservative guarantee that makes every committed execution Comp-C in
  arbitrary configurations (re-checked by the P1 benchmark).

The registry ignores the forgetting rule (it cannot know which ancestor
schedules would vouch for commutativity), so it is deliberately more
conservative than Comp-C itself — safety at the cost of some aborts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.orders import Relation
from repro.schedulers.base import Access, ComponentScheduler, Decision


class RootOrderRegistry:
    """A shared serialization order over composite transactions.

    Edges are tagged with the local transactions whose accesses induced
    them, so an abort can retract exactly its own evidence (otherwise a
    retry could livelock against its own ghost)."""

    def __init__(self) -> None:
        # edge -> set of evidence pairs; an evidence pair is the frozenset
        # of the two local transactions whose conflicting accesses induced
        # the edge.  The edge stands while at least one evidence pair has
        # both witnesses alive.
        self._edges: Dict[Tuple[str, str], Set[frozenset]] = {}
        self._relation = Relation()

    def try_order(
        self, before: str, after: str, tag: str, witness: str = ""
    ) -> bool:
        """Record ``before < after``; refuse if the opposite order is
        already established (directly or transitively).  ``tag`` is the
        requesting local transaction, ``witness`` the earlier one —
        either aborting retracts this piece of evidence."""
        if before == after:
            return True
        if self._relation.reaches(after, before):
            return False
        evidence = frozenset((tag, witness)) if witness else frozenset((tag,))
        self._edges.setdefault((before, after), set()).add(evidence)
        self._relation.add(before, after)
        return True

    def purge_tag(self, tag: str) -> None:
        """Retract every piece of evidence involving ``tag`` (an aborted
        local transaction); edges without remaining evidence disappear."""
        changed = False
        for edge, evidences in list(self._edges.items()):
            kept = {e for e in evidences if tag not in e}
            if kept != evidences:
                if kept:
                    self._edges[edge] = kept
                else:
                    del self._edges[edge]
                changed = True
        if changed:
            self._relation = Relation(self._edges.keys())

    def order(self) -> Relation:
        return self._relation.copy()


class CompositeCCScheduler(ComponentScheduler):
    """Order-preserving SGT: conflict edges ∪ required input orders,
    plus cross-root consistency through a shared registry."""

    protocol = "cc"

    def __init__(
        self, name: str, registry: Optional[RootOrderRegistry] = None
    ) -> None:
        super().__init__(name)
        self._accesses: List[Access] = []
        self._required = Relation()  # input orders (Def. 4.7)
        self._conflict_edges = Relation()
        self._committed: set = set()
        self._registry = registry
        self._origin: Dict[str, str] = {}
        # Ancestor chains: txn -> (root top txn, ..., txn).  Conflicts
        # between two local transactions are registered at the pair's
        # *divergence point* — the first ancestors at which their chains
        # differ — which generalizes root-granularity ordering to
        # parallel subtransactions of one composite transaction.
        self._path: Dict[str, Tuple[str, ...]] = {}
        # Item access log for order registration.  Unlike ``_accesses``
        # this is *not* garbage collected with committed transactions:
        # an access conflicting with long-committed work still orders
        # the composite units and must be registered.  Entries are
        # removed only when their transaction aborts.
        self._item_log: Dict[str, List[Tuple[Tuple[str, ...], str, str]]] = {}

    # ------------------------------------------------------------------
    def attach_registry(self, registry: RootOrderRegistry) -> None:
        self._registry = registry

    def set_origin(self, txn: str, origin: str) -> None:
        """Tag a local transaction with its composite transaction."""
        self._origin[txn] = origin

    def set_path(self, txn: str, path: Tuple[str, ...]) -> None:
        """Tag a local transaction with its ancestor chain."""
        self._path[txn] = tuple(path)

    def require_order(self, before: str, after: str) -> None:
        self._required.add(before, after)

    def request(self, txn: str, item: str, mode: str) -> Decision:
        access = Access(txn, item, mode)
        new_edges: List[Tuple[str, str]] = []
        for earlier in self._accesses:
            if earlier.conflicts_with(access):
                # The access would serialize `earlier` before `txn`; if a
                # required or established order says the opposite, refuse.
                new_edges.append((earlier.txn, txn))
        probe = self._conflict_edges.copy().union(self._required)
        for a, b in new_edges:
            probe.add(a, b)
        if probe.reaches(txn, txn):
            return Decision.ABORT
        if self._registry is not None and not self._register_units(
            txn, item, mode
        ):
            return Decision.ABORT
        self._conflict_edges.add_all(new_edges)
        self._accesses.append(access)
        self._item_log.setdefault(item, []).append(
            (self._path.get(txn, (txn,)), mode, txn)
        )
        return Decision.GRANT

    @staticmethod
    def _divergence(
        path_a: Tuple[str, ...], path_b: Tuple[str, ...]
    ) -> Optional[Tuple[str, str]]:
        """The first differing ancestors of two chains, or ``None`` when
        one chain prefixes the other (structurally sequential work —
        a transaction never runs concurrently with its own ancestors)."""
        for a, b in zip(path_a, path_b):
            if a != b:
                return (a, b)
        return None

    def _register_units(self, txn: str, item: str, mode: str) -> bool:
        path = self._path.get(txn)
        if path is None:
            return True
        for earlier_path, earlier_mode, earlier_txn in self._item_log.get(
            item, ()
        ):
            if "w" not in (mode, earlier_mode):
                continue
            units = self._divergence(earlier_path, path)
            if units is None:
                continue  # same unit chain: ordered by program structure
            if not self._registry.try_order(
                units[0], units[1], tag=txn, witness=earlier_txn
            ):
                return False
        return True

    def commit(self, txn: str) -> None:
        super().commit(txn)
        self._committed.add(txn)
        self._collect_garbage()

    def abort(self, txn: str) -> None:
        super().abort(txn)
        self._accesses = [a for a in self._accesses if a.txn != txn]
        self._conflict_edges = self._rebuild()
        if self._registry is not None:
            self._registry.purge_tag(txn)
        for entries in self._item_log.values():
            entries[:] = [e for e in entries if e[2] != txn]
        self._origin.pop(txn, None)
        self._path.pop(txn, None)
        # Required orders about an aborted transaction stay: the caller
        # will re-issue them (or not) with the retry.

    # ------------------------------------------------------------------
    def committed_order(self) -> Relation:
        """The serialization-plus-required order over seen transactions —
        what this component reports upward/downward (Def. 4.7)."""
        return self._conflict_edges.copy().union(self._required)

    def _rebuild(self) -> Relation:
        graph = Relation()
        for i, earlier in enumerate(self._accesses):
            for later in self._accesses[i + 1:]:
                if earlier.conflicts_with(later):
                    graph.add(earlier.txn, later.txn)
        return graph

    def _collect_garbage(self) -> None:
        live = self._active
        combined = self._conflict_edges.copy().union(self._required)
        removable = {
            txn
            for txn in self._committed
            if txn not in live
            and not any(combined.reaches(other, txn) for other in live)
        }
        if removable:
            self._accesses = [
                a for a in self._accesses if a.txn not in removable
            ]
            self._committed -= removable
            self._conflict_edges = self._rebuild()
            kept = Relation()
            for a, b in self._required.pairs():
                if a not in removable and b not in removable:
                    kept.add(a, b)
            self._required = kept
