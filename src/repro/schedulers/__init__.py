"""Per-component concurrency-control protocols.

Every component of a composite system runs its own scheduler (the
paper's architectural premise).  This package ships four protocols with
one uniform interface (:class:`repro.schedulers.base.ComponentScheduler`):

================  =====================================================
``s2pl``          strict two-phase locking, waits-for deadlock detection
``to``            basic timestamp ordering (abort-on-late, no blocking)
``sgt``           serialization-graph testing (optimistic, permissive)
``cc``            CC scheduling: SGT + propagated input orders (the
                  composite protocol of the companion papers)
================  =====================================================
"""

from typing import Callable, Dict

from repro.schedulers.base import Access, ComponentScheduler, Decision, modes_conflict
from repro.schedulers.composite_cc import CompositeCCScheduler
from repro.schedulers.locking import StrictTwoPhaseLocking
from repro.schedulers.sgt import SerializationGraphTesting
from repro.schedulers.timestamp import TimestampOrdering

#: protocol id → factory, used by the simulator configuration
PROTOCOLS: Dict[str, Callable[[str], ComponentScheduler]] = {
    "s2pl": StrictTwoPhaseLocking,
    "to": TimestampOrdering,
    "sgt": SerializationGraphTesting,
    "cc": CompositeCCScheduler,
}


def make_scheduler(protocol: str, name: str) -> ComponentScheduler:
    """Instantiate a scheduler by protocol id."""
    try:
        factory = PROTOCOLS[protocol]
    except KeyError:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    return factory(name)


__all__ = [
    "Access",
    "ComponentScheduler",
    "Decision",
    "modes_conflict",
    "CompositeCCScheduler",
    "StrictTwoPhaseLocking",
    "SerializationGraphTesting",
    "TimestampOrdering",
    "PROTOCOLS",
    "make_scheduler",
]
