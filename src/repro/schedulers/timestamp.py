"""Basic timestamp ordering (TO).

Each transaction receives a timestamp at ``begin``; reads and writes are
validated against per-item read/write timestamps and *rejected* (abort,
never block) when they arrive too late — the classical deadlock-free
protocol.  An optional Thomas write rule silently skips obsolete writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.schedulers.base import ComponentScheduler, Decision


@dataclass
class _ItemStamps:
    read_ts: int = -1
    write_ts: int = -1
    readers: Set[str] = field(default_factory=set)
    writer: str = ""


class TimestampOrdering(ComponentScheduler):
    """Basic TO with optional Thomas write rule."""

    protocol = "to"

    def __init__(self, name: str, *, thomas_write_rule: bool = False) -> None:
        super().__init__(name)
        self.thomas_write_rule = thomas_write_rule
        self._clock = 0
        self._ts: Dict[str, int] = {}
        self._items: Dict[str, _ItemStamps] = {}

    def begin(self, txn: str) -> None:
        super().begin(txn)
        if txn not in self._ts:
            self._clock += 1
            self._ts[txn] = self._clock

    def timestamp_of(self, txn: str) -> int:
        return self._ts[txn]

    def request(self, txn: str, item: str, mode: str) -> Decision:
        ts = self._ts[txn]
        state = self._items.setdefault(item, _ItemStamps())
        if mode == "r":
            if ts < state.write_ts:
                return Decision.ABORT  # reads a value it must not see
            state.read_ts = max(state.read_ts, ts)
            state.readers.add(txn)
            return Decision.GRANT
        # write
        if ts < state.read_ts:
            return Decision.ABORT  # a younger transaction already read
        if ts < state.write_ts:
            if self.thomas_write_rule:
                return Decision.GRANT  # obsolete write, skip silently
            return Decision.ABORT
        state.write_ts = ts
        state.writer = txn
        return Decision.GRANT

    def abort(self, txn: str) -> None:
        super().abort(txn)
        # Restarted transactions must obtain a fresh (larger) timestamp,
        # otherwise they starve forever behind the stamps they lost to.
        self._ts.pop(txn, None)
        for state in self._items.values():
            state.readers.discard(txn)
