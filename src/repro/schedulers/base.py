"""Scheduler interface for per-component concurrency control.

The paper's premise is that every component runs *its own* scheduler.
This package provides online schedulers a component can plug in: strict
two-phase locking, basic timestamp ordering, serialization-graph
testing, and the order-propagating CC scheduler sketched in the
companion papers.  The discrete-event simulator drives them through the
interface defined here.

Protocol model (deliberately simple and uniform):

* ``begin(txn)`` — a (sub)transaction starts at this component;
* ``request(txn, item, mode)`` — the transaction wants to read
  (``"r"``) or write (``"w"``) a data item; the scheduler answers
  :class:`Decision`:
  ``GRANT`` (proceed now), ``BLOCK`` (wait; the scheduler will surface
  the operation through :meth:`ComponentScheduler.drain_granted` once
  unblocked) or ``ABORT`` (the transaction must abort and retry);
* ``commit(txn)`` / ``abort(txn)`` — terminal outcomes; locks and
  bookkeeping are released and blocked requests may become grantable;
* ``require_order(before, after)`` — an input order the component has
  been asked to respect (Def. 4.7 propagation; only the CC scheduler
  uses it, the classical protocols ignore orders they never heard of).

Two operations conflict iff they touch the same item and at least one
writes — the classical read/write model (components with richer
semantic commutativity are modelled at checking time through the
conflict tables of Def. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple


class Decision(enum.Enum):
    """Outcome of an operation request."""

    GRANT = "grant"
    BLOCK = "block"
    ABORT = "abort"


@dataclass(frozen=True)
class Access:
    """A granted access, as remembered by schedulers."""

    txn: str
    item: str
    mode: str  # "r" or "w"

    def conflicts_with(self, other: "Access") -> bool:
        return (
            self.item == other.item
            and self.txn != other.txn
            and ("w" in (self.mode, other.mode))
        )


def modes_conflict(mode_a: str, mode_b: str) -> bool:
    """Read/write conflict table."""
    return "w" in (mode_a, mode_b)


class ComponentScheduler:
    """Base class; concrete protocols override the decision logic."""

    #: short protocol identifier, e.g. "s2pl"; set by subclasses
    protocol = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name
        self._active: Set[str] = set()
        self._granted_log: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, txn: str) -> None:
        self._active.add(txn)

    def request(self, txn: str, item: str, mode: str) -> Decision:
        raise NotImplementedError

    def commit(self, txn: str) -> None:
        self._active.discard(txn)

    def abort(self, txn: str) -> None:
        self._active.discard(txn)

    def finish(self, txn: str, parent: "Optional[str]" = None) -> None:
        """The (sub)transaction completed its work but its fate is still
        tied to the composite transaction (commit comes at the root).

        The engine *broadcasts* this to every component: a transaction's
        locks may be retained at components it never visited itself
        (inherited from its own finished children), and those retained
        holdings must bubble up too.  ``parent`` names the transaction
        inheriting the holdings (``None`` for a root's top transaction).

        Default: ignored.  Nested locking retains the subtransaction's
        holdings at ``parent`` here (Moss inheritance)."""

    def reset(self) -> None:
        """Crash recovery: the component lost its volatile state.

        Every in-flight transaction is aborted (their locks, graph
        nodes and pending grants vanish with the crash); *durable*
        serialization history — committed conflict graphs, item
        timestamps, clocks — survives, as if recovered from the log.
        The engine aborts the affected roots before calling this, so
        for a consistent scheduler the loop below is a no-op; it is the
        safety net for transactions whose root the engine no longer
        tracks."""
        for txn in list(self._active):
            self.abort(txn)
        self._granted_log.clear()

    def require_order(self, before: str, after: str) -> None:
        """An input order (Def. 4.7).  Default: ignored — classical
        protocols serialize by their own rules only."""

    def set_origin(self, txn: str, origin: str) -> None:
        """Tag a local transaction with its composite transaction (root).

        Default: ignored.  Protocols that reason at composite
        granularity (root-owned locks in S2PL) override this."""

    def set_path(self, txn: str, path: Tuple[str, ...]) -> None:
        """Tag a local transaction with its full ancestor chain (root's
        top transaction down to ``txn``).

        Default: ignored.  The CC scheduler uses paths to order
        composite work at the *divergence point* — the online analogue
        of pulling the observed order up to where two execution trees
        meet (Def. 10)."""

    # ------------------------------------------------------------------
    # unblocking
    # ------------------------------------------------------------------
    def drain_granted(self) -> List[Tuple[str, str, str]]:
        """Blocked requests that became grantable since the last call,
        as ``(txn, item, mode)`` triples in grant order."""
        granted, self._granted_log = self._granted_log, []
        return granted

    def _grant_later(self, txn: str, item: str, mode: str) -> None:
        self._granted_log.append((txn, item, mode))

    # ------------------------------------------------------------------
    @property
    def active_transactions(self) -> Set[str]:
        return set(self._active)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
