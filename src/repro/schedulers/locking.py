"""Strict two-phase locking with Moss-style nested ownership.

The workhorse protocol of closed nested transactions ([Mos85, GR93], the
implementation strategy the paper's §1 mentions).  Locks follow Moss's
rules so that *parallel sibling subtransactions stay isolated from each
other* while a transaction's own descendants can reuse its work:

* a request is granted when every conflicting holder is an **ancestor**
  of the requester (or the requester itself) — ancestors' locks are
  retained on behalf of their subtree;
* when a subtransaction finishes (:meth:`finish`), its locks are
  **retained by its parent**: siblings that start later may then acquire
  them, concurrent siblings could not while it ran;
* everything is released at root commit/abort (strictness is per
  composite transaction) — the engine terminates all of a root's local
  transactions together, and the first ``commit``/``abort`` call
  releases the root's entire footprint.

Transactions without ancestry information (no :meth:`set_path` call)
degrade to classical flat S2PL.  Deadlocks among current holders are
detected through a waits-for graph with requester-victim abort; cycles
the graph cannot see (through queued-but-not-holding transactions or
across components) fall back to the engine's timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.orders import Relation
from repro.schedulers.base import ComponentScheduler, Decision, modes_conflict


@dataclass
class _LockState:
    holders: Dict[str, str] = field(default_factory=dict)  # txn -> mode
    # queue entries: (txn, mode), FIFO
    queue: List[Tuple[str, str]] = field(default_factory=list)


class StrictTwoPhaseLocking(ComponentScheduler):
    """S2PL with Moss nested-transaction lock inheritance."""

    protocol = "s2pl"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._locks: Dict[str, _LockState] = {}
        # txn -> origins of the holders it is blocked behind.  Deadlock
        # detection runs at composite-transaction granularity: lock
        # *ownership* is per local transaction (Moss), but a root waits
        # exactly when any of its subtransactions waits, so cycles only
        # make sense between roots.  Intra-root sibling waits carry no
        # edge (the sibling will finish and hand the lock up).
        self._waiting: Dict[str, Set[str]] = {}
        self._origin: Dict[str, str] = {}  # txn -> root (release unit)
        self._path: Dict[str, Tuple[str, ...]] = {}  # txn -> ancestor chain

    # ------------------------------------------------------------------
    def set_origin(self, txn: str, origin: str) -> None:
        self._origin[txn] = origin

    def set_path(self, txn: str, path: Tuple[str, ...]) -> None:
        self._path[txn] = tuple(path)

    def _is_ancestor(self, holder: str, requester: str) -> bool:
        """True when ``holder`` is a proper ancestor of ``requester`` in
        the composite transaction (its lock is retained for the subtree)."""
        path = self._path.get(requester, ())
        return holder in path[:-1]

    def _root_of(self, txn: str) -> str:
        # The origin (composite-transaction name) is the canonical root
        # identity: it is stable across retry attempts and is inherited
        # by retained holders.  The path's top element is an attempt-
        # local alias — never mix the two, or waits-for cycles split
        # across aliases and go undetected.
        origin = self._origin.get(txn)
        if origin is not None:
            return origin
        path = self._path.get(txn)
        if path:
            return path[0]
        return txn

    def _root_waits_graph(self) -> Relation:
        graph = Relation()
        for waiter, blocker_roots in self._waiting.items():
            waiter_root = self._root_of(waiter)
            for blocker_root in blocker_roots:
                if blocker_root != waiter_root:
                    graph.add(waiter_root, blocker_root)
        return graph

    # ------------------------------------------------------------------
    def request(self, txn: str, item: str, mode: str) -> Decision:
        state = self._locks.setdefault(item, _LockState())
        if self._compatible(state, txn, mode):
            self._grant(state, txn, mode)
            return Decision.GRANT
        my_root = self._root_of(txn)
        blocker_roots = {
            self._root_of(holder)
            for holder, hmode in state.holders.items()
            if holder != txn
            and modes_conflict(mode, hmode)
            and not self._is_ancestor(holder, txn)
        }
        # Queued conflicting requests are ahead of us in line: we wait on
        # their roots too (otherwise cycles through queued-but-not-yet-
        # holding transactions are invisible and only timeouts break them).
        for queued_txn, queued_mode in state.queue:
            if queued_txn != txn and modes_conflict(mode, queued_mode):
                blocker_roots.add(self._root_of(queued_txn))
        foreign = blocker_roots - {my_root}
        if foreign:
            graph = self._root_waits_graph()
            if any(graph.reaches(b, my_root) or b == my_root for b in foreign):
                return Decision.ABORT  # the requester would close a cycle
        self._waiting[txn] = foreign
        state.queue.append((txn, mode))
        return Decision.BLOCK

    def finish(self, txn: str, parent: "Optional[str]" = None) -> None:
        """Local completion: retain the subtransaction's holdings —
        whether acquired here or inherited from its own children — at
        its parent (Moss inheritance); later subtrees of the common
        ancestors become eligible."""
        if parent is None:
            path = self._path.get(txn)
            parent = path[-2] if path and len(path) >= 2 else None
        for item, state in self._locks.items():
            mode = state.holders.pop(txn, None)
            if mode is None:
                continue
            if parent is not None:
                current = state.holders.get(parent)
                if current != "w":
                    state.holders[parent] = (
                        "w" if mode == "w" else current or mode
                    )
                # the parent inherits the origin/path bookkeeping lazily:
                if parent not in self._origin and txn in self._origin:
                    self._origin[parent] = self._origin[txn]
            else:
                state.holders[txn] = mode  # a root keeps its own locks
                continue
            self._wake(item, state)
        self._waiting.pop(txn, None)

    def commit(self, txn: str) -> None:
        super().commit(txn)
        self._release_root_of(txn)

    def abort(self, txn: str) -> None:
        super().abort(txn)
        self._release_root_of(txn)

    def reset(self) -> None:
        """Crash recovery: a lock table is purely volatile state, so
        after the base class aborts the stragglers nothing may remain —
        drop the empty per-item states and any orphaned wait entries."""
        super().reset()
        self._locks = {
            item: state
            for item, state in self._locks.items()
            if state.holders or state.queue
        }
        self._waiting = {
            txn: blockers
            for txn, blockers in self._waiting.items()
            if txn in self._active
        }

    # ------------------------------------------------------------------
    def _compatible(self, state: _LockState, txn: str, mode: str) -> bool:
        for holder, hmode in state.holders.items():
            if holder == txn:
                continue
            if not modes_conflict(mode, hmode):
                continue
            if not self._is_ancestor(holder, txn):
                return False
        # Fairness: do not overtake queued conflicting requests (unless
        # re-entering / upgrading a lock we already participate in).
        if txn not in state.holders:
            for queued_txn, queued_mode in state.queue:
                if queued_txn != txn and modes_conflict(mode, queued_mode):
                    return False
        return True

    def _grant(self, state: _LockState, txn: str, mode: str) -> None:
        current = state.holders.get(txn)
        state.holders[txn] = "w" if "w" in (mode, current) else "r"

    def _release_root_of(self, txn: str) -> None:
        """Release the whole root's footprint (strictness is per root)."""
        root = self._origin.get(txn)

        def belongs(t: str) -> bool:
            if t == txn:
                return True
            return root is not None and self._origin.get(t) == root

        for item, state in self._locks.items():
            for holder in [h for h in state.holders if belongs(h)]:
                del state.holders[holder]
            state.queue = [(t, m) for t, m in state.queue if not belongs(t)]
            self._wake(item, state)
        for waiter in [w for w in self._waiting if belongs(w)]:
            del self._waiting[waiter]
        self._origin.pop(txn, None)
        self._path.pop(txn, None)

    def _wake(self, item: str, state: _LockState) -> None:
        progressed = True
        while progressed and state.queue:
            progressed = False
            txn, mode = state.queue[0]
            # Temporarily ignore the head's own queue entry for the
            # fairness check by testing compatibility directly:
            compatible = all(
                holder == txn
                or not modes_conflict(mode, hmode)
                or self._is_ancestor(holder, txn)
                for holder, hmode in state.holders.items()
            )
            if compatible:
                state.queue.pop(0)
                self._grant(state, txn, mode)
                self._waiting.pop(txn, None)
                self._grant_later(txn, item, mode)
                progressed = True

    # ------------------------------------------------------------------
    def held_locks(self, txn: str) -> Set[str]:
        """Items currently locked by ``txn`` (diagnostics/tests)."""
        return {
            item
            for item, state in self._locks.items()
            if txn in state.holders
        }
