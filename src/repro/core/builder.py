"""Fluent construction API for composite systems.

:class:`SystemBuilder` assembles schedules, transactions, conflicts and
orders incrementally and performs the bookkeeping Def. 4 requires but
that is tedious to write by hand:

* intra-transaction orders are folded into the owning schedule's output
  orders (axiom 2 of Def. 3 demands them there anyway);
* output orders of a caller schedule are propagated as input orders of
  the callee when both operations are transactions of the same callee
  (Def. 4.7) — so a model stays well-formed without the user repeating
  every order twice;
* strong input orders are expanded into the strong output pairs axiom 3
  demands when the recorded execution satisfies them.

Example
-------
>>> b = SystemBuilder()
>>> _ = b.transaction("T1", "Top", ["t11", "t12"])
>>> _ = b.transaction("t11", "Bottom", ["a"], )
>>> _ = b.transaction("t12", "Bottom", ["b"])
>>> _ = b.conflict("Bottom", "a", "b")
>>> _ = b.executed("Bottom", ["a", "b"])
>>> _ = b.executed("Top", ["t11", "t12"])
>>> system = b.build()
>>> system.order
2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.core.system import CompositeSystem
from repro.core.transaction import Transaction
from repro.exceptions import ModelError


def _execution_pairs(
    sequence: Sequence[str],
    mode: str,
    conflicts: Iterable[Tuple[str, str]],
) -> List[Tuple[str, str]]:
    """Weak-output pairs committed by a recorded execution sequence."""
    if mode == "temporal":
        return list(zip(sequence, sequence[1:]))
    position = {op: i for i, op in enumerate(sequence)}
    pairs: List[Tuple[str, str]] = []
    for a, b in conflicts:
        if a in position and b in position:
            if position[a] < position[b]:
                pairs.append((a, b))
            else:
                pairs.append((b, a))
    return pairs


@dataclass
class _ScheduleDraft:
    name: str
    transactions: "Dict[str, Transaction]" = field(default_factory=dict)
    conflicts: List[Tuple[str, str]] = field(default_factory=list)
    weak_input: List[Tuple[str, str]] = field(default_factory=list)
    strong_input: List[Tuple[str, str]] = field(default_factory=list)
    weak_output: List[Tuple[str, str]] = field(default_factory=list)
    strong_output: List[Tuple[str, str]] = field(default_factory=list)
    execution: Optional[List[str]] = None
    execution_mode: str = "conflicts"


class SystemBuilder:
    """Incremental builder for :class:`repro.core.system.CompositeSystem`."""

    def __init__(self) -> None:
        self._drafts: Dict[str, _ScheduleDraft] = {}
        self._txn_schedule: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def schedule(self, name: str) -> "SystemBuilder":
        """Declare a schedule (idempotent; usually implicit)."""
        if name not in self._drafts:
            self._drafts[name] = _ScheduleDraft(name)
        return self

    def transaction(
        self,
        name: str,
        schedule: str,
        operations: Sequence[str],
        *,
        weak_order: Iterable[Tuple[str, str]] = (),
        strong_order: Iterable[Tuple[str, str]] = (),
        sequential: bool = False,
    ) -> "SystemBuilder":
        """Declare transaction ``name`` of ``schedule`` with the given
        operations and intra-transaction orders (Def. 2)."""
        self.schedule(schedule)
        if name in self._txn_schedule:
            raise ModelError(
                f"transaction {name!r} already declared on schedule "
                f"{self._txn_schedule[name]!r}"
            )
        txn = Transaction(
            name,
            operations,
            weak_order=weak_order,
            strong_order=strong_order,
            sequential=sequential,
        )
        self._drafts[schedule].transactions[name] = txn
        self._txn_schedule[name] = schedule
        return self

    def conflict(self, schedule: str, a: str, b: str) -> "SystemBuilder":
        """Declare ``CON_schedule(a, b)`` (symmetric)."""
        self.schedule(schedule)
        self._drafts[schedule].conflicts.append((a, b))
        return self

    def conflicts(
        self, schedule: str, pairs: Iterable[Tuple[str, str]]
    ) -> "SystemBuilder":
        for a, b in pairs:
            self.conflict(schedule, a, b)
        return self

    # ------------------------------------------------------------------
    # orders
    # ------------------------------------------------------------------
    def executed(
        self, schedule: str, sequence: Sequence[str], *, mode: str = "conflicts"
    ) -> "SystemBuilder":
        """Record the schedule's behaviour as a total temporal sequence of
        its operations (the usual shape of an observed history).

        ``mode`` controls which temporal pairs become *weak output order*
        commitments:

        ``"conflicts"`` (default)
            only pairs the schedule must order — conflicting operations —
            are committed.  This matches the paper's reading of Def. 3
            ("weak orders are only propagated when operations conflict,
            otherwise the weak order disappears") and keeps the recorded
            history maximally permissive.
        ``"temporal"``
            the whole sequence becomes the weak output order (the
            conservative reading; used by the A1 ablation benchmark).
        """
        if mode not in ("conflicts", "temporal"):
            raise ModelError(f"unknown execution mode {mode!r}")
        self.schedule(schedule)
        self._drafts[schedule].execution = list(sequence)
        self._drafts[schedule].execution_mode = mode
        return self

    def weak_output(self, schedule: str, a: str, b: str) -> "SystemBuilder":
        self.schedule(schedule)
        self._drafts[schedule].weak_output.append((a, b))
        return self

    def strong_output(self, schedule: str, a: str, b: str) -> "SystemBuilder":
        self.schedule(schedule)
        self._drafts[schedule].strong_output.append((a, b))
        return self

    def weak_input(self, schedule: str, t1: str, t2: str) -> "SystemBuilder":
        """Require ``t1 → t2`` at ``schedule`` (restricted parallelism)."""
        self.schedule(schedule)
        self._drafts[schedule].weak_input.append((t1, t2))
        return self

    def strong_input(self, schedule: str, t1: str, t2: str) -> "SystemBuilder":
        """Require ``t1 ↠ t2`` at ``schedule`` (strict sequencing)."""
        self.schedule(schedule)
        self._drafts[schedule].strong_input.append((t1, t2))
        return self

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def build(
        self, *, validate: bool = True, propagate_orders: bool = True
    ) -> CompositeSystem:
        """Assemble and validate the composite system.

        ``propagate_orders`` applies Def. 4.7 automatically: every output
        order between two operations that are transactions of the same
        callee schedule is added to that callee's input orders.
        """
        if not self._drafts:
            raise ModelError("no schedules declared")
        resolved: Dict[str, Dict[str, List[Tuple[str, str]]]] = {}
        for name, draft in self._drafts.items():
            weak_out = list(draft.weak_output)
            strong_out = list(draft.strong_output)
            if draft.execution is not None:
                weak_out.extend(
                    _execution_pairs(
                        draft.execution, draft.execution_mode, draft.conflicts
                    )
                )
            # Axiom 2: intra-transaction orders must surface in outputs.
            for txn in draft.transactions.values():
                weak_out.extend(txn.weak_order.pairs())
                strong_out.extend(txn.strong_order.pairs())
            # Axiom 3: strong inputs sequence whole transactions.
            for t1, t2 in draft.strong_input:
                ops1 = draft.transactions[t1].operations
                ops2 = draft.transactions[t2].operations
                for a in ops1:
                    for b in ops2:
                        strong_out.append((a, b))
            resolved[name] = {
                "weak_output": weak_out,
                "strong_output": strong_out,
                "weak_input": list(draft.weak_input),
                "strong_input": list(draft.strong_input),
            }

        if propagate_orders:
            self._propagate(resolved)

        schedules = []
        for name, draft in self._drafts.items():
            orders = resolved[name]
            schedules.append(
                Schedule(
                    name,
                    list(draft.transactions.values()),
                    conflicts=draft.conflicts,
                    weak_input=orders["weak_input"],
                    strong_input=orders["strong_input"],
                    weak_output=orders["weak_output"],
                    strong_output=orders["strong_output"],
                    validate=validate,
                )
            )
        return CompositeSystem(schedules, validate=validate)

    def _propagate(
        self, resolved: Dict[str, Dict[str, List[Tuple[str, str]]]]
    ) -> None:
        """Def. 4.7: caller output orders become callee input orders.

        Validation checks the *transitively closed* output relations, so
        propagation must work on closures too (a pair derived through a
        chain of conflicts still binds the callee).  Outputs are also
        transitively relevant across levels — a propagated input order
        can force new strong outputs via axiom 3, which may propagate
        further down — so we iterate to a fixed point.
        """
        from repro.core.orders import Relation

        changed = True
        passes = 0
        while changed:
            passes += 1
            if passes > 2 * len(self._drafts) + 4:  # pragma: no cover
                raise ModelError("order propagation did not converge")
            changed = False
            for name in self._drafts:
                orders = resolved[name]
                for kind_out, kind_in in (
                    ("weak_output", "weak_input"),
                    ("strong_output", "strong_input"),
                ):
                    closed = Relation(orders[kind_out]).transitive_closure()
                    for a, b in closed.pairs():
                        sa = self._txn_schedule.get(a)
                        sb = self._txn_schedule.get(b)
                        if sa is None or sa != sb or sa == name:
                            continue
                        target = resolved[sa][kind_in]
                        if (a, b) not in target:
                            target.append((a, b))
                            changed = True
            # Re-expand axiom 3 after new strong inputs arrived.
            for name, draft in self._drafts.items():
                orders = resolved[name]
                closed_in = Relation(
                    orders["strong_input"]
                ).transitive_closure()
                for t1, t2 in closed_in.pairs():
                    ops1 = draft.transactions[t1].operations
                    ops2 = draft.transactions[t2].operations
                    for a in ops1:
                        for b in ops2:
                            if (a, b) not in orders["strong_output"]:
                                orders["strong_output"].append((a, b))
                                changed = True

    # ------------------------------------------------------------------
    # declarative construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping) -> "SystemBuilder":
        """Build from a nested-dict specification (the shape used by the
        text format in :mod:`repro.io.text_format` and by tests).

        ::

            {"schedules": {
                "S1": {
                    "transactions": {"T1": ["a", "b"],
                                     "T2": {"ops": ["c"], "sequential": True}},
                    "conflicts": [["a", "c"]],
                    "executed": ["a", "c", "b"],
                    "weak_input": [["T1", "T2"]],
                },
            }}
        """
        builder = cls()
        schedules = spec.get("schedules", {})
        for sname, body in schedules.items():
            builder.schedule(sname)
            for tname, tdef in body.get("transactions", {}).items():
                if isinstance(tdef, Mapping):
                    builder.transaction(
                        tname,
                        sname,
                        tdef.get("ops", []),
                        weak_order=[tuple(p) for p in tdef.get("weak", [])],
                        strong_order=[tuple(p) for p in tdef.get("strong", [])],
                        sequential=bool(tdef.get("sequential", False)),
                    )
                else:
                    builder.transaction(tname, sname, list(tdef))
            for a, b in body.get("conflicts", []):
                builder.conflict(sname, a, b)
            if "executed" in body:
                builder.executed(
                    sname,
                    list(body["executed"]),
                    mode=body.get("executed_mode", "conflicts"),
                )
            for a, b in body.get("weak_output", []):
                builder.weak_output(sname, a, b)
            for a, b in body.get("strong_output", []):
                builder.strong_output(sname, a, b)
            for a, b in body.get("weak_input", []):
                builder.weak_input(sname, a, b)
            for a, b in body.get("strong_input", []):
                builder.strong_input(sname, a, b)
        return builder


def build_system(spec: Mapping, **kwargs) -> CompositeSystem:
    """One-shot: :meth:`SystemBuilder.from_spec` followed by ``build``."""
    return SystemBuilder.from_spec(spec).build(**kwargs)
