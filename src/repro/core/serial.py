"""Serial fronts and level-``i`` containment (Def. 17–20).

These are the *definitional* notions of correctness; Theorem 1 proves
them equivalent to the reduction succeeding.  The checks here are kept
independent of the reduction engine's internals so the T1 benchmark can
cross-validate the theorem constructively: for every accepted execution
we build the serial front by topological sorting (exactly the
construction in the Theorem 1 proof) and verify all three containment
conditions; for every rejected execution we verify the failure
certificate (see :mod:`repro.core.certificates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.front import Front
from repro.core.reduction import ReductionResult
from repro.exceptions import ReductionError


@dataclass
class ContainmentCheck:
    """The outcome of a Def.-19 containment verification."""

    holds: bool
    reasons: List[str]

    def __bool__(self) -> bool:
        return self.holds


def level_equivalent(front_a: Front, front_b: Front) -> bool:
    """Def. 18 specialized to concrete fronts: identical node sets,
    observed orders and input orders."""
    return (
        set(front_a.nodes) == set(front_b.nodes)
        and front_a.observed == front_b.observed
        and front_a.input_weak == front_b.input_weak
        and front_a.input_strong == front_b.input_strong
    )


def check_containment(front: Front, serial: Front) -> ContainmentCheck:
    """Def. 19: is ``front`` level-i-contained in ``serial``?

    1. same node set (we use the front itself as the ``F*`` of Def. 19.1);
    2. the serial front's order contains the front's input orders *and*
       its observed order (the Theorem 1 proof requires
       ``→_FS ⊇ (≺ ∪ →)``);
    3. the conflict material agrees — with identical node sets and
       observed orders this is automatic, so we check observed-order
       agreement directly.
    """
    reasons: List[str] = []
    if set(front.nodes) != set(serial.nodes):
        reasons.append(
            f"node sets differ: {sorted(front.nodes)} vs "
            f"{sorted(serial.nodes)}"
        )
    # Row-wise containment (``missing_pairs`` yields in canonical
    # pairs() order, so reason strings are unchanged).
    serial_order = serial.input_strong
    for a, b in front.input_weak.missing_pairs(serial_order):
        reasons.append(f"input order {a} -> {b} not in the serial order")
    for a, b in front.observed.missing_pairs(serial_order):
        reasons.append(f"observed order {a} < {b} not in the serial order")
    for a, b in front.observed.missing_pairs(serial.observed):
        reasons.append(f"observed pair {a} < {b} missing from serial front")
    return ContainmentCheck(holds=not reasons, reasons=reasons)


def serial_front_of(result: ReductionResult) -> Front:
    """The serial front a successful reduction is contained in
    (the Theorem 1 'if'-direction construction)."""
    if not result.succeeded:
        raise ReductionError(
            "reduction failed; no serial front exists by Theorem 1"
        )
    return result.final_front.as_serial_front()


def verify_theorem1_if_direction(
    result: ReductionResult,
) -> ContainmentCheck:
    """Constructive validation of Theorem 1 (if): given a level-N front,
    build the serial front and confirm Def.-19 containment plus
    Def.-17 seriality."""
    serial = serial_front_of(result)
    check = check_containment(result.final_front, serial)
    reasons = list(check.reasons)
    if not serial.is_serial():
        reasons.append("constructed front is not serial (Def. 17)")
    if not serial.is_conflict_consistent():
        reasons.append("constructed serial front is not CC")
    return ContainmentCheck(holds=not reasons, reasons=reasons)


def serial_execution_order(result: ReductionResult) -> Optional[List[str]]:
    """The equivalent serial order over root transactions, or ``None``
    for rejected executions."""
    if not result.succeeded:
        return None
    return result.serial_order()
