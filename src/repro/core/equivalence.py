"""Cross-system equivalence (Def. 18 in its full generality).

Def. 18 deliberately compares fronts of *different* composite systems:
"This definition allows composite systems to be compared, even without
having the same structure since the front F can be some level j front of
another CS.  In that case, what happens on lower levels is irrelevant,
as long as the effect on the levels i and j is the same."

This module turns that into an API: extract the level-``i`` front of one
system, the level-``j`` front of another, optionally rename nodes, and
compare.  The flagship use is abstraction checking — proving that a deep
composite execution is indistinguishable, at the root level, from a
flat single-schedule execution (or from a differently-factored
composite) — which is how component refactorings can be verified not to
change transactional behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.front import Front
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import ReductionEngine
from repro.core.serial import level_equivalent
from repro.core.system import CompositeSystem
from repro.exceptions import ReductionError


def front_at_level(
    system: CompositeSystem,
    level: int,
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> Front:
    """The system's level-``level`` front (Def. 16).

    Raises :class:`ReductionError` when no such front exists (the
    execution fails before that level — only correct prefixes have
    fronts) or when ``level`` exceeds the system order.
    """
    result = ReductionEngine(system, options).run(stop_level=level)
    if not result.succeeded:
        raise ReductionError(
            f"no level-{level} front: {result.failure.describe()}"
        )
    return result.final_front


def rename_front(front: Front, mapping: Mapping[str, str]) -> Front:
    """A copy of ``front`` with nodes renamed through ``mapping``
    (identity for unmapped nodes).  Renaming must stay injective on the
    front's nodes.

    On the bitset engine an injective ``mapped`` is a pure row scatter
    — the packed rows are re-addressed under the new element index, no
    per-pair work — so renaming costs O(nodes + rows), not O(pairs).
    The rename table is resolved once, up front, rather than once per
    order traversal.
    """
    table = {n: mapping.get(n, n) for n in front.nodes}

    def rep(node: str) -> str:
        hit = table.get(node)
        return hit if hit is not None else mapping.get(node, node)

    renamed_nodes = [table[n] for n in front.nodes]
    if len(set(renamed_nodes)) != len(renamed_nodes):
        raise ValueError("renaming collapses distinct front nodes")
    return Front(
        level=front.level,
        nodes=tuple(renamed_nodes),
        observed=front.observed.mapped(rep, drop_loops=False),
        input_weak=front.input_weak.mapped(rep, drop_loops=False),
        input_strong=front.input_strong.mapped(rep, drop_loops=False),
    )


def level_equivalent_systems(
    system_a: CompositeSystem,
    level_a: int,
    system_b: CompositeSystem,
    level_b: int,
    *,
    rename: Optional[Mapping[str, str]] = None,
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> bool:
    """Def. 18 across systems: is ``system_a``'s level-``level_a`` front
    identical to ``system_b``'s level-``level_b`` front (after applying
    ``rename`` to the first)?

    Lower levels are irrelevant by construction — only the fronts are
    compared.  Executions that fail before the requested level have no
    front and are never equivalent to anything.
    """
    try:
        front_a = front_at_level(system_a, level_a, options)
        front_b = front_at_level(system_b, level_b, options)
    except ReductionError:
        return False
    if rename:
        front_a = rename_front(front_a, rename)
    return level_equivalent(front_a, front_b)


def abstracts_to_flat(
    system: CompositeSystem,
    flat: CompositeSystem,
    *,
    rename: Optional[Mapping[str, str]] = None,
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> bool:
    """Does the composite execution abstract to the given *flat* (order-1)
    execution?  I.e. is the composite's root front identical to the flat
    system's root front — the refactoring-safety check described in the
    module docstring."""
    if flat.order != 1:
        raise ValueError("the reference system must be flat (order 1)")
    return level_equivalent_systems(
        system,
        system.order,
        flat,
        1,
        rename=rename,
        options=options,
    )


def root_behaviour(
    system: CompositeSystem,
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> Optional[Dict[str, List]]:
    """A structural digest of the root-level behaviour: observed pairs
    and input pairs over roots — ``None`` for incorrect executions.
    Two systems with equal digests are level-N/level-M equivalent up to
    node identity."""
    try:
        front = front_at_level(system, system.order, options)
    except ReductionError:
        return None
    return {
        "nodes": sorted(front.nodes),
        "observed": sorted(front.observed.pairs()),
        "input_weak": sorted(front.input_weak.pairs()),
        "input_strong": sorted(front.input_strong.pairs()),
    }
