"""Schedules (Def. 3 of the paper).

A schedule abstracts one transactional component: the set of
transactions it executed, which of its operations conflict, the weak and
strong *input* orders it was asked to respect (between transactions),
and the weak and strong *output* orders it produced (between
operations).  Def. 3 constrains the outputs:

1. for conflicting operations ``o ∈ O_t``, ``o' ∈ O_t'`` of distinct
   transactions:
   (a) ``t → t'`` implies ``o ≺ o'``;
   (b) ``t' → t`` implies ``o' ≺ o``;
   (c) otherwise they must still be ordered one way or the other;
2. intra-transaction orders are honoured: (a) ``o ≺_t o'`` implies
   ``o ≺ o'`` and (b) ``o ≪_t o'`` implies ``o ≪ o'``;
3. a strong input order ``t ↠ t'`` sequences *every* operation pair
   across the two transactions strongly;
4. ``≪ ⊆ ≺``.

The key subtlety (and the source of the extra parallelism the model
offers): *weak orders propagate only through conflicts*.  A schedule
that knows two operations commute may execute them in either order no
matter how their parent transactions were weakly ordered.

A ``Schedule`` records one concrete (already happened or simulated)
behaviour; it is the static input to the Comp-C checker.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.orders import Relation
from repro.core.transaction import Transaction
from repro.exceptions import CycleError, ModelError, ScheduleAxiomError

# Shared empty adjacency row for operations with no declared conflicts.
_NO_NEIGHBOURS: FrozenSet[str] = frozenset()

ConflictPair = FrozenSet[str]

#: Callback used by :func:`_normalize_conflicts` to report a defective
#: pair: ``(issue, (a, b))`` where ``issue`` is ``"self-conflict"`` or
#: ``"duplicate"``.
ConflictIssueHandler = Callable[[str, Tuple[str, str]], None]


def _normalize_conflicts(
    pairs: Iterable[Tuple[str, str]],
    on_issue: Optional[ConflictIssueHandler] = None,
) -> Set[ConflictPair]:
    """Normalize a conflict declaration into a set of unordered pairs.

    Without ``on_issue`` (the engine's construction path) the first
    self-conflicting pair raises :class:`ModelError` and duplicates are
    silently collapsed.  With ``on_issue`` (the lint path) *every*
    self-conflicting and duplicate pair is reported through the callback
    in one pass — the collector decides what to do with them — and the
    usable pairs are still returned.
    """
    normalized: Set[ConflictPair] = set()
    for a, b in pairs:
        if a == b:
            if on_issue is None:
                raise ModelError(
                    f"operation {a!r} cannot conflict with itself"
                )
            on_issue("self-conflict", (a, b))
            continue
        key: ConflictPair = frozenset((a, b))
        if key in normalized:
            if on_issue is not None:
                on_issue("duplicate", (a, b))
            continue
        normalized.add(key)
    return normalized


class Schedule:
    """One component's recorded behaviour (Def. 3)."""

    def __init__(
        self,
        name: str,
        transactions: Sequence[Transaction],
        *,
        conflicts: Iterable[Tuple[str, str]] = (),
        weak_input: Iterable[Tuple[str, str]] = (),
        strong_input: Iterable[Tuple[str, str]] = (),
        weak_output: Iterable[Tuple[str, str]] = (),
        strong_output: Iterable[Tuple[str, str]] = (),
        validate: bool = True,
    ) -> None:
        if not name:
            raise ModelError("schedule name must be non-empty")
        self.name = name

        self._transactions: Dict[str, Transaction] = {}
        self._owner_of: Dict[str, str] = {}
        for txn in transactions:
            if txn.name in self._transactions:
                raise ModelError(
                    f"schedule {name!r} lists transaction {txn.name!r} twice"
                )
            self._transactions[txn.name] = txn
            for op in txn.operations:
                if op in self._owner_of:
                    raise ModelError(
                        f"operation {op!r} belongs to two transactions "
                        f"({self._owner_of[op]!r} and {txn.name!r}) of "
                        f"schedule {name!r}"
                    )
                self._owner_of[op] = txn.name

        self._conflicts = _normalize_conflicts(conflicts)
        # Adjacency view of the conflict set: `conflicting` sits on the
        # observed-order and constraint hot paths, and a per-call
        # frozenset construction dominated it.
        self._conflict_adj: Dict[str, Set[str]] = {}
        for pair in self._conflicts:
            for op in pair:
                if op not in self._owner_of:
                    raise ModelError(
                        f"conflict on {op!r} which is not an operation of "
                        f"schedule {name!r}"
                    )
            a, b = tuple(pair)
            self._conflict_adj.setdefault(a, set()).add(b)
            self._conflict_adj.setdefault(b, set()).add(a)

        operations = tuple(self._owner_of)

        strong_in = Relation(elements=self._transactions)
        strong_in.add_all(self._check_txn_pairs(strong_input, "strong input"))
        weak_in = strong_in.copy()
        weak_in.add_all(self._check_txn_pairs(weak_input, "weak input"))
        self._weak_input = weak_in.transitive_closure()
        self._strong_input = strong_in.transitive_closure()

        strong_out = Relation(elements=operations)
        strong_out.add_all(self._check_op_pairs(strong_output, "strong output"))
        weak_out = strong_out.copy()
        weak_out.add_all(self._check_op_pairs(weak_output, "weak output"))
        self._weak_output = weak_out.transitive_closure()
        self._strong_output = strong_out.transitive_closure()

        cycle = self._weak_input.find_cycle()
        if cycle is not None:
            raise CycleError(f"weak input order of {name!r} is cyclic", cycle)
        cycle = self._weak_output.find_cycle()
        if cycle is not None:
            raise CycleError(f"weak output order of {name!r} is cyclic", cycle)

        if validate:
            self.validate_axioms()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _check_txn_pairs(
        self, pairs: Iterable[Tuple[str, str]], label: str
    ) -> List[Tuple[str, str]]:
        checked = []
        for a, b in pairs:
            for t in (a, b):
                if t not in self._transactions:
                    raise ModelError(
                        f"{label} order of schedule {self.name!r} mentions "
                        f"{t!r}, which is not one of its transactions"
                    )
            checked.append((a, b))
        return checked

    def _check_op_pairs(
        self, pairs: Iterable[Tuple[str, str]], label: str
    ) -> List[Tuple[str, str]]:
        checked = []
        for a, b in pairs:
            for o in (a, b):
                if o not in self._owner_of:
                    raise ModelError(
                        f"{label} order of schedule {self.name!r} mentions "
                        f"{o!r}, which is not one of its operations"
                    )
            checked.append((a, b))
        return checked

    @classmethod
    def from_sequence(
        cls,
        name: str,
        transactions: Sequence[Transaction],
        execution: Sequence[str],
        *,
        conflicts: Iterable[Tuple[str, str]] = (),
        weak_input: Iterable[Tuple[str, str]] = (),
        strong_input: Iterable[Tuple[str, str]] = (),
        validate: bool = True,
        mode: str = "conflicts",
    ) -> "Schedule":
        """Build a schedule from an execution sequence.

        With ``mode="conflicts"`` (default) only conflicting pairs of the
        sequence are committed to the weak output order — the paper's
        reading of Def. 3, under which weak orders between commuting
        operations "disappear".  ``mode="temporal"`` commits the whole
        sequence.  Intra-transaction weak orders are always included
        (axiom 2a requires them).

        The strong output order is left minimal (only what axioms 2b/3
        force is added via intra-transaction strong orders or strong
        inputs; pure interleaved histories have no incidental strong
        sequencing).
        """
        if mode not in ("conflicts", "temporal"):
            raise ModelError(f"unknown execution mode {mode!r}")
        ops_declared: Set[str] = set()
        for txn in transactions:
            ops_declared.update(txn.operations)
        if set(execution) != ops_declared:
            missing = ops_declared - set(execution)
            extra = set(execution) - ops_declared
            raise ModelError(
                f"execution sequence of {name!r} does not match the "
                f"declared operations (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        if mode == "temporal":
            weak_output = list(zip(execution, execution[1:]))
        else:
            index = {op: i for i, op in enumerate(execution)}
            weak_output = []
            for pair in _normalize_conflicts(conflicts):
                a, b = tuple(pair)
                if a not in index or b not in index:
                    raise ModelError(
                        f"conflict ({a!r}, {b!r}) mentions an operation "
                        f"outside the execution of {name!r}"
                    )
                ordered = (a, b) if index[a] < index[b] else (b, a)
                weak_output.append(ordered)
        # Intra-transaction weak orders (axiom 2a) must surface in the
        # weak output regardless of mode.
        for txn in transactions:
            weak_output.extend(txn.weak_order.pairs())
        # Strong obligations from strong inputs / intra strong orders are
        # honoured automatically because the sequence is total; emit the
        # required strong output pairs so axiom 2b/3 validation passes.
        strong_pairs: List[Tuple[str, str]] = []
        position = {op: i for i, op in enumerate(execution)}
        strong_in = Relation()
        strong_in.add_all(strong_input)
        strong_in = strong_in.transitive_closure()
        by_name = {txn.name: txn for txn in transactions}
        for txn in transactions:
            for a, b in txn.strong_order.pairs():
                strong_pairs.append((a, b) if position[a] < position[b] else (b, a))
        for t, t2 in strong_in.pairs():
            for a in by_name[t].operations:
                for b in by_name[t2].operations:
                    strong_pairs.append((a, b))
        return cls(
            name,
            transactions,
            conflicts=conflicts,
            weak_input=weak_input,
            strong_input=strong_input,
            weak_output=weak_output,
            strong_output=strong_pairs,
            validate=validate,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> Mapping[str, Transaction]:
        """``T_S`` keyed by transaction name."""
        return dict(self._transactions)

    @property
    def transaction_names(self) -> Tuple[str, ...]:
        return tuple(self._transactions)

    @property
    def operations(self) -> Tuple[str, ...]:
        """``O_S`` — every operation of every transaction of this schedule."""
        return tuple(self._owner_of)

    @property
    def conflicts(self) -> Set[ConflictPair]:
        """The symmetric conflict predicate ``CON_S`` as a pair set."""
        return set(self._conflicts)

    @property
    def weak_input(self) -> Relation:
        """``→`` over ``T_S`` (transitively closed, includes strong input)."""
        return self._weak_input

    @property
    def strong_input(self) -> Relation:
        """``↠`` over ``T_S`` (transitively closed)."""
        return self._strong_input

    @property
    def weak_output(self) -> Relation:
        """``≺`` over ``O_S`` (transitively closed, includes strong output)."""
        return self._weak_output

    @property
    def strong_output(self) -> Relation:
        """``≪`` over ``O_S`` (transitively closed)."""
        return self._strong_output

    def transaction_of(self, op: str) -> str:
        """The (schedule-local) transaction owning ``op``."""
        try:
            return self._owner_of[op]
        except KeyError:
            raise ModelError(
                f"{op!r} is not an operation of schedule {self.name!r}"
            ) from None

    def conflicting(self, a: str, b: str) -> bool:
        """``CON_S(a, b)`` — symmetric, irreflexive."""
        adj = self._conflict_adj.get(a)
        return adj is not None and b in adj

    def conflict_neighbours(self, op: str) -> "AbstractSet[str]":
        """All operations ``b`` with ``CON_S(op, b)`` — the whole-row
        form of :meth:`conflicting`, used by the bitset kernels to gate
        an entire successor row with one mask intersection."""
        return self._conflict_adj.get(op, _NO_NEIGHBOURS)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.name!r}, txns={list(self._transactions)}, "
            f"{len(self._conflicts)} conflicts)"
        )

    # ------------------------------------------------------------------
    # Def. 3 axioms
    # ------------------------------------------------------------------
    def validate_axioms(self) -> None:
        """Raise :class:`ScheduleAxiomError` on the first violated axiom.

        The engine's fail-fast entry point.  The checks themselves live
        in :meth:`iter_axiom_violations` so the lint layer collects the
        *same* violations the constructor would raise — the two can
        never disagree.
        """
        for violation in self.iter_axiom_violations():
            raise violation

    def iter_axiom_violations(self) -> Iterator[ScheduleAxiomError]:
        """Yield every Def. 3 axiom violation as a structured
        (unraised) :class:`ScheduleAxiomError`, in axiom order."""
        for pair in sorted(self._conflicts, key=sorted):
            a, b = sorted(pair)
            ta, tb = self._owner_of[a], self._owner_of[b]
            if ta == tb:
                continue  # axiom 1 quantifies over distinct transactions
            if (ta, tb) in self._weak_input:
                if (a, b) not in self._weak_output:
                    yield ScheduleAxiomError(
                        "1a",
                        f"{self.name}: {ta} -> {tb} but conflicting "
                        f"{a},{b} not weakly ordered {a} < {b}",
                        schedule=self.name,
                        operations=(a, b),
                        transactions=(ta, tb),
                    )
            elif (tb, ta) in self._weak_input:
                if (b, a) not in self._weak_output:
                    yield ScheduleAxiomError(
                        "1b",
                        f"{self.name}: {tb} -> {ta} but conflicting "
                        f"{b},{a} not weakly ordered {b} < {a}",
                        schedule=self.name,
                        operations=(b, a),
                        transactions=(tb, ta),
                    )
            elif not self._weak_output.orders(a, b):
                yield ScheduleAxiomError(
                    "1c",
                    f"{self.name}: conflicting operations {a},{b} of "
                    "unordered transactions are not output-ordered",
                    schedule=self.name,
                    operations=(a, b),
                    transactions=(ta, tb),
                )
        for txn in self._transactions.values():
            for a, b in txn.weak_order.missing_pairs(self._weak_output):
                yield ScheduleAxiomError(
                    "2a",
                    f"{self.name}: intra order {a} < {b} of {txn.name} "
                    "not reflected in the weak output order",
                    schedule=self.name,
                    operations=(a, b),
                    transactions=(txn.name,),
                )
            for a, b in txn.strong_order.missing_pairs(self._strong_output):
                yield ScheduleAxiomError(
                    "2b",
                    f"{self.name}: strong intra order {a} << {b} of "
                    f"{txn.name} not reflected in the strong output",
                    schedule=self.name,
                    operations=(a, b),
                    transactions=(txn.name,),
                )
        for t, t2 in self._strong_input.pairs():
            for a in self._transactions[t].operations:
                for b in self._transactions[t2].operations:
                    if (a, b) not in self._strong_output:
                        yield ScheduleAxiomError(
                            "3",
                            f"{self.name}: {t} >> {t2} but {a} << {b} "
                            "missing from the strong output order",
                            schedule=self.name,
                            operations=(a, b),
                            transactions=(t, t2),
                        )
        # Axiom 4 (strong ⊆ weak) holds by construction, but re-check so a
        # future refactor cannot silently break it.  Row-wise: one
        # AND-NOT per element instead of a membership test per pair.
        for a, b in self._strong_output.missing_pairs(self._weak_output):
            yield ScheduleAxiomError(
                "4",
                f"{self.name}: {a} << {b} but not {a} < {b}",
                schedule=self.name,
                operations=(a, b),
            )

    # ------------------------------------------------------------------
    # per-schedule conflict consistency (used by SCC / FCC / JCC)
    # ------------------------------------------------------------------
    def serialization_order(self) -> Relation:
        """The serialization (observed) order over ``T_S``: ``t ⇝ t'``
        whenever some operation of ``t`` precedes a conflicting operation
        of ``t'`` in the weak output order."""
        order = Relation(elements=self._transactions)
        for pair in self._conflicts:
            a, b = sorted(pair)
            ta, tb = self._owner_of[a], self._owner_of[b]
            if ta == tb:
                continue
            if (a, b) in self._weak_output:
                order.add(ta, tb)
            if (b, a) in self._weak_output:
                order.add(tb, ta)
        return order

    def is_conflict_consistent(self) -> bool:
        """Conflict consistency of a single schedule: the union of its
        serialization order and its weak input order is acyclic.

        This is the building block of SCC (Def. 22), FCC (Def. 24) and
        JCC (Def. 27); Def. 13 is the front-level generalization.
        """
        return self.consistency_violation() is None

    def consistency_violation(self) -> Optional[List[str]]:
        """A witness cycle for CC failure, or ``None`` if consistent."""
        return self.serialization_order().union(self._weak_input).find_cycle()

    def serializable_total_order(self) -> List[str]:
        """A serial transaction order compatible with the serialization
        and input orders.  Raises :class:`CycleError` when not CC."""
        combined = self.serialization_order().union(self._weak_input)
        return combined.topological_sort()
