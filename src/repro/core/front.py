"""Computational fronts (Def. 12, 13 and 17).

A front is a horizontal cut through the computational forest: a maximal
set of independent nodes (none a descendant of another) together with
the observed order, the generalized conflicts, and the input orders
between its members.  The reduction (Def. 16) walks a chain of fronts
from the leaves (level 0, Def. 15) to the roots (level ``N``).

*Conflict consistency* of a front (Def. 13) — acyclicity of the union of
its observed order and its input orders — generalizes per-schedule
conflict consistency, and *serial* fronts (Def. 17, strong input order
total) are the correctness yardstick of Def. 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.conflicts import conflict_pairs
from repro.core.orders import (
    Relation,
    find_cycle_in_union,
    total_order_relation,
)
from repro.core.system import CompositeSystem


@dataclass
class Front:
    """A level-``i`` computational front.

    Attributes
    ----------
    level:
        The reduction step that produced this front (0 = all leaves).
    nodes:
        The independent node set ``Ô``.
    observed:
        The observed order ``<_o`` restricted to (and transitively
        closed over) the nodes.
    input_weak / input_strong:
        The input orders ``→`` / ``↠`` between front nodes included so
        far (Def. 16 step 6); strong pairs are also weak pairs.
    """

    level: int
    nodes: Tuple[str, ...]
    observed: Relation
    input_weak: Relation
    input_strong: Relation

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        for relation, label in (
            (self.observed, "observed order"),
            (self.input_weak, "weak input order"),
            (self.input_strong, "strong input order"),
        ):
            # Fast path: when every carrier element is a front node, no
            # pair can mention a non-member — O(carrier) instead of a
            # pair scan over the dense closed observed order.
            if all(e in node_set for e in relation.elements):
                continue
            for a, b in relation.pairs():
                if a not in node_set or b not in node_set:
                    raise ValueError(
                        f"front {label} pair ({a}, {b}) mentions a "
                        "non-member node"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def level0(cls, nodes: Tuple[str, ...], observed: Relation) -> "Front":
        """The level-0 front over ``nodes`` with a caller-supplied
        (closed) observed order and the empty input orders Def. 15
        prescribes — no schedule has contributed input orders yet at
        the leaves.  This is the injection point of the streaming
        checker: it maintains the leaf observed order incrementally
        across commits and hands the finished relation to
        :meth:`repro.core.reduction.ReductionEngine.run` via its
        ``level0`` parameter instead of re-closing it from scratch.
        """
        return cls(
            level=0,
            nodes=nodes,
            observed=observed,
            input_weak=Relation(elements=nodes),
            input_strong=Relation(elements=nodes),
        )

    def combined_order(self) -> Relation:
        """``<_o ∪ →`` — the relation Def. 13 requires to be acyclic."""
        return self.observed.union(self.input_weak)

    def is_conflict_consistent(self) -> bool:
        """Def. 13."""
        return self.consistency_violation() is None

    def consistency_violation(self) -> Optional[List[str]]:
        """A witness cycle through ``<_o ∪ →``, or ``None`` when CC.

        Reflexive pairs (which the transitive closure of a cyclic
        observed order contains) are dropped so the witness is the
        underlying multi-node cycle rather than a bare self-loop.  The
        union is traversed virtually (:func:`find_cycle_in_union`) —
        materializing ``<_o ∪ →`` per level dominated the checker's
        profile on dense observed orders.
        """
        return find_cycle_in_union(
            (self.observed, self.input_weak), skip_self_loops=True
        )

    def is_serial(self) -> bool:
        """Def. 17: the strong input order is total over the nodes."""
        return self.input_strong.is_total_over(self.nodes)

    def serialization(self) -> List[str]:
        """A total node order extending ``<_o ∪ →`` (exists iff CC)."""
        return self.combined_order().topological_sort()

    def conflicts(self, system: CompositeSystem) -> Set[FrozenSet[str]]:
        """The generalized-conflict pairs among the front nodes."""
        return conflict_pairs(system, self.observed, self.nodes)

    def as_serial_front(self) -> "Front":
        """The serial front obtained by topologically sorting this front
        (the construction in the Theorem 1 proof): same nodes, strong
        input order = a total order containing ``<_o ∪ →``."""
        order = self.serialization()
        total = total_order_relation(order)
        return Front(
            level=self.level,
            nodes=tuple(order),
            observed=self.observed.copy(),
            input_weak=total.copy(),
            input_strong=total,
        )

    def __repr__(self) -> str:
        return (
            f"Front(level={self.level}, nodes={list(self.nodes)}, "
            f"|obs|={len(self.observed)}, |inp|={len(self.input_weak)})"
        )


@dataclass
class ReductionFailure:
    """Why a level-``i`` front could not be constructed.

    ``stage`` is ``"calculation"`` (Def. 16 step 1 — some level-``i``
    transaction cannot be isolated) or ``"cc"`` (Def. 16 step 6 — the
    reduced front is not conflict consistent).  ``cycle`` is the witness
    cycle in the relevant constraint graph and ``blocked`` names the
    transactions involved when the stage is ``"calculation"``.
    """

    level: int
    stage: str
    cycle: List[str]
    blocked: Tuple[str, ...] = field(default_factory=tuple)
    rejected_front: "Optional[Front]" = None

    def describe(self) -> str:
        path = " -> ".join(self.cycle)
        if self.stage == "calculation":
            who = ", ".join(self.blocked) or "some transaction"
            return (
                f"level {self.level}: no calculation exists for {who} "
                f"(constraint cycle {path})"
            )
        return f"level {self.level}: reduced front is not CC (cycle {path})"
