"""Failure-certificate validation.

When the reduction rejects an execution it returns a witness cycle.
This module re-derives, *from the model alone*, that every edge of that
cycle is a forced constraint — an observed dependency between
generalized-conflicting nodes, an input-order requirement, or an
intra-transaction order.  A validated certificate proves (Theorem 1,
only-if direction) that no serial front can contain the execution: a
serial front's total order would have to embed every edge of the cycle.

The T1 benchmark runs this on every rejected instance; a certificate
that fails to validate would indicate a checker bug, so the validator is
deliberately implemented against the *definitions* (front relations)
rather than by replaying the engine's constraint construction.

The dual direction lives here too: :func:`replay_refutation` *replays*
a statically constructed refutation witness through the real Def.-16
engine (stopping at the witness level), so a CERTIFIED_UNSAFE verdict
of :mod:`repro.lint.safety` is always backed by an actual rejection —
the refuter is sound by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.calculation import grouping_for_level
from repro.core.front import Front
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import ReductionEngine, ReductionResult
from repro.core.system import CompositeSystem
from repro.exceptions import ReductionError


@dataclass
class CertificateCheck:
    """Outcome of validating one rejection certificate."""

    valid: bool
    reasons: List[str]
    edges: List[Tuple[str, str, str]]  # (from, to, justification)

    def __bool__(self) -> bool:
        return self.valid


def _justify_edge(
    system: CompositeSystem,
    front: Front,
    grouping,
    a: str,
    b: str,
) -> str:
    """Return a human-readable justification for the constraint edge
    ``a -> b``, or an empty string when the edge is not forced."""
    if (a, b) in front.observed:
        return "observed order"
    if (a, b) in front.input_strong:
        return "strong input order"
    if (a, b) in front.input_weak:
        return "weak input order"
    parent_a = grouping.representative.get(a, a)
    if parent_a != a and parent_a == grouping.representative.get(b, b):
        schedule = system.schedule(system.schedule_of_transaction(parent_a))
        txn = schedule.transactions[parent_a]
        if txn.weakly_ordered(a, b):
            return f"intra-transaction order of {parent_a}"
    return ""


def replay_refutation(
    system: CompositeSystem,
    level: int,
    options: Optional[ObservedOrderOptions] = None,
    *,
    incremental: bool = True,
) -> ReductionResult:
    """Replay the recorded execution through the reduction up to
    ``level`` (the static refuter's candidate level).

    The call never consults the static prover (no recursion): it is the
    ground truth the refuter validates its witness against.  A
    ``failure`` on the returned result proves the recorded execution is
    not Comp-C (a prefix rejection is a rejection — the full reduction
    stops at the same level); a clean result proves nothing, and the
    caller must keep the cycle as a warning.
    """
    engine = ReductionEngine(
        system,
        options if options is not None else ObservedOrderOptions(),
        incremental=incremental,
    )
    return engine.run(stop_level=min(level, system.order))


def validate_failure_certificate(result: ReductionResult) -> CertificateCheck:
    """Validate the witness cycle of a failed reduction edge by edge."""
    failure = result.failure
    if failure is None:
        raise ReductionError("the reduction succeeded; nothing to validate")
    if not result.fronts:
        return CertificateCheck(False, ["no fronts recorded"], [])

    system = result.system
    front = result.fronts[-1]
    reasons: List[str] = []
    edges: List[Tuple[str, str, str]] = []

    if failure.stage == "cc":
        # The cycle lives in the rejected candidate front's combined order
        # (the engine attaches the candidate precisely for this purpose).
        relation_front = (
            failure.rejected_front if failure.rejected_front is not None else front
        )
        combined = relation_front.combined_order()
        for a, b in zip(failure.cycle, failure.cycle[1:]):
            if (a, b) in combined:
                kind = (
                    "observed order"
                    if (a, b) in relation_front.observed
                    else "input order"
                )
                edges.append((a, b, kind))
            else:
                reasons.append(f"edge {a} -> {b} is not in the front relation")
        return CertificateCheck(not reasons, reasons, edges)

    # stage == "calculation": the cycle mixes nodes and group representatives
    # of the front preceding the failed level.
    grouping = grouping_for_level(system, front.nodes, failure.level)

    def expandable(node: str) -> List[str]:
        return grouping.groups.get(node, [node])

    for qa, qb in zip(failure.cycle, failure.cycle[1:]):
        justification = ""
        witness = ("", "")
        for a in expandable(qa):
            for b in expandable(qb):
                justification = _justify_edge(system, front, grouping, a, b)
                if justification:
                    witness = (a, b)
                    break
            if justification:
                break
        if justification:
            edges.append((witness[0], witness[1], justification))
        else:
            reasons.append(
                f"quotient edge {qa} -> {qb} has no forced witness pair"
            )
    return CertificateCheck(not reasons, reasons, edges)
