"""The level-by-level reduction (Def. 15–16) and Theorem 1.

Starting from the level-0 front (all leaves), each step ``i``:

1. checks that every level-``i`` transaction admits a *calculation*
   (Def. 14) in some legal re-ordering of the front — the quotient
   acyclicity test of :mod:`repro.core.calculation`;
2. replaces the operations of each level-``i`` transaction by the
   transaction itself (the reduction step);
3. pulls the observed order up (Def. 10) and re-seeds it from schedule
   output orders that have become visible;
4. drops relations internal to reduced transactions;
5. keeps root transactions in the front (they are their own parent, so
   they are simply never grouped);
6. includes the input orders of the level-``i`` schedules and checks the
   new front is conflict consistent (Def. 13).

By Theorem 1, the composite execution is Comp-C **iff** all ``N`` steps
succeed.  On failure the engine returns a
:class:`repro.core.front.ReductionFailure` carrying a witness cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.calculation import (
    calculation_constraints,
    find_isolation_failure,
    grouping_for_level,
    witness_sequence,
)
from repro.core.front import Front, ReductionFailure
from repro.core.observed import (
    ObservedOrderOptions,
    pull_up,
    seed_observed_pairs,
)
from repro.core.orders import Relation
from repro.core.system import CompositeSystem
from repro.exceptions import ReductionError


@dataclass
class ReductionResult:
    """The outcome of running the reduction on a composite system.

    ``fronts`` holds every successfully constructed front, level 0
    upward.  When ``failure`` is ``None`` the last front is the level-N
    front over the root transactions and the execution is Comp-C
    (Theorem 1).
    """

    system: CompositeSystem
    options: ObservedOrderOptions
    fronts: List[Front] = field(default_factory=list)
    failure: Optional[ReductionFailure] = None
    witnesses: List[List[str]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.failure is None

    @property
    def final_front(self) -> Front:
        if not self.fronts:
            raise ReductionError("reduction produced no fronts")
        return self.fronts[-1]

    def serial_order(self) -> List[str]:
        """A serial order of the root transactions witnessing correctness
        (Theorem 1's topological sort).  Raises when the reduction failed."""
        if not self.succeeded:
            raise ReductionError(
                "no serial order: the reduction failed "
                f"({self.failure.describe()})"
            )
        return self.final_front.serialization()

    def narrative(self) -> str:
        """A human-readable account of the whole reduction, front by
        front — the format the examples and the F3/F4 benchmarks print."""
        lines: List[str] = []
        for front in self.fronts:
            lines.append(
                f"level {front.level} front: "
                f"{{{', '.join(front.nodes)}}}"
            )
            obs = ", ".join(f"{a}<{b}" for a, b in front.observed.pairs())
            lines.append(f"  observed order: {obs or '(empty)'}")
            inp = ", ".join(f"{a}->{b}" for a, b in front.input_weak.pairs())
            lines.append(f"  input orders:   {inp or '(empty)'}")
        if self.failure is not None:
            lines.append(f"REJECTED -- {self.failure.describe()}")
        else:
            lines.append(
                "ACCEPTED -- serial witness: "
                + " << ".join(self.serial_order())
            )
        return "\n".join(lines)


class ReductionEngine:
    """Runs Def. 16 on one composite system."""

    def __init__(
        self,
        system: CompositeSystem,
        options: ObservedOrderOptions = ObservedOrderOptions(),
    ) -> None:
        self.system = system
        self.options = options

    # ------------------------------------------------------------------
    def level0_front(self) -> Front:
        """Def. 15: the (unique) front over all leaves."""
        leaves = tuple(self.system.leaves)
        observed = Relation(elements=leaves)
        observed.add_all(
            seed_observed_pairs(self.system, leaves, self.options)
        )
        return Front(
            level=0,
            nodes=leaves,
            observed=observed.transitive_closure(),
            input_weak=Relation(elements=leaves),
            input_strong=Relation(elements=leaves),
        )

    def next_front(
        self,
        front: Front,
        *,
        _prepared: "Optional[tuple]" = None,
    ) -> Union[Front, ReductionFailure]:
        """One reduction step: construct the level-``i+1`` front, or
        explain why none exists.

        ``_prepared`` lets :meth:`run` pass an already-computed
        ``(grouping, constraints)`` pair so the witness extraction and
        the step share the work.
        """
        level = front.level + 1
        system = self.system
        if _prepared is None:
            self._check_materialization(front, level)
            grouping = grouping_for_level(system, front.nodes, level)
            constraints = calculation_constraints(system, front, grouping)
        else:
            grouping, constraints = _prepared
        failure = find_isolation_failure(constraints, grouping)
        if failure is not None:
            return failure

        new_nodes = grouping.new_nodes(front.nodes)
        # A level-i transaction with no operations is grouped from
        # nothing, but it still becomes a front node (Def. 16 step 2 —
        # its calculation is the empty sequence, trivially isolated).
        present = set(new_nodes)
        empties = tuple(
            tname
            for sname in system.schedules_at_level(level)
            for tname in system.schedule(sname).transaction_names
            if tname not in present
        )
        new_nodes = new_nodes + empties
        observed = pull_up(system, front.observed, grouping.rep, self.options)
        for node in new_nodes:
            observed.add_element(node)
        observed.add_all(
            seed_observed_pairs(system, new_nodes, self.options)
        )
        observed = observed.transitive_closure()

        input_weak = front.input_weak.restricted_to(new_nodes)
        input_strong = front.input_strong.restricted_to(new_nodes)
        for node in new_nodes:
            input_weak.add_element(node)
            input_strong.add_element(node)
        for sname in system.schedules_at_level(level):
            schedule = system.schedule(sname)
            input_weak.add_all(schedule.weak_input.pairs())
            input_strong.add_all(schedule.strong_input.pairs())

        candidate = Front(
            level=level,
            nodes=new_nodes,
            observed=observed,
            input_weak=input_weak.transitive_closure(),
            input_strong=input_strong.transitive_closure(),
        )
        cycle = candidate.consistency_violation()
        if cycle is not None:
            return ReductionFailure(
                level=level, stage="cc", cycle=cycle, rejected_front=candidate
            )
        return candidate

    def _check_materialization(self, front: Front, level: int) -> None:
        """Engine invariant: every operation of every level-``level``
        transaction must already be a front node."""
        members = set(front.nodes)
        for sname in self.system.schedules_at_level(level):
            for tname in self.system.schedule(sname).transaction_names:
                for op in self.system.children(tname):
                    if op not in members:
                        raise ReductionError(
                            f"operation {op!r} of level-{level} transaction "
                            f"{tname!r} is not in the level-{front.level} "
                            "front — reduction invariant broken"
                        )

    # ------------------------------------------------------------------
    def run(self, *, stop_level: Optional[int] = None) -> ReductionResult:
        """Run the reduction up to ``stop_level`` (default: the system
        order ``N``, i.e. all the way to the roots)."""
        target = self.system.order if stop_level is None else stop_level
        if target > self.system.order:
            raise ReductionError(
                f"requested level {target} exceeds the system order "
                f"{self.system.order}"
            )
        result = ReductionResult(system=self.system, options=self.options)
        front = self.level0_front()
        cycle = front.consistency_violation()
        if cycle is not None:
            result.failure = ReductionFailure(level=0, stage="cc", cycle=cycle)
            return result
        result.fronts.append(front)
        while front.level < target:
            self._check_materialization(front, front.level + 1)
            grouping = grouping_for_level(
                self.system, front.nodes, front.level + 1
            )
            constraints = calculation_constraints(self.system, front, grouping)
            outcome = self.next_front(front, _prepared=(grouping, constraints))
            if isinstance(outcome, ReductionFailure):
                result.failure = outcome
                return result
            result.witnesses.append(
                witness_sequence(constraints, grouping, front.nodes)
            )
            front = outcome
            result.fronts.append(front)
        if target == self.system.order and result.succeeded:
            expected = set(self.system.roots)
            if set(front.nodes) != expected:  # pragma: no cover - invariant
                raise ReductionError(
                    "level-N front is not the root set: "
                    f"{set(front.nodes)} != {expected}"
                )
        return result


def reduce_to_roots(
    system: CompositeSystem,
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> ReductionResult:
    """Run the full reduction (Theorem 1 decision procedure)."""
    return ReductionEngine(system, options).run()
