"""The level-by-level reduction (Def. 15–16) and Theorem 1.

Starting from the level-0 front (all leaves), each step ``i``:

1. checks that every level-``i`` transaction admits a *calculation*
   (Def. 14) in some legal re-ordering of the front — the quotient
   acyclicity test of :mod:`repro.core.calculation`;
2. replaces the operations of each level-``i`` transaction by the
   transaction itself (the reduction step);
3. pulls the observed order up (Def. 10) and re-seeds it from schedule
   output orders that have become visible;
4. drops relations internal to reduced transactions;
5. keeps root transactions in the front (they are their own parent, so
   they are simply never grouped);
6. includes the input orders of the level-``i`` schedules and checks the
   new front is conflict consistent (Def. 13).

By Theorem 1, the composite execution is Comp-C **iff** all ``N`` steps
succeed.  On failure the engine returns a
:class:`repro.core.front.ReductionFailure` carrying a witness cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.core.calculation import (
    calculation_constraints,
    find_isolation_failure,
    grouping_for_level,
    witness_sequence,
)
from repro.core.front import Front, ReductionFailure
from repro.core.observed import (
    ObservedOrderOptions,
    carried_restriction,
    group_by_schedule,
    pull_up,
    pull_up_delta,
    schedule_seed_pairs,
    seed_observed_pairs,
)
from repro.core.orders import Relation, closure_counters
from repro.core.system import CompositeSystem
from repro.exceptions import ReductionError
from repro.obs.telemetry import Span, Telemetry, current

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- lint)
    from repro.lint.safety import StaticSafetyReport


@dataclass
class LevelProfile:
    """Cost accounting for one reduction step (``check --profile``).

    ``closure_calls`` / ``closure_rows`` are deltas of the module-level
    counters in :mod:`repro.core.orders`: how many closure invocations
    the step made and how many bitset rows they actually (re)computed —
    the from-scratch path recomputes every row at every level, the
    incremental path only the rows whose reachability changed.
    """

    level: int
    seconds: float
    closure_calls: int
    closure_rows: int
    nodes: int
    observed_pairs: int
    #: the level was never executed — the static precheck certified the
    #: whole system Comp-C and the reduction was skipped
    skipped: bool = False


@dataclass
class ReductionResult:
    """The outcome of running the reduction on a composite system.

    ``fronts`` holds every successfully constructed front, level 0
    upward.  When ``failure`` is ``None`` the last front is the level-N
    front over the root transactions and the execution is Comp-C
    (Theorem 1).
    """

    system: CompositeSystem
    options: ObservedOrderOptions
    fronts: List[Front] = field(default_factory=list)
    failure: Optional[ReductionFailure] = None
    witnesses: List[List[str]] = field(default_factory=list)
    #: per-level cost accounting, filled in by :meth:`ReductionEngine.run`
    #: (empty when the fronts were built by direct ``next_front`` calls)
    profile: List[LevelProfile] = field(default_factory=list)
    #: the static safety prover's report when ``run(static_precheck=True)``
    #: consulted it — certified or not; ``None`` when no precheck ran
    static_certificate: "Optional[StaticSafetyReport]" = None

    @property
    def succeeded(self) -> bool:
        return self.failure is None

    @property
    def skipped_by_precheck(self) -> bool:
        """True when the verdict came from the static certificate alone
        (no fronts were constructed)."""
        return (
            self.static_certificate is not None
            and self.static_certificate.certified
            and not self.fronts
        )

    @property
    def skipped_by_refutation(self) -> bool:
        """True when the rejection came from the static refuter's
        replay-validated witness (no fronts were constructed here —
        the refuter already replayed the failing prefix)."""
        return (
            self.static_certificate is not None
            and self.static_certificate.refuted
            and not self.fronts
        )

    def profile_totals(self) -> Dict[str, float]:
        """Aggregate the per-level profile (zeroes when not profiled)."""
        return {
            "seconds": sum(p.seconds for p in self.profile),
            "closure_calls": sum(p.closure_calls for p in self.profile),
            "closure_rows": sum(p.closure_rows for p in self.profile),
        }

    @property
    def final_front(self) -> Front:
        if not self.fronts:
            raise ReductionError("reduction produced no fronts")
        return self.fronts[-1]

    def serial_order(self) -> List[str]:
        """A serial order of the root transactions witnessing correctness
        (Theorem 1's topological sort).  Raises when the reduction failed."""
        if not self.succeeded:
            raise ReductionError(
                "no serial order: the reduction failed "
                f"({self.failure.describe()})"
            )
        if self.skipped_by_precheck:
            raise ReductionError(
                "no serial order was computed: the static precheck "
                "certified the system and the reduction was skipped "
                "(re-run without static_precheck for a witness)"
            )
        return self.final_front.serialization()

    def narrative(self) -> str:
        """A human-readable account of the whole reduction, front by
        front — the format the examples and the F3/F4 benchmarks print."""
        lines: List[str] = []
        if self.skipped_by_precheck:
            return (
                "reduction skipped -- "
                + self.static_certificate.summary()
                + "\nACCEPTED -- statically certified Comp-C"
            )
        if self.skipped_by_refutation:
            return (
                "reduction skipped -- "
                + self.static_certificate.summary()
                + "\nREJECTED -- statically refuted "
                "(replay-validated witness)"
            )
        for front in self.fronts:
            lines.append(
                f"level {front.level} front: "
                f"{{{', '.join(front.nodes)}}}"
            )
            obs = ", ".join(f"{a}<{b}" for a, b in front.observed.pairs())
            lines.append(f"  observed order: {obs or '(empty)'}")
            inp = ", ".join(f"{a}->{b}" for a, b in front.input_weak.pairs())
            lines.append(f"  input orders:   {inp or '(empty)'}")
        if self.failure is not None:
            lines.append(f"REJECTED -- {self.failure.describe()}")
        else:
            lines.append(
                "ACCEPTED -- serial witness: "
                + " << ".join(self.serial_order())
            )
        return "\n".join(lines)


class ReductionEngine:
    """Runs Def. 16 on one composite system.

    ``incremental`` (the default) reuses each front's already-closed
    relations: the next observed order is the closed restriction to the
    carried nodes plus a :meth:`~repro.core.orders.Relation.delta_closure`
    over the rewritten pull-up pairs and the level's seeds, and the input
    orders are closed restrictions (restriction preserves closedness)
    plus the level's schedule input pairs as a delta.  Per-schedule seed
    pairs are memoized across levels.  ``incremental=False`` keeps the
    original from-scratch closure per level — bit-identical verdicts,
    used as the baseline by the P2 benchmark and the equivalence tests.
    """

    def __init__(
        self,
        system: CompositeSystem,
        options: ObservedOrderOptions = ObservedOrderOptions(),
        *,
        incremental: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.system = system
        self.options = options
        self.incremental = incremental
        #: explicit sink; ``None`` resolves to the ambient
        #: :func:`repro.obs.telemetry.current` at each ``run()``
        self.telemetry = telemetry
        #: (schedule, members) -> seed pairs; see ``schedule_seed_pairs``
        self._seed_cache: Dict[
            Tuple[str, Tuple[str, ...]], Tuple[Tuple[str, str], ...]
        ] = {}

    # ------------------------------------------------------------------
    def _tele(self) -> Telemetry:
        """The engine's sink: explicit if given, else the ambient one."""
        return self.telemetry if self.telemetry is not None else current()

    # ------------------------------------------------------------------
    @staticmethod
    def _close_with_delta(
        base: Relation,
        delta: List[Tuple[str, str]],
        *,
        kind: str = "observed",
    ) -> Relation:
        """Close ``base ∪ delta`` given an already-closed ``base``.

        Hybrid dispatch: per-edge in-place delta closure wins while the
        delta is no bigger than the carried closed base (carry-heavy
        levels — DAGs, mixed heights, persisting roots), but degenerates
        when new pairs swamp the carried ones, where the word-packed
        from-scratch closure is far cheaper.  The crossover was measured
        on the P2 workloads (deep stacks, dags and trees, serial
        layouts).  Both branches compute the same relation, so verdicts
        and printed fronts do not depend on the dispatch.

        ``kind`` labels the call site (``observed`` / ``input-weak`` /
        ``input-strong``); the engine ignores it, but the P2 closure-path
        measurement hooks this method and uses the label to isolate the
        observed-order maintenance (Def. 10.4) from input bookkeeping.
        """
        if len(delta) <= max(16, len(base)):
            base.add_closed(delta)
            return base
        base.add_all(delta)
        return base.transitive_closure()

    def _seeds(
        self,
        nodes: Tuple[str, ...],
        *,
        covered: "Optional[set]" = None,
    ) -> List[Tuple[str, str]]:
        """Seed pairs for ``nodes``, memoized per (schedule, members).

        Front nodes persist across levels (roots stay until the end), so
        without the cache every level redoes the full O(members²)
        conflict scan for every schedule that merely carried its members
        over.  ``covered`` marks nodes carried from the previous front:
        a schedule whose members are all covered re-contributes pairs
        that the previous level already seeded and closed in — pairs
        between two carried nodes survive the carried restriction — so
        the whole schedule is skipped.
        """
        out: List[Tuple[str, str]] = []
        for sname, members in group_by_schedule(self.system, nodes).items():
            if covered is not None and all(m in covered for m in members):
                continue  # already closed into the carried base
            key = (sname, tuple(members))
            cached = self._seed_cache.get(key)
            if cached is None:
                cached = schedule_seed_pairs(
                    self.system, sname, members, self.options
                )
                self._seed_cache[key] = cached
            out.extend(cached)
        return out

    def level0_front(self) -> Front:
        """Def. 15: the (unique) front over all leaves."""
        leaves = tuple(self.system.leaves)
        observed = Relation(elements=leaves)
        if self.incremental:
            observed.add_all(self._seeds(leaves))
        else:
            observed.add_all(
                seed_observed_pairs(self.system, leaves, self.options)
            )
        return Front(
            level=0,
            nodes=leaves,
            observed=observed.transitive_closure(),
            input_weak=Relation(elements=leaves),
            input_strong=Relation(elements=leaves),
        )

    def next_front(
        self,
        front: Front,
        *,
        _prepared: "Optional[tuple]" = None,
    ) -> Union[Front, ReductionFailure]:
        """One reduction step: construct the level-``i+1`` front, or
        explain why none exists.

        ``_prepared`` lets :meth:`run` pass an already-computed
        ``(grouping, constraints)`` pair so the witness extraction and
        the step share the work.
        """
        level = front.level + 1
        system = self.system
        tele = self._tele()
        if _prepared is None:
            self._check_materialization(front, level)
            grouping = grouping_for_level(system, front.nodes, level)
            constraints = calculation_constraints(system, front, grouping)
        else:
            grouping, constraints = _prepared
        failure = find_isolation_failure(constraints, grouping)
        if failure is not None:
            tele.count("reduce.isolation_reject")
            return failure

        new_nodes = grouping.new_nodes(front.nodes)
        # A level-i transaction with no operations is grouped from
        # nothing, but it still becomes a front node (Def. 16 step 2 —
        # its calculation is the empty sequence, trivially isolated).
        present = set(new_nodes)
        empties = tuple(
            tname
            for sname in system.schedules_at_level(level)
            for tname in system.schedule(sname).transaction_names
            if tname not in present
        )
        new_nodes = new_nodes + empties
        rep = grouping.rep
        if self.incremental:
            # The carried part of the pull-up (pairs between two ungrouped
            # nodes) is exactly front.observed restricted to those nodes —
            # and a restriction of a closed relation is closed, so it
            # serves as the delta-closure base.  Everything else (the
            # rewritten, Def.-10-gated pairs, plus this level's seeds) is
            # the delta.
            grouped = frozenset(
                n for n in front.observed.elements if rep(n) != n
            )
            observed = carried_restriction(front.observed, rep, grouped)
            for node in new_nodes:
                observed.add_element(node)
            delta = pull_up_delta(
                system, front.observed, rep, self.options, grouped=grouped
            )
            carried = set(front.observed.elements) - grouped
            delta.extend(self._seeds(new_nodes, covered=carried))
            observed = self._close_with_delta(observed, delta, kind="observed")
        else:
            observed = pull_up(system, front.observed, rep, self.options)
            for node in new_nodes:
                observed.add_element(node)
            observed.add_all(
                seed_observed_pairs(system, new_nodes, self.options)
            )
            observed = observed.transitive_closure()

        input_weak = front.input_weak.restricted_to(new_nodes)
        input_strong = front.input_strong.restricted_to(new_nodes)
        for node in new_nodes:
            input_weak.add_element(node)
            input_strong.add_element(node)
        weak_delta: List[Tuple[str, str]] = []
        strong_delta: List[Tuple[str, str]] = []
        for sname in system.schedules_at_level(level):
            schedule = system.schedule(sname)
            weak_delta.extend(schedule.weak_input.pairs())
            strong_delta.extend(schedule.strong_input.pairs())
        if self.incremental:
            # front.input_* are closed (engine invariant), and restriction
            # preserves closedness — only the new schedules' input pairs
            # need propagating.
            input_weak = self._close_with_delta(
                input_weak, weak_delta, kind="input-weak"
            )
            input_strong = self._close_with_delta(
                input_strong, strong_delta, kind="input-strong"
            )
        else:
            input_weak.add_all(weak_delta)
            input_strong.add_all(strong_delta)
            input_weak = input_weak.transitive_closure()
            input_strong = input_strong.transitive_closure()

        candidate = Front(
            level=level,
            nodes=new_nodes,
            observed=observed,
            input_weak=input_weak,
            input_strong=input_strong,
        )
        tele.count("reduce.cc_check")
        cycle = candidate.consistency_violation()
        if cycle is not None:
            tele.count("reduce.cc_reject")
            return ReductionFailure(
                level=level, stage="cc", cycle=cycle, rejected_front=candidate
            )
        return candidate

    def _check_materialization(self, front: Front, level: int) -> None:
        """Engine invariant: every operation of every level-``level``
        transaction must already be a front node."""
        members = set(front.nodes)
        for sname in self.system.schedules_at_level(level):
            for tname in self.system.schedule(sname).transaction_names:
                for op in self.system.children(tname):
                    if op not in members:
                        raise ReductionError(
                            f"operation {op!r} of level-{level} transaction "
                            f"{tname!r} is not in the level-{front.level} "
                            "front — reduction invariant broken"
                        )

    # ------------------------------------------------------------------
    def _note_level(
        self, span: Span, front: Front, before: Dict[str, int]
    ) -> None:
        """Attach the level's cost fields to its telemetry span (called
        inside the span, before the exit event is emitted)."""
        after = closure_counters()
        span.note(
            closure_calls=after["calls"] - before["calls"],
            closure_rows=after["rows"] - before["rows"],
            nodes=len(front.nodes),
            observed_pairs=len(front.observed),
        )

    def _record_level(
        self,
        result: ReductionResult,
        front: Front,
        span: Span,
    ) -> None:
        """Fill one :class:`LevelProfile` row from the finished span's
        duration and the cost fields noted by :meth:`_note_level`."""
        notes = span.notes
        result.profile.append(
            LevelProfile(
                level=front.level,
                seconds=span.seconds,
                closure_calls=int(notes.get("closure_calls", 0)),
                closure_rows=int(notes.get("closure_rows", 0)),
                nodes=len(front.nodes),
                observed_pairs=len(front.observed),
            )
        )

    def _record_failure(
        self,
        result: ReductionResult,
        failure: ReductionFailure,
        span: Span,
    ) -> ReductionResult:
        if failure.rejected_front is not None:
            self._record_level(result, failure.rejected_front, span)
        result.failure = failure
        return result

    def run(
        self,
        *,
        stop_level: Optional[int] = None,
        static_precheck: bool = False,
        level0: Optional[Front] = None,
    ) -> ReductionResult:
        """Run the reduction up to ``stop_level`` (default: the system
        order ``N``, i.e. all the way to the roots).

        ``level0`` injects a pre-built level-0 front instead of calling
        :meth:`level0_front` — the streaming checker maintains the leaf
        observed order across commits with
        :meth:`~repro.core.orders.Relation.add_closed` deltas and feeds
        it here, skipping the from-scratch seed-and-close step that
        dominates the per-commit cost.  The injected front must cover
        exactly the system's leaves with a transitively closed observed
        order; the usual conflict-consistency check still runs on it,
        so verdicts cannot depend on the caller's maintenance being
        trusted.

        ``static_precheck`` consults the two-sided static analysis of
        :mod:`repro.lint.safety` first and skips the reduction in
        *either* certified direction: CERTIFIED_SAFE means no front is
        constructed at all; CERTIFIED_UNSAFE means the refuter already
        replayed the recorded execution to a rejection, and the result
        carries that failure reconstructed from the witness.  Either
        way the result holds the certificate, an empty front list, and
        one ``skipped`` profile row accounting the analysis cost.  When
        the analysis is UNKNOWN (or declined), the full reduction runs
        as usual (with the report attached for observability); verdicts
        are identical in all cases because both certificate directions
        are sound.
        """
        result = ReductionResult(system=self.system, options=self.options)
        tele = self._tele()
        if static_precheck and stop_level is None:
            # Local import: lint builds on core, so core only reaches
            # back lazily and only when the feature is requested.
            from repro.lint.safety import prove_static_safety

            with tele.span("reduce.precheck") as span:
                certificate = prove_static_safety(self.system, self.options)
                span.note(verdict=str(certificate.verdict))
            result.static_certificate = certificate
            if certificate.certified or certificate.refuted:
                if certificate.certified:
                    tele.count("reduce.precheck_skip")
                else:
                    tele.count("reduce.refute_skip")
                    witness = certificate.refutation
                    assert witness is not None  # refuted implies witness
                    result.failure = ReductionFailure(
                        level=int(witness.failure["level"]),  # type: ignore[arg-type]
                        stage=str(witness.failure["stage"]),
                        cycle=list(witness.failure["cycle"]),  # type: ignore[arg-type]
                        blocked=tuple(witness.failure["blocked"]),  # type: ignore[arg-type]
                    )
                result.profile.append(
                    LevelProfile(
                        level=0,
                        seconds=span.seconds,
                        closure_calls=0,
                        closure_rows=0,
                        nodes=len(self.system.leaves),
                        observed_pairs=0,
                        skipped=True,
                    )
                )
                return result
        target = self.system.order if stop_level is None else stop_level
        if target > self.system.order:
            raise ReductionError(
                f"requested level {target} exceeds the system order "
                f"{self.system.order}"
            )
        with tele.span("reduce.level", level=0) as span:
            before = closure_counters()
            if level0 is None:
                front = self.level0_front()
            else:
                if level0.level != 0:
                    raise ReductionError(
                        f"injected front has level {level0.level}, "
                        "expected 0"
                    )
                if set(level0.nodes) != set(self.system.leaves):
                    raise ReductionError(
                        "injected level-0 front does not cover the "
                        "system's leaves"
                    )
                front = level0
            tele.count("reduce.cc_check")
            cycle = front.consistency_violation()
            self._note_level(span, front, before)
        self._record_level(result, front, span)
        if cycle is not None:
            tele.count("reduce.cc_reject")
            result.failure = ReductionFailure(level=0, stage="cc", cycle=cycle)
            return result
        result.fronts.append(front)
        while front.level < target:
            with tele.span("reduce.level", level=front.level + 1) as span:
                before = closure_counters()
                self._check_materialization(front, front.level + 1)
                grouping = grouping_for_level(
                    self.system, front.nodes, front.level + 1
                )
                constraints = calculation_constraints(
                    self.system, front, grouping
                )
                outcome = self.next_front(
                    front, _prepared=(grouping, constraints)
                )
                shown = (
                    outcome.rejected_front
                    if isinstance(outcome, ReductionFailure)
                    else outcome
                )
                if shown is not None:
                    self._note_level(span, shown, before)
            if isinstance(outcome, ReductionFailure):
                return self._record_failure(result, outcome, span)
            result.witnesses.append(
                witness_sequence(constraints, grouping, front.nodes)
            )
            front = outcome
            self._record_level(result, front, span)
            result.fronts.append(front)
        if target == self.system.order and result.succeeded:
            expected = set(self.system.roots)
            if set(front.nodes) != expected:  # pragma: no cover - invariant
                raise ReductionError(
                    "level-N front is not the root set: "
                    f"{set(front.nodes)} != {expected}"
                )
        return result


def reduce_to_roots(
    system: CompositeSystem,
    options: ObservedOrderOptions = ObservedOrderOptions(),
    *,
    incremental: bool = True,
    static_precheck: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> ReductionResult:
    """Run the full reduction (Theorem 1 decision procedure)."""
    return ReductionEngine(
        system, options, incremental=incremental, telemetry=telemetry
    ).run(static_precheck=static_precheck)
