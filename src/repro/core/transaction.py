"""Transactions (Def. 2 of the paper).

A transaction is a triple ``(O_t, ≺_t, ≪_t)``: a finite set of
operations together with a weak and a strong intra-transaction order,
with ``≪_t ⊆ ≺_t``.  Operation names are plain strings; whether a name
denotes an elementary (leaf) operation or a subtransaction executed by
another schedule is a property of the *composite system* (Def. 4), not
of the transaction itself — the same ``Transaction`` object works in
both roles.

Strong intra-order means strict temporal sequencing ("must complete
before the next starts"); weak intra-order means the *net effect* must
be as if sequential (data flows in order), which still admits concurrent
execution of non-conflicting pieces (Def. 1).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.core.orders import Relation
from repro.exceptions import CycleError, ModelError


class Transaction:
    """An immutable Def.-2 transaction.

    Parameters
    ----------
    name:
        Globally unique transaction name.
    operations:
        The operation names of ``O_t`` (order of mention is kept for
        display but carries no semantics).
    weak_order:
        Pairs ``(a, b)`` asserting ``a ≺_t b``.
    strong_order:
        Pairs ``(a, b)`` asserting ``a ≪_t b``.  Automatically included
        in the weak order (the paper requires ``≪_t ⊆ ≺_t``).
    sequential:
        Convenience flag: when true, the mention order of ``operations``
        becomes a total *strong* order (a fully sequential program).
    """

    __slots__ = ("name", "_operations", "_weak", "_strong")

    def __init__(
        self,
        name: str,
        operations: Sequence[str],
        weak_order: Iterable[Tuple[str, str]] = (),
        strong_order: Iterable[Tuple[str, str]] = (),
        *,
        sequential: bool = False,
    ) -> None:
        if not name:
            raise ModelError("transaction name must be non-empty")
        ops = tuple(operations)
        if len(set(ops)) != len(ops):
            raise ModelError(f"transaction {name!r} lists duplicate operations")
        if name in ops:
            raise ModelError(f"transaction {name!r} cannot contain itself")
        self.name = name
        self._operations = ops

        strong = Relation(elements=ops)
        if sequential:
            for earlier, later in zip(ops, ops[1:]):
                strong.add(earlier, later)
        for a, b in strong_order:
            self._require_member(a)
            self._require_member(b)
            strong.add(a, b)

        weak = strong.copy()
        for a, b in weak_order:
            self._require_member(a)
            self._require_member(b)
            weak.add(a, b)

        weak = weak.transitive_closure()
        strong = strong.transitive_closure()
        cycle = weak.find_cycle()
        if cycle is not None:
            raise CycleError(
                f"intra-transaction order of {name!r} is cyclic", cycle
            )
        self._weak = weak
        self._strong = strong

    def _require_member(self, op: str) -> None:
        if op not in self._operations:
            raise ModelError(
                f"operation {op!r} ordered by transaction {self.name!r} "
                "but not in its operation set"
            )

    # ------------------------------------------------------------------
    @property
    def operations(self) -> Tuple[str, ...]:
        """``O_t`` in mention order."""
        return self._operations

    @property
    def weak_order(self) -> Relation:
        """``≺_t``, transitively closed."""
        return self._weak

    @property
    def strong_order(self) -> Relation:
        """``≪_t``, transitively closed (always ``⊆ weak_order``)."""
        return self._strong

    def weakly_ordered(self, a: str, b: str) -> bool:
        """True iff ``a ≺_t b``."""
        return (a, b) in self._weak

    def strongly_ordered(self, a: str, b: str) -> bool:
        """True iff ``a ≪_t b``."""
        return (a, b) in self._strong

    def is_sequential(self) -> bool:
        """True iff the strong order is total over the operations."""
        return self._strong.is_total_over(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __repr__(self) -> str:
        return f"Transaction({self.name!r}, ops={list(self._operations)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return (
            self.name == other.name
            and self._operations == other._operations
            and self._weak == other._weak
            and self._strong == other._strong
        )

    def __hash__(self) -> int:
        return hash((self.name, self._operations))
