"""The observed order ``<_o`` (Def. 10).

The observed order is the device that relates transactions which share
no schedule: execution dependencies observed at lower levels are pulled
up the execution trees until they meet.  Its rules:

1. leaf atomicity — the order a schedule gives its operations is
   observed (Def. 10.1);
2. conflicting, ordered operations of one schedule induce an observed
   order between their *parents* (Def. 10.2);
3. an observed pair whose endpoints are **not** operations of a common
   schedule propagates to the parents unconditionally (Def. 10.3) —
   but when the endpoints *are* operations of a common schedule that
   declares them non-conflicting, the pair is **forgotten**: that
   schedule knows the operations commute, and its knowledge overrides
   orders incidental at lower levels (the §3.7 "forgotten orders" step);
4. transitive closure (Def. 10.4).

Operational notes (documented in DESIGN.md §2.1):

* Seeding is conflict-gated: a schedule's ordered pair enters the
  observed order when the operations conflict there.  Def. 15/16
  quantify over re-orderings of commuting pairs (the front ``F**``), so
  an ordered-but-commuting pair is not a *fact* worth recording; the
  ``seed_leaf_order`` option restores the verbatim Def.-10.1 reading
  (every ordered leaf pair) for the A1 ablation benchmark.
* Pull-up happens stepwise: grouping ``a`` into its parent rewrites the
  pair ``(a, b)`` to ``(parent(a), b)``; when ``b`` is grouped later the
  pair becomes ``(parent(a), parent(b))``, with the Def.-10.2/10.3 gate
  (inspecting the pre-rewrite endpoints) applied at each step.
  Composing the rewrites yields exactly the Def.-10 pairs.
* Whether an observed pair *constrains* a calculation is a separate
  question answered by the generalized conflict relation (Def. 11) in
  :mod:`repro.core.calculation` — commuting same-schedule pairs sit in
  the observed order (transitivity needs them) without restricting the
  re-ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

from repro.core.orders import Relation
from repro.core.system import CompositeSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule import Schedule


@dataclass(frozen=True)
class ObservedOrderOptions:
    """Tuning knobs for the observed-order engine.

    ``forget_nonconflicting``
        Apply the §3.7 forgetting rule (Def. 10.2 gate).  Disabling it
        propagates every pulled-up pair, making the criterion strictly
        more conservative — the A1 ablation measures the cost.
    ``seed_leaf_order``
        Seed observed pairs from *all* ordered leaf pairs rather than
        only conflicting ones (the verbatim Def. 10.1 reading; see the
        module docstring for why the default restricts to conflicts).
    """

    forget_nonconflicting: bool = True
    seed_leaf_order: bool = False


def seed_observed_pairs(
    system: CompositeSystem,
    nodes: Iterable[str],
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> Iterator[Tuple[str, str]]:
    """Observed pairs among ``nodes`` sourced from schedule output orders.

    For every pair of nodes that are operations of a common schedule
    ``S`` and ordered by ``S``'s weak output order, the pair is observed
    when the operations conflict under ``CON_S`` (or, with
    ``seed_leaf_order``, when either endpoint is a leaf — Def. 10.1).
    """
    for sname, members in group_by_schedule(system, nodes).items():
        yield from schedule_seed_pairs(system, sname, members, options)


def group_by_schedule(
    system: CompositeSystem, nodes: Iterable[str]
) -> "dict[str, List[str]]":
    """Group front nodes by their owning schedule, insertion-ordered."""
    by_schedule: dict = {}
    for node in nodes:
        owner = system.schedule_of_operation(node)
        if owner is not None:
            by_schedule.setdefault(owner, []).append(node)
    return by_schedule


def schedule_seed_pairs(
    system: CompositeSystem,
    sname: str,
    members: Sequence[str],
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> Tuple[Tuple[str, str], ...]:
    """The seed pairs one schedule contributes for ``members``.

    This is the cacheable unit behind :func:`seed_observed_pairs`: the
    result depends only on ``(sname, members, options)``, so the
    reduction engine memoizes it per schedule across levels (a schedule
    whose member set did not change between fronts re-contributes the
    same — already closed-in — pairs).
    """
    schedule = system.schedule(sname)
    output = schedule.weak_output
    out: List[Tuple[str, str]] = []
    if options.seed_leaf_order:
        # The ablation path forces pairs by leaf-ness too, so every
        # member pair is a candidate — keep the quadratic scan.
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                forced = schedule.conflicting(a, b)
                if not forced:
                    forced = system.is_leaf(a) or system.is_leaf(b)
                if not forced:
                    continue
                if (a, b) in output:
                    out.append((a, b))
                if (b, a) in output:
                    out.append((b, a))
        return tuple(out)
    # Default path: only conflicting pairs can seed, so walk the
    # schedule's declared conflict set (sparse) instead of all member
    # pairs (quadratic).  Candidates are ordered by member positions —
    # exactly the order the pair scan visited them — so the emitted
    # tuple is unchanged.
    position = {member: i for i, member in enumerate(members)}
    candidates: List[Tuple[int, int]] = []
    for pair in schedule.conflicts:
        x, y = tuple(pair)
        ix = position.get(x)
        iy = position.get(y)
        if ix is None or iy is None:
            continue
        candidates.append((ix, iy) if ix < iy else (iy, ix))
    candidates.sort()
    for ia, ib in candidates:
        a, b = members[ia], members[ib]
        if (a, b) in output:
            out.append((a, b))
        if (b, a) in output:
            out.append((b, a))
    return tuple(out)


def pull_up(
    system: CompositeSystem,
    observed: Relation,
    representative: Callable[[str], str],
    options: ObservedOrderOptions = ObservedOrderOptions(),
) -> Relation:
    """One reduction step of the observed order (Def. 10.2/10.3).

    ``representative`` maps each current node either to itself (not
    grouped this step) or to its parent transaction (grouped).  Pairs
    internal to one group vanish.  Pairs with at least one grouped
    endpoint are rewritten to the representatives, gated per Def. 10:

    * endpoints that are operations of a **common schedule** propagate
      only when that schedule declares them conflicting (Def. 10.2) —
      otherwise the schedule vouches for commutativity and the order is
      *forgotten* (the §3.7 walk-through);
    * endpoints on **different schedules** propagate unconditionally
      (Def. 10.3) — nobody can vouch, so the dependency is kept
      pessimistically.

    Untouched pairs are carried over verbatim.  Note the gate inspects
    the *old* endpoints: a pair between commuting operations of one
    schedule can only have entered the observed order through
    transitivity (seeding and propagation are both conflict-gated), and
    while it stays in the front it still witnesses a chain of forced
    orders — only its propagation past the vouching schedule is blocked.
    """
    grouped = frozenset(
        n for n in observed.elements if representative(n) != n
    )
    result = carried_restriction(observed, representative, grouped)
    result.add_all(
        pull_up_delta(
            system, observed, representative, options, grouped=grouped
        )
    )
    return result


def carried_restriction(
    observed: Relation,
    representative: Callable[[str], str],
    grouped: "frozenset[str]",
) -> Relation:
    """The carried part of one pull-up step: ``observed`` restricted to
    the ungrouped nodes, with the parents of the ``grouped`` nodes put
    on the carrier at their Def.-16 positions (first grouped child).
    For a transitively closed ``observed`` the result is closed — it is
    the delta-closure base of the incremental engine."""
    return observed.restricted_to(
        (n for n in observed.elements if n not in grouped),
        carrier=(representative(n) for n in observed.elements),
    )


def pull_up_delta(
    system: CompositeSystem,
    observed: Relation,
    representative: Callable[[str], str],
    options: ObservedOrderOptions = ObservedOrderOptions(),
    *,
    grouped: "frozenset[str] | None" = None,
) -> List[Tuple[str, str]]:
    """Only the *rewritten* pairs of one pull-up step.

    The carried pairs (both endpoints ungrouped) of :func:`pull_up` are
    exactly :func:`carried_restriction` — closed whenever ``observed``
    is.  The incremental engine keeps that restriction as the closed
    base and feeds the pairs returned here (plus the level's seeds) to
    :meth:`repro.core.orders.Relation.add_closed`, instead of re-closing
    the whole front from scratch.

    Only rows touching a grouped node are visited: a pair needs
    rewriting iff one endpoint is grouped, so ungrouped rows are masked
    against the ``grouped`` bitmap (one AND each) and grouped rows
    contribute everything.  The Def.-10.2 forgetting gate is likewise
    applied row-at-a-time: the successors sharing ``a``'s schedule are
    selected with the schedule's member mask and intersected with
    ``a``'s conflict-neighbour mask, so no per-pair ``common_schedule``
    or ``conflicting`` call is made.  The returned order is the observed
    order's index order — callers only ever feed the delta into a
    :class:`Relation`, whose pair iteration is canonical regardless of
    insertion order.
    """
    if grouped is None:
        grouped = frozenset(
            n for n in observed.elements if representative(n) != n
        )
    delta: List[Tuple[str, str]] = []
    if not grouped:
        return delta
    forget = options.forget_nonconflicting
    grouped_mask = observed.mask_of(grouped)
    schedule_mask: Dict[str, int] = {}
    schedules: "Dict[str, Schedule]" = {}
    if forget:
        for sname, members in group_by_schedule(
            system, observed.elements
        ).items():
            schedule_mask[sname] = observed.mask_of(members)
            schedules[sname] = system.schedule(sname)
    for a in observed.elements:
        mask = observed.row_bits(a)
        if not mask:
            continue
        if a not in grouped:
            mask &= grouped_mask
            if not mask:
                continue
        if forget:
            sa = system.schedule_of_operation(a)
            if sa is not None:
                same = mask & schedule_mask[sa]
                if same:
                    # Forget commuting same-schedule pairs wholesale.
                    conf = observed.mask_of(
                        schedules[sa].conflict_neighbours(a)
                    )
                    mask = (mask & ~same) | (same & conf)
                    if not mask:
                        continue
        ra = representative(a)
        for b in observed.unpack(mask):
            rb = representative(b)
            if ra == rb:
                continue  # internal to one calculation — reduced away
            delta.append((ra, rb))
    return delta


def observed_between_trees(
    system: CompositeSystem, observed: Relation, root_a: str, root_b: str
) -> bool:
    """True when any node of ``root_a``'s tree is observed-ordered with
    any node of ``root_b``'s tree (diagnostic helper used by examples)."""
    tree_a = system.composite_transaction(root_a)
    tree_b = system.composite_transaction(root_b)
    for a, b in observed.pairs():
        if (a in tree_a and b in tree_b) or (a in tree_b and b in tree_a):
            return True
    return False
