"""Composite correctness — Comp-C (Def. 20, via Theorem 1).

The public entry point of the library: run the reduction; the execution
is Comp-C exactly when a level-N front exists.  The returned
:class:`CorrectnessReport` bundles the verdict with the whole front
chain, a serial witness over the root transactions (when correct) and a
counterexample cycle (when not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.front import Front, ReductionFailure
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import ReductionResult, reduce_to_roots
from repro.core.system import CompositeSystem


@dataclass
class CorrectnessReport:
    """Verdict and evidence for one composite execution."""

    system: CompositeSystem
    correct: bool
    reduction: ReductionResult
    serial_witness: Optional[List[str]] = None

    @property
    def failure(self) -> Optional[ReductionFailure]:
        return self.reduction.failure

    @property
    def fronts(self) -> List[Front]:
        return self.reduction.fronts

    @property
    def levels_completed(self) -> int:
        """How many reduction steps succeeded (== system order iff correct)."""
        return self.fronts[-1].level if self.fronts else -1

    def narrative(self) -> str:
        """Multi-line, human-readable account (used by examples/benches)."""
        head = (
            f"composite system of order {self.system.order} with "
            f"{len(self.system.schedules)} schedules, "
            f"{len(self.system.roots)} composite transactions, "
            f"{len(self.system.leaves)} leaf operations"
        )
        return head + "\n" + self.reduction.narrative()

    def explain(self) -> str:
        """Root-cause report for a rejection: each edge of the
        counterexample cycle traced back to concrete conflicting
        accesses (see :mod:`repro.core.diagnosis`).  Raises for correct
        executions."""
        from repro.core.diagnosis import explain_failure

        return explain_failure(self.reduction)

    def __repr__(self) -> str:
        verdict = "Comp-C" if self.correct else "NOT Comp-C"
        return f"CorrectnessReport({verdict}, levels={self.levels_completed})"


def check_composite_correctness(
    system: CompositeSystem,
    options: ObservedOrderOptions = ObservedOrderOptions(),
    *,
    static_precheck: bool = False,
) -> CorrectnessReport:
    """Decide Comp-C for a composite execution (Theorem 1).

    ``static_precheck`` consults the conservative static prover first
    (:mod:`repro.lint.safety`): a certified system is accepted without
    running the reduction (the report then carries no serial witness —
    the certificate in ``report.reduction.static_certificate`` is the
    evidence instead).

    Examples
    --------
    >>> from repro.core.builder import SystemBuilder
    >>> b = SystemBuilder()
    >>> _ = b.schedule("S1").transaction("T1", "S1", ["a", "b"])
    >>> _ = b.transaction("T2", "S1", ["c"])
    >>> _ = b.conflict("S1", "a", "c")
    >>> _ = b.conflict("S1", "c", "b")
    >>> _ = b.executed("S1", ["a", "c", "b"])
    >>> check_composite_correctness(b.build()).correct
    False

    The classic lost-update interleaving: ``T2`` reads/writes between two
    conflicting operations of ``T1``, so ``T1`` cannot be isolated.
    """
    reduction = reduce_to_roots(system, options, static_precheck=static_precheck)
    if reduction.succeeded:
        return CorrectnessReport(
            system=system,
            correct=True,
            reduction=reduction,
            serial_witness=(
                None
                if reduction.skipped_by_precheck
                else reduction.serial_order()
            ),
        )
    return CorrectnessReport(system=system, correct=False, reduction=reduction)


def is_composite_correct(
    system: CompositeSystem,
    options: ObservedOrderOptions = ObservedOrderOptions(),
    *,
    static_precheck: bool = False,
) -> bool:
    """Boolean-only convenience wrapper around
    :func:`check_composite_correctness`."""
    return reduce_to_roots(
        system, options, static_precheck=static_precheck
    ).succeeded
