"""Root-cause diagnosis of rejected executions.

A :class:`repro.core.front.ReductionFailure` names a cycle over
transactions — correct, but far from actionable for someone debugging a
real system.  This module digs the cycle's edges back down to the
ground: for each edge it reconstructs a chain of *leaf-level conflicting
accesses* (the Def.-10 seeds) whose pull-up produced the dependency, and
names the schedule that adjudicated each link.

Example output for the Figure-3 rejection::

    T1 -> T2
      because x1 (under p, of T1) preceded conflicting x2 (under r, of T2) at SC
    T2 -> T1
      because y2 (under s, of T2) preceded conflicting y1 (under q, of T1) at SD

Chains are found by BFS over the seed graph (ordered conflicting pairs
of every schedule), restricted to nodes of the two subtrees at the
endpoints; input-order edges are reported as requirements instead.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.observed import ObservedOrderOptions, seed_observed_pairs
from repro.core.orders import Relation
from repro.core.reduction import ReductionResult
from repro.core.system import CompositeSystem
from repro.exceptions import ReductionError


def _seed_graph(system: CompositeSystem) -> Relation:
    """All ordered conflicting pairs, across every schedule, over every
    node (the ground truth every observed pair descends from)."""
    graph = Relation()
    nodes = list(system.all_nodes())
    graph.add_all(seed_observed_pairs(system, nodes, ObservedOrderOptions()))
    return graph


def _subtree(system: CompositeSystem, node: str) -> set:
    members = {node}
    if system.is_transaction(node):
        members |= system.activity(node)
    return members


def _find_chain(
    graph: Relation, sources: set, targets: set
) -> Optional[List[str]]:
    """Shortest seed-graph path from any source node into any target."""
    queue = deque((s,) for s in sorted(sources) if s in graph.elements)
    seen = set(sources)
    while queue:
        path = queue.popleft()
        node = path[-1]
        for succ in sorted(graph.successors(node), key=str):
            if succ in targets:
                return list(path) + [succ]
            if succ not in seen:
                seen.add(succ)
                queue.append(path + (succ,))
    return None


def _describe_node(system: CompositeSystem, node: str) -> str:
    root = system.root_of(node)
    parent = system.parent(node)
    if node == root:
        return node
    if parent == root:
        return f"{node} (of {root})"
    return f"{node} (under {parent}, of {root})"


def explain_edge(
    system: CompositeSystem, before: str, after: str
) -> List[str]:
    """Evidence lines for one dependency edge ``before -> after``."""
    graph = _seed_graph(system)
    chain = _find_chain(
        graph, _subtree(system, before), _subtree(system, after)
    )
    if chain is None:
        return [
            f"  (no direct conflict chain found between {before} and "
            f"{after}; the edge comes from required input orders)"
        ]
    lines = []
    for a, b in zip(chain, chain[1:]):
        shared = system.common_schedule(a, b)
        where = f" at {shared}" if shared else ""
        lines.append(
            f"  because {_describe_node(system, a)} preceded conflicting "
            f"{_describe_node(system, b)}{where}"
        )
    return lines


def explain_failure(result: ReductionResult) -> str:
    """A multi-line root-cause report for a failed reduction."""
    if result.succeeded:
        raise ReductionError("the execution is Comp-C; nothing to explain")
    failure = result.failure
    system = result.system
    lines = [failure.describe(), ""]
    cycle = failure.cycle
    for before, after in zip(cycle, cycle[1:]):
        lines.append(f"{before} -> {after}")
        lines.extend(explain_edge(system, before, after))
    lines.append("")
    lines.append(
        "every arrow must be embedded in any equivalent serial order; "
        "together they form a cycle, so no serial order exists."
    )
    return "\n".join(lines)
