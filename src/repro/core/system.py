"""Composite systems (Def. 4–9 of the paper).

A composite system is a set of schedules whose operations may again be
transactions of other schedules.  This module derives and validates all
the structure the reduction needs:

* the *parent* function (Def. 5) — each operation/transaction node has a
  unique parent transaction; root transactions are their own parent;
* node classification (Def. 4.3–4.5) into **leaves** (operations that are
  nobody's transaction), **internal nodes** (transactions invoked as
  operations) and **roots** (transactions that are nobody's operation);
* the **invocation graph** (Def. 7–8) and its acyclicity, which is the
  recursion-freedom condition of Def. 4.6;
* schedule **levels** (Def. 9): ``level(S) = (longest IG path from S) + 1``;
* the order-propagation condition of Def. 4.7 (output orders of a caller
  appear as input orders of the callee when both operations go to the
  same callee);
* composite transactions / execution trees (Def. 6).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.orders import Relation
from repro.core.schedule import Schedule
from repro.exceptions import CycleError, ModelError, OrderPropagationError


class CompositeSystem:
    """An immutable, validated composite system (Def. 4)."""

    def __init__(
        self, schedules: Sequence[Schedule], *, validate: bool = True
    ) -> None:
        if not schedules:
            raise ModelError("a composite system needs at least one schedule")
        self._schedules: Dict[str, Schedule] = {}
        for schedule in schedules:
            if schedule.name in self._schedules:
                raise ModelError(
                    f"two schedules named {schedule.name!r} in the system"
                )
            self._schedules[schedule.name] = schedule

        self._index_structure()
        self._compute_invocation_graph()
        self._compute_levels()
        if validate:
            self._validate_order_propagation()

    # ------------------------------------------------------------------
    # structural indexing
    # ------------------------------------------------------------------
    def _index_structure(self) -> None:
        # Def. 4.1: a transaction belongs to exactly one schedule.
        self._schedule_of_txn: Dict[str, str] = {}
        for sname, schedule in self._schedules.items():
            for tname in schedule.transaction_names:
                if tname in self._schedule_of_txn:
                    raise ModelError(
                        f"transaction {tname!r} assigned to two schedules "
                        f"({self._schedule_of_txn[tname]!r} and {sname!r})"
                    )
                self._schedule_of_txn[tname] = sname

        # Def. 5: unique parents.  An operation name appearing in two
        # transactions (across any schedules) would make `parent` ambiguous.
        self._parent_of: Dict[str, str] = {}
        for sname, schedule in self._schedules.items():
            for tname, txn in schedule.transactions.items():
                for op in txn.operations:
                    if op in self._parent_of:
                        raise ModelError(
                            f"node {op!r} is an operation of both "
                            f"{self._parent_of[op]!r} and {tname!r}"
                        )
                    self._parent_of[op] = tname

        all_ops = tuple(self._parent_of)  # insertion order: deterministic
        all_txns = set(self._schedule_of_txn)
        # Transactions that are operations of nobody are roots (their own
        # parent, Def. 5).
        self._roots: Tuple[str, ...] = tuple(
            t for t in self._schedule_of_txn if t not in self._parent_of
        )
        for root in self._roots:
            self._parent_of[root] = root
        # node -> owning schedule (None for roots), precomputed: the
        # Def. 10/11 gates ask this for every candidate observed pair.
        self._op_schedule: Dict[str, Optional[str]] = {
            node: (None if parent == node else self._schedule_of_txn[parent])
            for node, parent in self._parent_of.items()
        }
        self._leaves: Tuple[str, ...] = tuple(
            o for o in all_ops if o not in all_txns
        )
        self._internal: Tuple[str, ...] = tuple(
            o for o in all_ops if o in all_txns
        )
        if not self._roots:
            raise ModelError(
                "system has no root transaction (every transaction is "
                "invoked by another one — the invocation structure is cyclic)"
            )

    def _compute_invocation_graph(self) -> None:
        graph = Relation(elements=self._schedules)
        for sname, schedule in self._schedules.items():
            for op in schedule.operations:
                target = self._schedule_of_txn.get(op)
                if target is not None:
                    if target == sname:
                        raise CycleError(
                            f"schedule {sname!r} invokes itself",
                            [sname, sname],
                        )
                    graph.add(sname, target)
        cycle = graph.find_cycle()
        if cycle is not None:
            raise CycleError(
                "recursion in the invocation graph (violates Def. 4.6)",
                cycle,
            )
        self._invocation_graph = graph

    def _compute_levels(self) -> None:
        # level(S) = longest path starting at S in the IG, plus one.
        levels: Dict[str, int] = {}
        order = self._invocation_graph.topological_sort()
        for sname in reversed(order):
            succ = self._invocation_graph.successors(sname)
            levels[sname] = 1 + max((levels[c] for c in succ), default=0)
        self._levels = levels
        self._order = max(levels.values())

    def _validate_order_propagation(self) -> None:
        """Def. 4.7: raise on the first missing input-order propagation.

        The checks live in :meth:`iter_order_propagation_violations` so
        the lint layer reports exactly what the constructor enforces.
        """
        for violation in self.iter_order_propagation_violations():
            raise violation

    def iter_order_propagation_violations(
        self,
    ) -> Iterator[OrderPropagationError]:
        """Yield every Def. 4.7 violation as a structured (unraised)
        :class:`OrderPropagationError`: a caller's output orders between
        two operations that are transactions of the *same* callee must
        appear as the callee's input orders."""
        for sname, schedule in self._schedules.items():
            ops = schedule.operations
            for a in ops:
                sa = self._schedule_of_txn.get(a)
                if sa is None:
                    continue
                for b in ops:
                    if a == b or self._schedule_of_txn.get(b) != sa:
                        continue
                    callee = self._schedules[sa]
                    if (a, b) in schedule.weak_output and (
                        a,
                        b,
                    ) not in callee.weak_input:
                        yield OrderPropagationError(
                            f"Def. 4.7 violated: {a} < {b} in the output of "
                            f"{sname!r} but {a} -> {b} missing from the "
                            f"input order of {sa!r}",
                            caller=sname,
                            callee=sa,
                            pair=(a, b),
                            kind="weak",
                        )
                    if (a, b) in schedule.strong_output and (
                        a,
                        b,
                    ) not in callee.strong_input:
                        yield OrderPropagationError(
                            f"Def. 4.7 violated: {a} << {b} in the output of "
                            f"{sname!r} but {a} ->> {b} missing from the "
                            f"strong input order of {sa!r}",
                            caller=sname,
                            callee=sa,
                            pair=(a, b),
                            kind="strong",
                        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schedules(self) -> Mapping[str, Schedule]:
        return dict(self._schedules)

    def schedule(self, name: str) -> Schedule:
        try:
            return self._schedules[name]
        except KeyError:
            raise ModelError(f"no schedule named {name!r}") from None

    @property
    def invocation_graph(self) -> Relation:
        """Def. 8: schedule-to-schedule invocation edges (acyclic)."""
        return self._invocation_graph.copy()

    @property
    def levels(self) -> Mapping[str, int]:
        """Def. 9: schedule name → level."""
        return dict(self._levels)

    def level_of(self, schedule_name: str) -> int:
        return self._levels[schedule_name]

    @property
    def order(self) -> int:
        """The order ``N`` of the system: the highest schedule level."""
        return self._order

    def schedules_at_level(self, level: int) -> Tuple[str, ...]:
        return tuple(s for s, l in self._levels.items() if l == level)

    @property
    def roots(self) -> Tuple[str, ...]:
        """Def. 4.5: root transactions."""
        return self._roots

    @property
    def leaves(self) -> Tuple[str, ...]:
        """Def. 4.3: leaf operations."""
        return self._leaves

    @property
    def internal_nodes(self) -> Tuple[str, ...]:
        """Def. 4.4: transactions invoked as operations."""
        return self._internal

    # ------------------------------------------------------------------
    # node-level structure
    # ------------------------------------------------------------------
    def parent(self, node: str) -> str:
        """Def. 5: the parent transaction (roots are their own parent)."""
        try:
            return self._parent_of[node]
        except KeyError:
            raise ModelError(f"unknown node {node!r}") from None

    def is_root(self, node: str) -> bool:
        return self._parent_of.get(node) == node and node in self._schedule_of_txn

    def is_leaf(self, node: str) -> bool:
        return node in self._parent_of and node not in self._schedule_of_txn

    def is_transaction(self, node: str) -> bool:
        return node in self._schedule_of_txn

    def schedule_of_transaction(self, txn: str) -> str:
        """The unique schedule having ``txn`` among its transactions."""
        try:
            return self._schedule_of_txn[txn]
        except KeyError:
            raise ModelError(f"{txn!r} is not a transaction") from None

    def schedule_of_operation(self, node: str) -> Optional[str]:
        """The schedule that ``node`` is an *operation of* — i.e. the
        schedule owning ``parent(node)`` — or ``None`` for roots."""
        try:
            return self._op_schedule[node]
        except KeyError:
            raise ModelError(f"unknown node {node!r}") from None

    def common_schedule(self, a: str, b: str) -> Optional[str]:
        """The schedule both nodes are operations of, if any.

        This is the gate of Def. 10.2/Def. 11.1: when two nodes are
        operations of a common schedule, that schedule's own conflict
        predicate is authoritative.
        """
        table = self._op_schedule
        try:
            sa = table[a]
            return sa if sa is not None and sa == table[b] else None
        except KeyError as exc:
            raise ModelError(f"unknown node {exc.args[0]!r}") from None

    def conflicting(self, a: str, b: str) -> bool:
        """Schedule-local conflict between two nodes that are operations
        of a common schedule (``False`` otherwise; cross-schedule
        conflicts are the business of Def. 11, see
        :mod:`repro.core.conflicts`)."""
        shared = self.common_schedule(a, b)
        if shared is None:
            return False
        return self._schedules[shared].conflicting(a, b)

    # ------------------------------------------------------------------
    # execution trees (Def. 6)
    # ------------------------------------------------------------------
    def children(self, txn: str) -> Tuple[str, ...]:
        """The operations of transaction ``txn``."""
        schedule = self._schedules[self.schedule_of_transaction(txn)]
        return schedule.transactions[txn].operations

    def activity(self, txn: str) -> Set[str]:
        """``Act(T)``: every descendant node of ``txn`` (excluding it)."""
        seen: Set[str] = set()
        stack = list(self.children(txn))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self.is_transaction(node):
                stack.extend(self.children(node))
        return seen

    def composite_transaction(self, root: str) -> Set[str]:
        """Def. 6: a root and all its descendants (the execution tree)."""
        if not self.is_root(root):
            raise ModelError(f"{root!r} is not a root transaction")
        tree = self.activity(root)
        tree.add(root)
        return tree

    def leaves_of(self, txn: str) -> Set[str]:
        """The leaf operations in the execution (sub)tree of ``txn``."""
        if self.is_leaf(txn):
            return {txn}
        return {n for n in self.activity(txn) if self.is_leaf(n)}

    def ancestors(self, node: str) -> List[str]:
        """Proper ancestors of ``node`` from parent up to its root."""
        chain: List[str] = []
        cursor = node
        while True:
            parent = self.parent(cursor)
            if parent == cursor:
                break
            chain.append(parent)
            cursor = parent
        return chain

    def root_of(self, node: str) -> str:
        """The root transaction of the execution tree containing ``node``."""
        chain = self.ancestors(node)
        return chain[-1] if chain else node

    def depth(self, node: str) -> int:
        """Distance from ``node`` to its root (root has depth 0)."""
        return len(self.ancestors(node))

    # ------------------------------------------------------------------
    # reduction support
    # ------------------------------------------------------------------
    def materialization_level(self, node: str) -> int:
        """The reduction step after which ``node`` exists as a front node:
        0 for leaves, ``level(S)`` for transactions of schedule ``S``."""
        if self.is_leaf(node):
            return 0
        return self._levels[self.schedule_of_transaction(node)]

    def grouping_level(self, node: str) -> Optional[int]:
        """The reduction step at which ``node`` is folded into its parent:
        ``level(schedule_of(parent))``; ``None`` for roots (kept to the
        end by Def. 16.5)."""
        parent = self.parent(node)
        if parent == node:
            return None
        return self._levels[self._schedule_of_txn[parent]]

    def all_nodes(self) -> Iterator[str]:
        """Every node: leaves, internal transactions and roots."""
        seen: Set[str] = set()
        for leaf in self._leaves:
            seen.add(leaf)
            yield leaf
        for txn in self._schedule_of_txn:
            if txn not in seen:
                seen.add(txn)
                yield txn

    def __repr__(self) -> str:
        return (
            f"CompositeSystem(order={self._order}, "
            f"schedules={list(self._schedules)}, roots={list(self._roots)})"
        )
