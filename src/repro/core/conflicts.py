"""The generalized conflict relation ``CON`` (Def. 11).

Conflicts are natively defined only *within* a schedule.  To reason
across the whole composite system the paper generalizes them:

1. operations of a common schedule conflict exactly when that schedule
   says so (``CON_S``);
2. operations of different schedules are **assumed** to conflict when
   they are related by the observed order — something interacted below,
   and without semantic knowledge the system must be pessimistic.

Rule 2 is also why conflicts can *disappear* during reduction: once two
nodes are pulled up into operations of a common schedule, that
schedule's (possibly commuting) verdict replaces the pessimistic
assumption.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.core.orders import Relation
from repro.core.system import CompositeSystem


def generalized_conflict(
    system: CompositeSystem, observed: Relation, a: str, b: str
) -> bool:
    """``CON(a, b)`` per Def. 11, relative to the given observed order."""
    if a == b:
        return False
    shared = system.common_schedule(a, b)
    if shared is not None:
        return system.schedule(shared).conflicting(a, b)
    return observed.orders(a, b)


def conflict_pairs(
    system: CompositeSystem, observed: Relation, nodes: Iterable[str]
) -> Set[FrozenSet[str]]:
    """All generalized-conflict pairs among ``nodes`` (for front reports)."""
    node_list = list(nodes)
    pairs: Set[FrozenSet[str]] = set()
    for i, a in enumerate(node_list):
        for b in node_list[i + 1:]:
            if generalized_conflict(system, observed, a, b):
                pairs.add(frozenset((a, b)))
    return pairs


def conflict_digest(
    system: CompositeSystem, observed: Relation, nodes: Iterable[str]
) -> List[Tuple[str, str, str]]:
    """Human-readable conflict listing: ``(a, b, source)`` triples where
    ``source`` is the adjudicating schedule name or ``"observed"`` for
    cross-schedule pessimistic conflicts.  Used by the F2 benchmark and
    the ASCII renderer."""
    digest: List[Tuple[str, str, str]] = []
    node_list = sorted(nodes)
    for i, a in enumerate(node_list):
        for b in node_list[i + 1:]:
            shared = system.common_schedule(a, b)
            if shared is not None:
                if system.schedule(shared).conflicting(a, b):
                    digest.append((a, b, shared))
            elif observed.orders(a, b):
                digest.append((a, b, "observed"))
    return digest


def iter_schedule_conflicts(
    system: CompositeSystem,
) -> Iterator[Tuple[str, str, str]]:
    """Every declared schedule-local conflict as ``(schedule, a, b)``."""
    for sname, schedule in system.schedules.items():
        for pair in sorted(schedule.conflicts, key=sorted):
            a, b = sorted(pair)
            yield (sname, a, b)
