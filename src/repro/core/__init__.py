"""Core model and decision procedure for composite correctness (Comp-C).

This package implements the paper's formal machinery end to end:
transactions (Def. 2), schedules (Def. 3), composite systems and their
levels (Def. 4–9), the observed order (Def. 10), generalized conflicts
(Def. 11), computational fronts (Def. 12–13), calculations (Def. 14),
the level-by-level reduction (Def. 15–16) and composite correctness
itself (Def. 17–20, decided via Theorem 1).
"""

from repro.core.builder import SystemBuilder, build_system
from repro.core.calculation import (
    Grouping,
    calculation_constraints,
    find_isolation_failure,
    grouping_for_level,
    witness_sequence,
)
from repro.core.certificates import (
    CertificateCheck,
    validate_failure_certificate,
)
from repro.core.conflicts import (
    conflict_digest,
    conflict_pairs,
    generalized_conflict,
)
from repro.core.equivalence import (
    abstracts_to_flat,
    front_at_level,
    level_equivalent_systems,
    rename_front,
    root_behaviour,
)
from repro.core.correctness import (
    CorrectnessReport,
    check_composite_correctness,
    is_composite_correct,
)
from repro.core.front import Front, ReductionFailure
from repro.core.observed import (
    ObservedOrderOptions,
    pull_up,
    seed_observed_pairs,
)
from repro.core.orders import Relation, total_order_from_sequence
from repro.core.reduction import (
    ReductionEngine,
    ReductionResult,
    reduce_to_roots,
)
from repro.core.schedule import Schedule
from repro.core.serial import (
    ContainmentCheck,
    check_containment,
    serial_front_of,
    verify_theorem1_if_direction,
)
from repro.core.system import CompositeSystem
from repro.core.transaction import Transaction

__all__ = [
    "SystemBuilder",
    "build_system",
    "Grouping",
    "calculation_constraints",
    "find_isolation_failure",
    "grouping_for_level",
    "witness_sequence",
    "CertificateCheck",
    "validate_failure_certificate",
    "conflict_digest",
    "conflict_pairs",
    "generalized_conflict",
    "abstracts_to_flat",
    "front_at_level",
    "level_equivalent_systems",
    "rename_front",
    "root_behaviour",
    "CorrectnessReport",
    "check_composite_correctness",
    "is_composite_correct",
    "Front",
    "ReductionFailure",
    "ObservedOrderOptions",
    "pull_up",
    "seed_observed_pairs",
    "Relation",
    "total_order_from_sequence",
    "ReductionEngine",
    "ReductionResult",
    "reduce_to_roots",
    "Schedule",
    "ContainmentCheck",
    "check_containment",
    "serial_front_of",
    "verify_theorem1_if_direction",
    "CompositeSystem",
    "Transaction",
]
