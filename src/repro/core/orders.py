"""Finite binary relations and strict partial orders.

Everything in the composite-transaction model — weak/strong input and
output orders (Def. 1, Def. 3), the observed order (Def. 10), the
invocation graph (Def. 8) and the constraint graphs of the reduction
(Def. 16) — is a finite binary relation over hashable node names.
:class:`Relation` is the single graph engine the rest of the library is
built on: it supports closure, acyclicity tests with witness cycles,
topological sorting, restriction, union, and quotienting by a grouping
function (the operation behind front reduction).

**Representation.**  Packed bitset rows are the *native* storage: the
carrier set is interned into an index (element → bit position, in
insertion order) and the successor set of each element is a single
arbitrary-precision Python ``int`` used as a bitmap.  Everything hot is
word-parallel on those rows — ``copy`` is a list copy, ``union`` is a
row-wise OR, ``inverse`` is a transpose swap, ``restricted_to`` is a
row mask, ``transitive_closure``/``delta_closure``/``add_closed``
propagate reachability as row ORs and build their results directly
from the closed rows (no per-pair materialization).  The historical
dict-of-sets views ``_succ``/``_pred`` are synthesized lazily for
compatibility and are **read-only snapshots** — mutating them does not
write through.

The class is deliberately mutable-but-convertible: model-construction
code builds relations incrementally, then the checker works on frozen
copies.  Determinism matters for reproducible benchmarks, so iteration
orders are insertion orders (interning order of the carrier) and
topological sorts break ties by insertion order.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import CycleError

Element = Hashable
Pair = Tuple[Element, Element]

#: Closure instrumentation: mutated by :meth:`Relation.transitive_closure`,
#: :meth:`Relation.delta_closure` and :meth:`Relation.add_closed`,
#: snapshotted by the reduction engine's profiler.  ``calls`` counts
#: closure invocations; ``rows`` counts packed bitset rows (one
#: word-packed bitmap each) actually (re)computed — the from-scratch
#: closure recomputes every row, the incremental path touches only the
#: rows whose reachability changed.  Per-process (each pool worker has
#: its own).
CLOSURE_COUNTERS = {"calls": 0, "rows": 0}


def closure_counters() -> Dict[str, int]:
    """A snapshot of the module-level closure counters."""
    return dict(CLOSURE_COUNTERS)


def reset_closure_counters() -> None:
    """Zero the closure counters (benchmark/test hygiene)."""
    CLOSURE_COUNTERS["calls"] = 0
    CLOSURE_COUNTERS["rows"] = 0


if hasattr(int, "bit_count"):  # Python >= 3.10: native popcount

    def _popcount(mask: int) -> int:
        return mask.bit_count()

else:  # pragma: no cover - Python 3.9 fallback

    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask &= mask - 1


def _source_columns(rows: List[int], src_mask: int) -> Dict[int, int]:
    """Predecessor bitmaps for the columns selected by ``src_mask`` only.

    The delta kernels need the predecessors of each inserted edge's
    *source* — never the whole transpose.  One word-AND per row finds
    the rows intersecting the sources, so the scan costs O(V) big-int
    ANDs plus one bit-iteration per (row, source) hit, instead of the
    O(E) per-bit scatter of a full transpose over a dense closed order.
    """
    cols: Dict[int, int] = {}
    get = cols.get
    for r, rowmask in enumerate(rows):
        m = rowmask & src_mask
        if m:
            bit_r = 1 << r
            while m:
                low = m & -m
                j = low.bit_length() - 1
                cols[j] = get(j, 0) | bit_r
                m &= m - 1
    return cols


class Relation:
    """A finite binary relation ``R ⊆ E × E`` over a carrier set ``E``.

    The carrier set always contains every element mentioned by a pair,
    and may contain isolated elements (needed so that topological sorts
    enumerate unordered nodes too).

    >>> r = Relation([("a", "b"), ("b", "c")])
    >>> ("a", "c") in r
    False
    >>> ("a", "c") in r.transitive_closure()
    True
    >>> r.topological_sort()
    ['a', 'b', 'c']
    >>> r.add("c", "a")
    >>> r.find_cycle()
    ['a', 'b', 'c', 'a']
    """

    __slots__ = ("_index", "_nodes", "_rows", "_cols", "_size")

    def __init__(
        self,
        pairs: Iterable[Pair] = (),
        elements: Iterable[Element] = (),
    ) -> None:
        #: element -> bit position (insertion order)
        self._index: Dict[Element, int] = {}
        #: bit position -> element
        self._nodes: List[Element] = []
        #: successor bitmaps, one int per element
        self._rows: List[int] = []
        #: predecessor bitmaps (the transpose); ``None`` when stale —
        #: bulk row operations invalidate it and :meth:`_transpose`
        #: rebuilds it on demand
        self._cols: Optional[List[int]] = []
        self._size = 0
        for element in elements:
            self.add_element(element)
        for a, b in pairs:
            self.add(a, b)

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _from_state(
        cls,
        nodes: List[Element],
        rows: List[int],
        cols: Optional[List[int]],
        size: Optional[int] = None,
    ) -> "Relation":
        """Assemble a relation directly from row state (no per-pair
        work).  ``nodes`` must be duplicate-free; ``size`` is recomputed
        from the rows when not supplied."""
        self = cls.__new__(cls)
        self._nodes = nodes
        self._index = {e: i for i, e in enumerate(nodes)}
        self._rows = rows
        self._cols = cols
        self._size = sum(map(_popcount, rows)) if size is None else size
        return self

    def _transpose(self) -> List[int]:
        """The predecessor bitmaps, rebuilt from the rows when stale."""
        cols = self._cols
        if cols is None:
            cols = [0] * len(self._nodes)
            for i, mask in enumerate(self._rows):
                bit = 1 << i
                while mask:
                    low = mask & -mask
                    cols[low.bit_length() - 1] |= bit
                    mask &= mask - 1
            self._cols = cols
        return cols

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_element(self, element: Element) -> None:
        """Add ``element`` to the carrier set (idempotent)."""
        if element not in self._index:
            self._index[element] = len(self._nodes)
            self._nodes.append(element)
            self._rows.append(0)
            if self._cols is not None:
                self._cols.append(0)

    def add(self, a: Element, b: Element) -> None:
        """Add the pair ``(a, b)`` — i.e. assert ``a R b`` (idempotent)."""
        self.add_element(a)
        self.add_element(b)
        ia = self._index[a]
        ib = self._index[b]
        bit = 1 << ib
        if not self._rows[ia] & bit:
            self._rows[ia] |= bit
            if self._cols is not None:
                self._cols[ib] |= 1 << ia
            self._size += 1

    def add_all(self, pairs: Iterable[Pair]) -> None:
        """Add every pair in ``pairs``."""
        for a, b in pairs:
            self.add(a, b)

    def discard(self, a: Element, b: Element) -> None:
        """Remove the pair ``(a, b)`` if present (carrier set unchanged)."""
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return
        bit = 1 << ib
        if self._rows[ia] & bit:
            self._rows[ia] ^= bit
            if self._cols is not None:
                self._cols[ib] ^= 1 << ia
            self._size -= 1

    def discard_row_bits(self, a: Element, mask: int) -> int:
        """Clear the successor bits of ``a``'s row selected by ``mask``;
        returns how many pairs were removed.  The word-parallel
        counterpart of repeated :meth:`discard` calls against one row."""
        ia = self._index.get(a)
        if ia is None:
            return 0
        hit = self._rows[ia] & mask
        if not hit:
            return 0
        self._rows[ia] ^= hit
        removed = _popcount(hit)
        self._size -= removed
        cols = self._cols
        if cols is not None:
            keep = ~(1 << ia)
            while hit:
                low = hit & -hit
                cols[low.bit_length() - 1] &= keep
                hit &= hit - 1
        return removed

    def remove_self_loops(self) -> int:
        """Drop every reflexive pair; returns how many were removed."""
        removed = 0
        rows = self._rows
        cols = self._cols
        for i in range(len(rows)):
            bit = 1 << i
            if rows[i] & bit:
                rows[i] ^= bit
                removed += 1
                if cols is not None:
                    cols[i] &= ~bit
        self._size -= removed
        return removed

    def copy(self) -> "Relation":
        """Return an independent copy (row-list copy — O(carrier))."""
        clone = Relation.__new__(Relation)
        clone._index = dict(self._index)
        clone._nodes = list(self._nodes)
        clone._rows = list(self._rows)
        clone._cols = None if self._cols is None else list(self._cols)
        clone._size = self._size
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        return bool((self._rows[ia] >> ib) & 1)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self._nodes == other._nodes:
            return self._rows == other._rows
        if self._size != other._size:
            return False
        if set(self._index) != set(other._index):
            return False
        shift = [self._index[e] for e in other._nodes]
        for oi, mask in enumerate(other._rows):
            remapped = 0
            while mask:
                low = mask & -mask
                remapped |= 1 << shift[low.bit_length() - 1]
                mask &= mask - 1
            if remapped != self._rows[shift[oi]]:
                return False
        return True

    # A mutable container: equality without identity-based hashing, so
    # the class is explicitly unhashable (``isinstance(r, Hashable)``
    # is False and ``hash(r)`` raises TypeError).
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        shown = ", ".join(f"{a}<{b}" for a, b in list(self.pairs())[:8])
        more = "" if self._size <= 8 else f", ... ({self._size} pairs)"
        return f"Relation({shown}{more})"

    @property
    def elements(self) -> Tuple[Element, ...]:
        """The carrier set, in insertion order."""
        return tuple(self._nodes)

    @property
    def _succ(self) -> Dict[Element, Set[Element]]:
        """Legacy dict-of-sets successor view (a read-only *snapshot*
        synthesized from the bitset rows; mutations do not write back)."""
        nodes = self._nodes
        return {
            nodes[i]: {nodes[j] for j in _iter_bits(mask)}
            for i, mask in enumerate(self._rows)
            if mask
        }

    @property
    def _pred(self) -> Dict[Element, Set[Element]]:
        """Legacy dict-of-sets predecessor view (read-only snapshot)."""
        nodes = self._nodes
        return {
            nodes[i]: {nodes[j] for j in _iter_bits(mask)}
            for i, mask in enumerate(self._transpose())
            if mask
        }

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all pairs in deterministic order."""
        nodes = self._nodes
        for i, a in enumerate(nodes):
            mask = self._rows[i]
            if mask:
                succ = [nodes[j] for j in _iter_bits(mask)]
                succ.sort(key=_sort_key)
                for b in succ:
                    yield (a, b)

    def successors(self, a: Element) -> Set[Element]:
        """All ``b`` with ``a R b``."""
        ia = self._index.get(a)
        if ia is None:
            return set()
        nodes = self._nodes
        return {nodes[j] for j in _iter_bits(self._rows[ia])}

    def predecessors(self, b: Element) -> Set[Element]:
        """All ``a`` with ``a R b``."""
        ib = self._index.get(b)
        if ib is None:
            return set()
        nodes = self._nodes
        return {nodes[j] for j in _iter_bits(self._transpose()[ib])}

    def orders(self, a: Element, b: Element) -> bool:
        """True if ``a`` and ``b`` are related in either direction."""
        return (a, b) in self or (b, a) in self

    # ------------------------------------------------------------------
    # bitset-row accessors (the native face of the engine)
    # ------------------------------------------------------------------
    def row_bits(self, a: Element) -> int:
        """The successor bitmap of ``a`` (0 when absent).  Bit ``j`` is
        set iff ``a R elements[j]`` — word-parallel AND/OR/NOT against
        :meth:`mask_of` masks replaces per-pair membership loops."""
        ia = self._index.get(a)
        return 0 if ia is None else self._rows[ia]

    def mask_of(self, elements: Iterable[Element]) -> int:
        """The bitmap of the given elements (absent ones are ignored)."""
        index = self._index
        mask = 0
        for e in elements:
            i = index.get(e)
            if i is not None:
                mask |= 1 << i
        return mask

    def unpack(self, mask: int) -> List[Element]:
        """The elements whose bits are set in ``mask``, in index order."""
        nodes = self._nodes
        return [nodes[j] for j in _iter_bits(mask)]

    def missing_pairs(self, other: "Relation") -> Iterator[Pair]:
        """Pairs of ``self`` absent from ``other``, in :meth:`pairs`
        order — the row-wise containment check behind the Def.-19
        verifications (``self ⊆ other`` iff this yields nothing)."""
        nodes = self._nodes
        aligned = nodes == other._nodes
        oindex = other._index
        for i, a in enumerate(nodes):
            mask = self._rows[i]
            if not mask:
                continue
            if aligned:
                missing = mask & ~other._rows[i]
            else:
                oi = oindex.get(a)
                if oi is None:
                    missing = mask
                else:
                    orow = other._rows[oi]
                    missing = 0
                    for j in _iter_bits(mask):
                        oj = oindex.get(nodes[j])
                        if oj is None or not (orow >> oj) & 1:
                            missing |= 1 << j
            if missing:
                succ = [nodes[j] for j in _iter_bits(missing)]
                succ.sort(key=_sort_key)
                for b in succ:
                    yield (a, b)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def union(self, *others: "Relation") -> "Relation":
        """Union of this relation with ``others`` (carriers merged).

        Row-wise OR when a carrier matches; otherwise the other rows are
        scattered through an index permutation."""
        result = self.copy()
        result._cols = None
        rows = result._rows
        for other in others:
            for e in other._nodes:
                result.add_element(e)
            if other._nodes == result._nodes:
                for i, mask in enumerate(other._rows):
                    rows[i] |= mask
            else:
                index = result._index
                shift = [index[e] for e in other._nodes]
                for oi, mask in enumerate(other._rows):
                    if not mask:
                        continue
                    acc = rows[shift[oi]]
                    while mask:
                        low = mask & -mask
                        acc |= 1 << shift[low.bit_length() - 1]
                        mask &= mask - 1
                    rows[shift[oi]] = acc
        result._size = sum(map(_popcount, rows))
        return result

    def restricted_to(
        self,
        keep: Iterable[Element],
        *,
        carrier: "Optional[Iterable[Element]]" = None,
    ) -> "Relation":
        """The sub-relation induced on the elements of ``keep``.

        Rows are masked whole (successor row AND keep-mask), never pair
        by pair — the restriction is the carried base of every
        incremental reduction step, and per-pair ``add`` calls dominated
        its cost.  ``carrier`` optionally fixes the result's carrier —
        it must contain every kept element of ``self`` (extra elements
        get empty rows); a carrier that *misses* a kept element raises
        :class:`ValueError`, since the result would mention elements
        outside its own carrier.  The reduction uses the explicit
        carrier to place the parent transactions at their Def.-16
        positions.  A restriction of a transitively closed relation is
        itself closed.
        """
        keep_set = set(keep)
        result = Relation()
        if carrier is None:
            # Result carrier = kept elements in self's index order; sort
            # the (few) kept indices rather than scanning the whole
            # carrier — group restrictions keep a handful of elements of
            # a front-sized relation.
            own = self._index
            kept_indices = sorted(
                i
                for i in map(own.get, keep_set)
                if i is not None
            )
            nodes = self._nodes
            for i in kept_indices:
                result.add_element(nodes[i])
        else:
            for e in carrier:
                result.add_element(e)
            missing = [
                e
                for e in self._nodes
                if e in keep_set and e not in result._index
            ]
            if missing:
                raise ValueError(
                    "restricted_to: carrier is missing kept element(s) "
                    f"{missing!r} — the carrier must contain every kept "
                    "element of the relation"
                )
        # Work proportional to |keep|, not to the carrier: build the
        # keep bitmap and the self-index -> result-index permutation
        # from the kept elements alone.
        index = self._index
        ridx = result._index
        keep_mask = 0
        shift: Dict[int, int] = {}
        for e in keep_set:
            i = index.get(e)
            if i is not None:
                keep_mask |= 1 << i
                shift[i] = ridx[e]
        rows = result._rows
        size = 0
        for i, ti in shift.items():
            masked = self._rows[i] & keep_mask
            if not masked:
                continue
            acc = 0
            while masked:
                low = masked & -masked
                acc |= 1 << shift[low.bit_length() - 1]
                masked &= masked - 1
            rows[ti] = acc
            size += _popcount(acc)
        result._size = size
        result._cols = None
        return result

    def mapped(
        self,
        representative: Callable[[Element], Element],
        *,
        drop_loops: bool = True,
    ) -> "Relation":
        """Quotient: replace every element by ``representative(element)``.

        This is the engine of the reduction step (Def. 16): grouping the
        operations of a level-*i* transaction collapses them to the
        transaction node.  Rows are scattered into the quotient rows
        through the representative index.  Self-loops created by the
        collapse are dropped by default (pairs internal to a group carry
        no inter-node constraint).
        """
        result = Relation()
        targets: List[int] = []
        for e in self._nodes:
            rep = representative(e)
            result.add_element(rep)
            targets.append(result._index[rep])
        rows = result._rows
        for i, mask in enumerate(self._rows):
            if not mask:
                continue
            ti = targets[i]
            acc = rows[ti]
            while mask:
                low = mask & -mask
                tj = targets[low.bit_length() - 1]
                mask &= mask - 1
                if drop_loops and tj == ti:
                    continue
                acc |= 1 << tj
            rows[ti] = acc
        result._size = sum(map(_popcount, rows))
        result._cols = None
        return result

    def inverse(self) -> "Relation":
        """The converse relation ``{(b, a) : (a, b) ∈ R}`` — a transpose
        swap: the predecessor bitmaps become the rows and vice versa."""
        return Relation._from_state(
            list(self._nodes),
            list(self._transpose()),
            list(self._rows),
            self._size,
        )

    def transitive_closure(self) -> "Relation":
        """The smallest transitive relation containing this one.

        Reachability propagates through the strongly-connected-component
        condensation in reverse topological order, one row OR per
        external successor — ``O(V·E/w)`` word-packed — and the result
        relation is assembled directly from the closed rows, never pair
        by pair.  (``source R source`` appears exactly when the source
        lies on a cycle, matching the DFS semantics the test suite pins
        down.)
        """
        n = len(self._nodes)
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += n
        rows = self._rows

        # Tarjan SCC (iterative) to handle cycles; components are
        # emitted in reverse topological order (a component is completed
        # only after everything it reaches), so each row is final when
        # consumed.
        closure = [0] * n
        for comp in self._tarjan_components():
            comp_mask = 0
            direct = 0
            for node in comp:
                comp_mask |= 1 << node
                direct |= rows[node]
            # Successors outside the component are already closed, so one
            # union per external successor finishes the reachability set.
            external = direct & ~comp_mask
            reach = external
            remaining = external
            while remaining:
                low = remaining & -remaining
                reach |= closure[low.bit_length() - 1]
                remaining &= remaining - 1
            # Inside a (non-trivial) cycle every member reaches every
            # member, including itself when the component has an internal
            # edge (size > 1, or an explicit self-loop).
            if len(comp) > 1 or rows[comp[0]] & (1 << comp[0]):
                reach |= comp_mask
            for node in comp:
                closure[node] = reach
        return Relation._from_state(list(self._nodes), closure, None)

    def delta_closure(
        self,
        pairs: Iterable[Pair],
        elements: Iterable[Element] = (),
    ) -> "Relation":
        """Closure of ``self ∪ pairs`` for an **already closed** ``self``.

        The incremental counterpart of :meth:`transitive_closure`:
        instead of re-saturating every row, each inserted edge ``(a,
        b)`` unions ``b``'s (final) reachability row into the rows of
        ``a`` and of everything that reaches ``a`` — touching only rows
        whose reachability actually changes, found through the
        transposed (predecessor) bitmaps without a scan.

        Precondition: ``self`` is transitively closed (the result of
        :meth:`transitive_closure` or a previous :meth:`delta_closure`,
        or a restriction of one — restriction preserves closedness).
        The reflexivity convention matches :meth:`transitive_closure`:
        ``x R x`` appears exactly when ``x`` lies on a cycle.

        ``elements`` extends the carrier set (isolated nodes the caller
        wants present); endpoints of ``pairs`` are added automatically.

        >>> base = Relation([("a", "b"), ("b", "c")]).transitive_closure()
        >>> inc = base.delta_closure([("c", "d")])
        >>> ("a", "d") in inc
        True
        >>> inc == Relation(
        ...     [("a", "b"), ("b", "c"), ("c", "d")]
        ... ).transitive_closure()
        True
        """
        staged = list(pairs)
        nodes = list(self._nodes)
        index = dict(self._index)
        for element in elements:
            if element not in index:
                index[element] = len(nodes)
                nodes.append(element)
        for a, b in staged:
            for e in (a, b):
                if e not in index:
                    index[e] = len(nodes)
                    nodes.append(e)
        grown = len(nodes) - len(self._nodes)
        rows = self._rows + [0] * grown  # list __add__ always copies
        # Only the delta sources' predecessor columns are ever read —
        # build exactly those, never the full transpose.
        src_mask = 0
        for a, _b in staged:
            src_mask |= 1 << index[a]
        cols = _source_columns(rows, src_mask)

        touched = 0
        for a, b in staged:
            ia, ib = index[a], index[b]
            if (rows[ia] >> ib) & 1:
                continue  # already implied — closure is unchanged
            succ_mask = rows[ib] | (1 << ib)
            affected = cols.get(ia, 0) | (1 << ia)
            while affected:
                low = affected & -affected
                ix = low.bit_length() - 1
                affected &= affected - 1
                new = succ_mask & ~rows[ix]
                if not new:
                    continue
                touched += 1
                rows[ix] |= new
                hit = new & src_mask
                if hit:
                    bit_x = 1 << ix
                    while hit:
                        nl = hit & -hit
                        j = nl.bit_length() - 1
                        cols[j] = cols.get(j, 0) | bit_x
                        hit &= hit - 1
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += touched
        return Relation._from_state(nodes, rows, None)

    def add_closed(
        self,
        pairs: Iterable[Pair],
        elements: Iterable[Element] = (),
    ) -> int:
        """In-place :meth:`delta_closure`: insert ``pairs`` into an
        **already closed** relation and restore closedness, touching only
        rows whose reachability changes.

        This is the engine-facing variant — it never re-emits the
        unchanged part of the relation (the dominant cost of re-closing a
        dense observed order from scratch): in a closed relation the
        predecessor bitmap of ``a`` is exactly the set of rows an edge
        into ``a`` can affect.  Returns the number of rows touched (also
        added to the module closure counters).
        """
        staged = list(pairs)
        for element in elements:
            self.add_element(element)
        for a, b in staged:
            self.add_element(a)
            self.add_element(b)
        index = self._index
        rows = self._rows
        src_mask = 0
        for a, _b in staged:
            src_mask |= 1 << index[a]
        # When a transpose is already cached keep maintaining it (the
        # cache stays valid for later predecessor queries); otherwise
        # build only the delta sources' columns — the rest of the
        # transpose is never read by the propagation below.
        full_cols = self._cols
        cols = (
            _source_columns(rows, src_mask) if full_cols is None else None
        )
        touched = 0
        for a, b in staged:
            ia, ib = index[a], index[b]
            if (rows[ia] >> ib) & 1:
                continue  # already implied — closure is unchanged
            succ_mask = rows[ib] | (1 << ib)
            if full_cols is not None:
                affected = full_cols[ia] | (1 << ia)
            else:
                affected = cols.get(ia, 0) | (1 << ia)
            while affected:
                low = affected & -affected
                ix = low.bit_length() - 1
                affected &= affected - 1
                new = succ_mask & ~rows[ix]
                if not new:
                    continue
                touched += 1
                rows[ix] |= new
                self._size += _popcount(new)
                bit_x = 1 << ix
                if full_cols is not None:
                    while new:
                        nl = new & -new
                        full_cols[nl.bit_length() - 1] |= bit_x
                        new &= new - 1
                else:
                    hit = new & src_mask
                    while hit:
                        nl = hit & -hit
                        j = nl.bit_length() - 1
                        cols[j] = cols.get(j, 0) | bit_x
                        hit &= hit - 1
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += touched
        return touched

    def _tarjan_components(self) -> List[List[int]]:
        """Iterative Tarjan SCC over the row bitmaps; components are
        emitted in reverse topological order."""
        n = len(self._nodes)
        adjacency: List[List[int]] = [
            list(_iter_bits(mask)) for mask in self._rows
        ]
        index_counter = [0]
        lowlink = [0] * n
        number = [-1] * n
        on_stack = [False] * n
        stack: List[int] = []
        components: List[List[int]] = []

        for root in range(n):
            if number[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_pos = work[-1]
                if child_pos == 0:
                    number[node] = lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                for pos in range(child_pos, len(adjacency[node])):
                    succ = adjacency[node][pos]
                    if number[succ] == -1:
                        work[-1] = (node, pos + 1)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack[succ]:
                        lowlink[node] = min(lowlink[node], number[succ])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == number[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def reaches(self, a: Element, b: Element) -> bool:
        """True if ``b`` is reachable from ``a`` through one or more
        pairs (bitset BFS: one row OR per newly reached node)."""
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        rows = self._rows
        seen = 0
        frontier = rows[ia]
        while frontier & ~seen:
            new = frontier & ~seen
            if (new >> ib) & 1:
                return True
            seen |= new
            frontier = 0
            while new:
                low = new & -new
                frontier |= rows[low.bit_length() - 1]
                new &= new - 1
        return False

    def first_self_loop(self) -> Optional[Element]:
        """The first element (carrier order) with ``x R x``, or ``None``.

        In a **transitively closed** relation (the invariant
        :meth:`transitive_closure` / :meth:`add_closed` maintain:
        ``x R x`` exactly when ``x`` lies on a cycle) this is an O(V)
        acyclicity probe — one bit test per row instead of a full
        traversal.  The streaming checker uses it as its per-commit
        rejection gate on the maintained level-0 observed order: once a
        delta closes a cycle, some row gains its own bit and every later
        extension keeps it (closed relations only grow), so a ``None``
        here certifies the front's observed order acyclic without a
        :meth:`find_cycle` pass.  On a relation that is *not* closed the
        result only reports literal self-loops.
        """
        for i, row in enumerate(self._rows):
            if (row >> i) & 1:
                return self._nodes[i]
        return None

    # ------------------------------------------------------------------
    # order-theoretic properties
    # ------------------------------------------------------------------
    def find_cycle(self) -> Optional[List[Element]]:
        """Return one directed cycle ``[a, ..., a]`` or ``None`` if acyclic.

        Iterative three-colour DFS (no recursion: histories can be deep).
        Traversal order — roots in carrier insertion order, children in
        :func:`_sort_key` order — is pinned so witness cycles are
        deterministic and identical to the historical dict engine.
        """
        n = len(self._nodes)
        nodes = self._nodes
        rows = self._rows
        WHITE, GREY, BLACK = 0, 1, 2
        colour = [WHITE] * n
        parent: Dict[int, int] = {}

        def children(i: int) -> Iterator[int]:
            succ = list(_iter_bits(rows[i]))
            succ.sort(key=lambda j: _sort_key(nodes[j]))
            return iter(succ)

        for root in range(n):
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(root, children(root))]
            colour[root] = GREY
            while stack:
                node, kids = stack[-1]
                advanced = False
                for child in kids:
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, children(child)))
                        advanced = True
                        break
                    if colour[child] == GREY:
                        # Found a back edge node -> child; unwind the path.
                        cycle = [child]
                        cursor = node
                        while cursor != child:
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.append(child)
                        cycle.reverse()
                        return [nodes[i] for i in cycle]
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """True if the relation, viewed as a digraph, has no cycle."""
        return self.find_cycle() is None

    def is_irreflexive(self) -> bool:
        """True if no element is related to itself (empty diagonal)."""
        return all(
            not (mask >> i) & 1 for i, mask in enumerate(self._rows)
        )

    def is_transitive(self) -> bool:
        """True if ``a R b`` and ``b R c`` imply ``a R c`` — row-wise:
        every successor's row must be covered by the element's row."""
        rows = self._rows
        for mask in rows:
            remaining = mask
            while remaining:
                low = remaining & -remaining
                if rows[low.bit_length() - 1] & ~mask:
                    return False
                remaining &= remaining - 1
        return True

    def is_strict_partial_order(self) -> bool:
        """True if the relation is irreflexive and acyclic.

        (An acyclic relation always has an irreflexive, transitive
        extension — its transitive closure — so this is the useful test
        for "can serve as a strict partial order".)
        """
        return self.is_irreflexive() and self.is_acyclic()

    def is_total_over(self, elements: Iterable[Element]) -> bool:
        """True if every distinct pair from ``elements`` is ordered."""
        pool = list(elements)
        for i, a in enumerate(pool):
            for b in pool[i + 1:]:
                if a != b and not self.orders(a, b):
                    return False
        return True

    # ------------------------------------------------------------------
    # linearization
    # ------------------------------------------------------------------
    def topological_sort(self) -> List[Element]:
        """A linear extension of the relation over its carrier set.

        Raises :class:`CycleError` (with a witness) when cyclic.  Ties
        are broken by carrier insertion order, which makes results
        deterministic across runs.
        """
        n = len(self._nodes)
        nodes = self._nodes
        in_degree = [_popcount(c) for c in self._transpose()]
        queue: List[int] = [i for i in range(n) if in_degree[i] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            # Pick the smallest-position ready element for determinism
            # (bit position == carrier insertion position).
            best = min(range(head, len(queue)), key=lambda k: queue[k])
            queue[head], queue[best] = queue[best], queue[head]
            node = queue[head]
            head += 1
            order.append(node)
            succ = list(_iter_bits(self._rows[node]))
            succ.sort(key=lambda j: _sort_key(nodes[j]))
            for child in succ:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != n:
            cycle = self.find_cycle()
            assert cycle is not None
            raise CycleError("relation is not linearizable", cycle)
        return [nodes[i] for i in order]

    def all_topological_sorts(
        self, limit: Optional[int] = None
    ) -> Iterator[List[Element]]:
        """Enumerate every linear extension (optionally at most ``limit``).

        Exponential in general — used only by the brute-force oracle that
        cross-validates Theorem 1 on tiny instances.
        """
        elements = list(self._nodes)
        successors: Dict[Element, List[Element]] = {
            elements[i]: [elements[j] for j in _iter_bits(mask)]
            for i, mask in enumerate(self._rows)
            if mask
        }
        in_degree: Dict[Element, int] = {e: 0 for e in elements}
        for bs in successors.values():
            for b in bs:
                in_degree[b] += 1
        emitted = 0
        prefix: List[Element] = []

        def backtrack() -> Iterator[List[Element]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if len(prefix) == len(elements):
                emitted += 1
                yield list(prefix)
                return
            for node in elements:
                if in_degree[node] == 0 and node not in taken:
                    taken.add(node)
                    prefix.append(node)
                    for child in successors.get(node, ()):
                        in_degree[child] -= 1
                    yield from backtrack()
                    for child in successors.get(node, ()):
                        in_degree[child] += 1
                    prefix.pop()
                    taken.remove(node)
                    if limit is not None and emitted >= limit:
                        return

        taken: Set[Element] = set()
        yield from backtrack()


def _sort_key(element: Element) -> Tuple[str, str]:
    """Deterministic sort key for heterogeneous hashables."""
    return (type(element).__name__, str(element))


def find_cycle_in_union(
    relations: Iterable["Relation"],
    *,
    skip_self_loops: bool = False,
) -> Optional[List[Element]]:
    """One directed cycle of ``⋃ relations``, without materializing it.

    Behaviourally identical to ``relations[0].union(*relations[1:])``
    followed by :meth:`Relation.find_cycle` (same carrier order, same
    successor sort, hence the same witness cycle) — but it never copies
    the relations: successor sets are merged per visited node straight
    from the bitset rows, which for the checker's dense closed observed
    orders is the dominant cost of the Def.-13 consistency test.  With
    ``skip_self_loops`` reflexive pairs are ignored, matching the
    self-loop discard of :meth:`repro.core.front.Front.consistency_violation`.
    """
    pool = list(relations)
    order: Dict[Element, None] = {}
    for relation in pool:
        for element in relation._nodes:
            order.setdefault(element, None)

    # Children must be visited in ``_sort_key`` order (the witness-cycle
    # contract).  Rank the union carrier once, so merging successor rows
    # into a rank-indexed bitmap yields them already sorted — one global
    # O(n log n) sort instead of a sort (plus key tuples) per visited
    # node, which dominated the Def.-13 test on dense closed orders.
    ranked = sorted(order, key=_sort_key)
    rank_bit = {e: 1 << r for r, e in enumerate(ranked)}
    perms = [
        [rank_bit[e] for e in relation._nodes] for relation in pool
    ]

    def successors(node: Element) -> List[Element]:
        merged = 0
        for relation, perm in zip(pool, perms):
            i = relation._index.get(node)
            if i is None:
                continue
            mask = relation._rows[i]
            while mask:
                low = mask & -mask
                merged |= perm[low.bit_length() - 1]
                mask &= mask - 1
        if skip_self_loops:
            merged &= ~rank_bit[node]
        out: List[Element] = []
        while merged:
            low = merged & -merged
            out.append(ranked[low.bit_length() - 1])
            merged &= merged - 1
        return out

    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Element, int] = {e: WHITE for e in order}
    parent: Dict[Element, Element] = {}
    for root in order:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Element, Iterator[Element]]] = [
            (root, iter(successors(root)))
        ]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour[child] == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(successors(child))))
                    advanced = True
                    break
                if colour[child] == GREY:
                    cycle = [child]
                    cursor = node
                    while cursor != child:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def total_order_from_sequence(sequence: Iterable[Element]) -> Relation:
    """Build the total order induced by a sequence (adjacent pairs only;
    take the transitive closure when the full order matters)."""
    relation = Relation()
    previous: Optional[Element] = None
    first = True
    for element in sequence:
        relation.add_element(element)
        if not first:
            relation.add(previous, element)
        previous = element
        first = False
    return relation


def total_order_relation(sequence: Iterable[Element]) -> Relation:
    """The *full* (transitively closed) total order of a duplicate-free
    sequence, assembled directly as bitset rows: element ``i``'s row is
    every later bit — O(n) row constructions instead of O(n²) ``add``
    calls.  This is the serial-front constructor of Theorem 1's proof."""
    nodes = list(sequence)
    n = len(nodes)
    if len(set(nodes)) != n:
        raise ValueError("total_order_relation: sequence has duplicates")
    full = (1 << n) - 1
    rows = [(full >> (i + 1)) << (i + 1) for i in range(n)]
    return Relation._from_state(nodes, rows, None, n * (n - 1) // 2)
