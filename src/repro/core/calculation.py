"""Calculations (Def. 14) and the feasibility test of Def. 16 step 1.

A *calculation* of a transaction ``T`` in a front is an isolated,
contiguous execution of ``T``'s operations consistent with the observed
order.  Def. 16 step 1 asks for a re-ordering of the front (changing
only commuting pairs, never pairs ordered by the strong input order) in
which **every** level-``i`` transaction appears as a calculation.

Such a re-ordering exists exactly when the *constraint digraph* —

* observed pairs (these are forced: they hold between conflicting or
  cross-schedule-dependent nodes),
* input orders between front nodes (a serial front must contain them,
  Def. 19, so they may not be flipped),
* each grouped transaction's intra-transaction weak order

— is acyclic inside every group **and** its quotient by the groups is
acyclic.  Acyclicity inside a group gives an internal execution order;
quotient acyclicity lets whole groups be laid out one after another,
which is precisely contiguity.  This is the classical reducibility
condition (cf. the isolated-tree test for nested transactions), and the
equivalence is property-tested against a brute-force search in
``tests/core/test_calculation_oracle.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.front import Front, ReductionFailure
from repro.core.observed import group_by_schedule
from repro.core.orders import Relation
from repro.core.system import CompositeSystem


@dataclass
class Grouping:
    """The level-``i`` grouping of a front.

    ``representative`` maps every front node to the transaction that
    absorbs it this step (or to itself when it survives).  ``groups``
    maps each absorbing transaction to its member nodes.
    """

    level: int
    representative: Dict[str, str]
    groups: Dict[str, List[str]]

    def rep(self, node: str) -> str:
        return self.representative[node]

    def new_nodes(self, old_nodes: Tuple[str, ...]) -> Tuple[str, ...]:
        """Front nodes after the reduction step, in deterministic order:
        survivors keep their position, each group collapses into its
        transaction at the position of its first member."""
        seen = set()
        ordered: List[str] = []
        for node in old_nodes:
            rep = self.representative[node]
            if rep not in seen:
                seen.add(rep)
                ordered.append(rep)
        return tuple(ordered)


def grouping_for_level(
    system: CompositeSystem, nodes: Tuple[str, ...], level: int
) -> Grouping:
    """Group the front nodes whose parent is a level-``level`` transaction."""
    representative: Dict[str, str] = {}
    groups: Dict[str, List[str]] = {}
    for node in nodes:
        if system.grouping_level(node) == level:
            parent = system.parent(node)
            representative[node] = parent
            groups.setdefault(parent, []).append(node)
        else:
            representative[node] = node
    return Grouping(level=level, representative=representative, groups=groups)


def calculation_constraints(
    system: CompositeSystem, front: Front, grouping: Grouping
) -> Relation:
    """The constraint digraph described in the module docstring.

    Observed pairs constrain the re-ordering only when the endpoints
    *generally conflict* (Def. 11): operations of a common schedule must
    actually conflict there — the schedule vouches for commutativity
    otherwise, so Def. 16 step 1 may swap them — while cross-schedule
    observed pairs always bind (pessimism).  Input orders always bind: a
    serial front must contain them (Def. 19).

    Built subtractively on the bitset rows: an observed pair between
    *different* schedules always generally conflicts (``observed.orders``
    holds by membership), so the constraints start as a whole-row copy of
    the observed order onto the front carrier and only the diagonal and
    the commuting same-schedule pairs are discarded — per-pair work is
    proportional to the (small) same-schedule blocks, not to the dense
    closed observed order.
    """
    constraints = front.observed.restricted_to(
        front.nodes, carrier=front.nodes
    )
    constraints.remove_self_loops()
    for sname, members in group_by_schedule(system, front.nodes).items():
        if len(members) < 2:
            continue
        schedule = system.schedule(sname)
        member_mask = constraints.mask_of(members)
        for a in members:
            present = constraints.row_bits(a) & member_mask
            if not present:
                continue
            keep = constraints.mask_of(schedule.conflict_neighbours(a))
            drop = present & ~keep
            if drop:
                constraints.discard_row_bits(a, drop)
    constraints = constraints.union(front.input_weak, front.input_strong)
    for parent, members in grouping.groups.items():
        schedule = system.schedule(system.schedule_of_transaction(parent))
        txn = schedule.transactions[parent]
        member_set = set(members)
        for a, b in txn.weak_order.pairs():
            if a in member_set and b in member_set:
                constraints.add(a, b)
    for node in front.nodes:
        constraints.add_element(node)
    return constraints


def find_isolation_failure(
    constraints: Relation, grouping: Grouping
) -> Optional[ReductionFailure]:
    """Check Def. 16 step 1 feasibility; return a failure witness or None."""
    for parent, members in grouping.groups.items():
        internal = constraints.restricted_to(members)
        cycle = internal.find_cycle()
        if cycle is not None:
            return ReductionFailure(
                level=grouping.level,
                stage="calculation",
                cycle=cycle,
                blocked=(parent,),
            )
    quotient = constraints.mapped(grouping.rep)
    cycle = quotient.find_cycle()
    if cycle is not None:
        blocked = tuple(node for node in cycle[:-1] if node in grouping.groups)
        return ReductionFailure(
            level=grouping.level,
            stage="calculation",
            cycle=cycle,
            blocked=blocked,
        )
    return None


def witness_sequence(
    constraints: Relation, grouping: Grouping, nodes: Tuple[str, ...]
) -> List[str]:
    """A concrete ``F**`` witness: a linearization of the front in which
    every group is contiguous and all constraints are respected.

    Only call after :func:`find_isolation_failure` returned ``None``.
    """
    quotient = constraints.mapped(grouping.rep)
    for node in nodes:
        quotient.add_element(grouping.rep(node))
    outer = quotient.topological_sort()
    sequence: List[str] = []
    for rep in outer:
        members = grouping.groups.get(rep)
        if members is None:
            sequence.append(rep)
        else:
            internal = constraints.restricted_to(members)
            for member in members:
                internal.add_element(member)
            sequence.extend(internal.topological_sort())
    return sequence


def is_contiguous(sequence: List[str], members: List[str]) -> bool:
    """True when ``members`` occupy consecutive positions of ``sequence``
    (diagnostic helper for tests and examples)."""
    positions = sorted(sequence.index(m) for m in members)
    return all(
        later == earlier + 1 for earlier, later in zip(positions, positions[1:])
    )
