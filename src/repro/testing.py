"""Hypothesis strategies for property-testing composite-transaction code.

Downstream users (and this library's own test suite) can draw random,
always-well-formed composite executions::

    from hypothesis import given
    from repro.testing import recorded_executions

    @given(recorded_executions())
    def test_my_invariant(recorded):
        assert my_checker(recorded.system) in (True, False)

Strategies produce :class:`repro.criteria.registry.RecordedExecution`
objects via the deterministic workload generator, so shrinking reduces
to shrinking a handful of integers — minimal failing examples stay
readable.
"""

from __future__ import annotations

from typing import Optional, Sequence

try:
    from hypothesis import strategies as st
except ImportError as err:  # pragma: no cover - test-time dependency
    raise ImportError(
        "repro.testing requires hypothesis (pip install hypothesis)"
    ) from err

from repro.criteria.registry import RecordedExecution
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    TopologySpec,
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)


@st.composite
def topologies(
    draw,
    kinds: Sequence[str] = ("stack", "fork", "join", "tree", "dag"),
    max_depth: int = 3,
    max_width: int = 4,
) -> TopologySpec:
    """A random configuration from the paper's taxonomy."""
    kind = draw(st.sampled_from(list(kinds)))
    if kind == "stack":
        return stack_topology(draw(st.integers(1, max_depth)))
    if kind == "fork":
        return fork_topology(draw(st.integers(1, max_width)))
    if kind == "join":
        return join_topology(draw(st.integers(1, max_width)))
    if kind == "tree":
        return tree_topology(
            draw(st.integers(1, max_depth)), draw(st.integers(1, 2))
        )
    return random_dag_topology(
        draw(st.integers(1, max_depth)),
        draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 10_000)),
    )


@st.composite
def workload_configs(
    draw,
    layouts: Sequence[str] = ("serial", "random", "perturbed"),
    max_roots: int = 5,
) -> WorkloadConfig:
    """Random generator knobs (seeded, hence shrinkable)."""
    return WorkloadConfig(
        seed=draw(st.integers(0, 100_000)),
        roots=draw(st.integers(1, max_roots)),
        conflict_probability=draw(
            st.sampled_from([0.0, 0.05, 0.15, 0.3, 0.5])
        ),
        intra_order_probability=draw(st.sampled_from([0.0, 0.3])),
        layout=draw(st.sampled_from(list(layouts))),
    )


@st.composite
def recorded_executions(
    draw,
    kinds: Sequence[str] = ("stack", "fork", "join", "tree", "dag"),
    layouts: Sequence[str] = ("serial", "random", "perturbed"),
    topology: Optional[TopologySpec] = None,
) -> RecordedExecution:
    """A random well-formed composite execution (system + layout)."""
    spec = topology if topology is not None else draw(topologies(kinds))
    config = draw(workload_configs(layouts))
    return generate(spec, config)


@st.composite
def composite_systems(draw, **kwargs):
    """Just the system, when the temporal layout is not needed."""
    return draw(recorded_executions(**kwargs)).system
