"""Online (streaming) Comp-C checking.

This package turns the batch Def.-16 reduction into a service that
watches an execution *as it happens*:

- :mod:`repro.stream.assembler` folds the typed event log of
  :mod:`repro.io.eventlog` into the committed composite system after
  every commit;
- :mod:`repro.stream.checker` maintains the level-0 observed order
  incrementally across commits and re-runs the reduction with the
  maintained front injected, emitting a live verdict that flips to
  REJECTED the moment a cycle closes;
- :mod:`repro.stream.tail` tails a growing JSONL event log with
  torn-tail tolerance (the ``composite-tx watch`` transport).

See ``docs/STREAMING.md`` for semantics and the equivalence argument.
"""

from repro.stream.assembler import CommitDelta, StreamAssembler
from repro.stream.checker import (
    IncrementalChecker,
    StreamResult,
    StreamVerdict,
    WATCH_STREAM,
)
from repro.stream.tail import EventLogTail, TailedEvent

__all__ = [
    "CommitDelta",
    "EventLogTail",
    "IncrementalChecker",
    "StreamAssembler",
    "StreamResult",
    "StreamVerdict",
    "TailedEvent",
    "WATCH_STREAM",
]
