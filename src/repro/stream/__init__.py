"""Online (streaming) Comp-C checking.

This package turns the batch Def.-16 reduction into a service that
watches an execution *as it happens*:

- :mod:`repro.stream.assembler` folds the typed event log of
  :mod:`repro.io.eventlog` into the committed composite system after
  every commit — incrementally, through a persistent builder that
  pays per commit for the declarations the commit activated;
- :mod:`repro.stream.checker` maintains the level-0 observed order
  incrementally across commits and re-runs the reduction with the
  maintained front injected, emitting a live verdict that flips to
  REJECTED the moment a cycle closes;
- :mod:`repro.stream.tail` tails a growing JSONL event log with
  torn-tail tolerance (the ``composite-tx watch`` transport);
- :mod:`repro.stream.snapshot` freezes the whole checker into an
  atomically written, fingerprint-bound snapshot and restores it, so
  a killed watch resumes by replaying only the unseen log suffix;
- :mod:`repro.stream.supervisor` runs the watch loop under the batch
  layer's supervision contract: seeded-backoff restarts from the
  latest valid snapshot, and poison-event quarantine.

See ``docs/STREAMING.md`` for semantics, the equivalence argument,
and the snapshot/recovery contract; ``docs/RESILIENCE.md`` for how
supervision composes with the rest of the resilience toolkit.
"""

from repro.stream.assembler import CommitDelta, StreamAssembler
from repro.stream.checker import (
    IncrementalChecker,
    StreamResult,
    StreamVerdict,
    WATCH_STREAM,
)
from repro.stream.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotWriter,
    read_snapshot,
    restore_checker,
    restore_tail,
    snapshot_document,
    verify_snapshot,
    write_snapshot,
)
from repro.stream.supervisor import (
    PoisonEvent,
    StreamSupervisor,
    SupervisedWatch,
)
from repro.stream.tail import EventLogTail, TailedEvent

__all__ = [
    "CommitDelta",
    "EventLogTail",
    "IncrementalChecker",
    "PoisonEvent",
    "SNAPSHOT_VERSION",
    "SnapshotWriter",
    "StreamAssembler",
    "StreamResult",
    "StreamSupervisor",
    "StreamVerdict",
    "SupervisedWatch",
    "TailedEvent",
    "WATCH_STREAM",
    "read_snapshot",
    "restore_checker",
    "restore_tail",
    "snapshot_document",
    "verify_snapshot",
    "write_snapshot",
]
