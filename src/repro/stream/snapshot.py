"""Crash-safe checker snapshots: freeze a live watch, resume the suffix.

A :data:`SNAPSHOT_VERSION`-stamped snapshot document captures the
complete resumable state of a ``composite-tx watch``: the
:class:`~repro.stream.checker.IncrementalChecker` (closed level-0
observed order, seeded pairs, sticky verdict and witness, batched
counters), its :class:`~repro.stream.assembler.StreamAssembler`
(staged declarations with stable ids, root lifecycle, arrival log,
persistent-builder application order), and the
:class:`~repro.stream.tail.EventLogTail` position (byte offset and
line number).  State serializes through the typed checkpoint codec
(:mod:`repro.analysis.checkpoint`) — the packed-bitset relations are
stored row-for-row, so a restored checker is *internally* identical to
the live one, and replaying the unseen log suffix reproduces the
uninterrupted run's verdict, witness, and canonical telemetry byte for
byte.

Two digests make the document trustworthy:

* a **self digest** over the canonical JSON of the document body —
  a torn or bit-flipped snapshot is rejected as corrupt (``CTX503``)
  instead of resuming garbage state;
* a **log-prefix fingerprint** — the SHA-256 of the first ``offset``
  bytes of the event log at snapshot time.  Resume re-hashes the same
  prefix of the log it is pointed at; disagreement (``CTX501``) means
  the log was rewritten, rotated, or diverged, so the snapshot
  summarizes bytes that no longer exist and must not be trusted.  A
  log now *shorter* than the snapshot offset is unverifiable for the
  same reason.

Documents are written with the checkpoint layer's
write-fsync-rename discipline (:func:`repro.obs.atomic_write_text`):
a SIGKILL at any instant leaves the previous complete snapshot on
disk, never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Union

from repro.analysis.checkpoint import decode_value, encode_value
from repro.exceptions import SnapshotError
from repro.io.eventlog import log_prefix_digest
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.obs import atomic_write_text
from repro.obs.telemetry import Telemetry
from repro.stream.checker import IncrementalChecker
from repro.stream.tail import EventLogTail

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotWriter",
    "read_snapshot",
    "restore_checker",
    "restore_tail",
    "snapshot_document",
    "verify_snapshot",
    "write_snapshot",
]

#: bump when the snapshot document shape changes incompatibly
SNAPSHOT_VERSION = 1


def _canonical(document: Dict[str, Any]) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _self_digest(document: Dict[str, Any]) -> str:
    body = {k: v for k, v in document.items() if k != "digest"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def _corrupt(path: str, message: str) -> SnapshotError:
    return SnapshotError(
        f"{path}: {message}",
        diagnostic=Diagnostic(
            code="CTX503",
            severity=Severity.ERROR,
            location=Location(file=path),
            message=message,
            fix_hint="take a fresh snapshot; this one cannot be trusted",
        ),
    )


# ----------------------------------------------------------------------
# producing snapshots
# ----------------------------------------------------------------------
def snapshot_document(
    checker: IncrementalChecker, tail: EventLogTail
) -> Dict[str, Any]:
    """Freeze the checker + tail into a snapshot document.

    Raises :class:`~repro.exceptions.SnapshotError` when the log's
    consumed prefix cannot be fingerprinted (the file vanished or
    shrank between the poll and the snapshot) — an unfingerprinted
    snapshot could never be verified at resume, so it is never
    written.
    """
    digest = log_prefix_digest(tail.path, tail.offset)
    if digest is None:
        raise _corrupt(
            tail.path,
            f"cannot fingerprint the first {tail.offset} bytes of the "
            "event log (file missing or shorter than the consumed "
            "offset)",
        )
    document: Dict[str, Any] = {
        "v": SNAPSHOT_VERSION,
        "log": {
            "path": tail.path,
            "offset": tail.offset,
            "line": tail.line,
            "digest": digest,
        },
        "state": encode_value(checker.snapshot_state()),
    }
    document["digest"] = _self_digest(document)
    return document


def write_snapshot(
    path: Union[str, "os.PathLike[str]"],
    checker: IncrementalChecker,
    tail: EventLogTail,
) -> Dict[str, Any]:
    """Atomically write a snapshot of ``checker``/``tail`` to ``path``
    and return the document."""
    document = snapshot_document(checker, tail)
    atomic_write_text(str(path), _canonical(document) + "\n")
    return document


class SnapshotWriter:
    """Cadenced snapshot producer for the watch loop.

    ``maybe(checker, tail)`` writes a snapshot whenever at least
    ``every`` events have been ingested since the last write (and on
    the first call that has consumed anything).  Each write is spanned
    as ``stream.snapshot`` on the checker's ``"watch"`` telemetry
    stream — dropped from canonical dumps, so snapshotting never
    perturbs the byte-identity contract.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        *,
        every: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if every < 1:
            raise ValueError("snapshot cadence must be >= 1 event")
        self.path = str(path)
        self.every = every
        self.telemetry = telemetry
        self.written = 0
        self._last_events = 0
        self.last_document: Optional[Dict[str, Any]] = None

    def maybe(
        self, checker: IncrementalChecker, tail: EventLogTail
    ) -> Optional[Dict[str, Any]]:
        events = checker.verdict().events
        if events - self._last_events < self.every:
            return None
        return self.write(checker, tail)

    def write(
        self, checker: IncrementalChecker, tail: EventLogTail
    ) -> Dict[str, Any]:
        events = checker.verdict().events
        telemetry = (
            self.telemetry if self.telemetry is not None
            else checker.telemetry
        )
        with telemetry.span(
            "stream.snapshot", events=events, offset=tail.offset
        ):
            document = write_snapshot(self.path, checker, tail)
        self._last_events = events
        self.written += 1
        self.last_document = document
        return document


# ----------------------------------------------------------------------
# consuming snapshots
# ----------------------------------------------------------------------
def read_snapshot(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load, version-check, and integrity-check a snapshot document.

    Unreadable files, non-JSON text, wrong schema versions, and self
    digest mismatches all raise :class:`~repro.exceptions.SnapshotError`
    carrying the ``CTX503`` diagnostic.
    """
    name = str(path)
    try:
        with open(name, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError as err:
        raise _corrupt(name, "no such snapshot") from err
    except (OSError, json.JSONDecodeError) as err:
        raise _corrupt(name, f"unreadable snapshot ({err})") from err
    if not isinstance(document, dict):
        raise _corrupt(name, "snapshot is not a JSON object")
    version = document.get("v")
    if version != SNAPSHOT_VERSION:
        raise _corrupt(
            name,
            f"snapshot schema version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})",
        )
    recorded = document.get("digest")
    if recorded != _self_digest(document):
        raise _corrupt(
            name,
            "snapshot self-digest mismatch (torn or corrupted write)",
        )
    log = document.get("log")
    if not (
        isinstance(log, dict)
        and isinstance(log.get("offset"), int)
        and isinstance(log.get("line"), int)
        and isinstance(log.get("digest"), str)
    ):
        raise _corrupt(name, "snapshot log section is malformed")
    return document


def verify_snapshot(
    document: Dict[str, Any],
    log_path: Union[str, "os.PathLike[str]"],
    *,
    snapshot_path: str = "<snapshot>",
) -> None:
    """Check the snapshot's log-prefix fingerprint against ``log_path``.

    Raises :class:`~repro.exceptions.SnapshotError` with the ``CTX501``
    diagnostic when the first ``offset`` bytes of the log no longer
    hash to the snapshot's recorded fingerprint — including when the
    log is now shorter than ``offset`` (nothing left to verify
    against).
    """
    log = document["log"]
    offset = int(log["offset"])
    recorded = str(log["digest"])
    actual = log_prefix_digest(log_path, offset)
    if actual == recorded:
        return
    reason = (
        f"log is shorter than the snapshot offset {offset}"
        if actual is None
        else "log prefix bytes differ from the snapshot's"
    )
    raise SnapshotError(
        f"{snapshot_path}: fingerprint disagrees with {log_path} "
        f"({reason}); the log diverged, rotated, or was rewritten",
        diagnostic=Diagnostic(
            code="CTX501",
            severity=Severity.ERROR,
            location=Location(file=str(log_path)),
            message=(
                f"prefix digest over {offset} bytes is "
                f"{actual!r}, snapshot recorded {recorded!r}"
            ),
            fix_hint=(
                "re-watch the log from offset 0, or resume from a "
                "snapshot taken against this log"
            ),
        ),
    )


def restore_checker(
    document: Dict[str, Any],
    *,
    telemetry: Optional[Telemetry] = None,
) -> IncrementalChecker:
    """Rebuild the checker a snapshot froze.

    The checker's observed-order options ride inside the serialized
    state's dataclasses where relevant; the checker itself is
    constructed with default options (the only configuration the
    watch command runs), then overwritten field-for-field by
    :meth:`~repro.stream.checker.IncrementalChecker.restore_state`.
    """
    state = decode_value(document["state"])
    if not isinstance(state, dict):
        raise _corrupt("<snapshot>", "snapshot state is not a mapping")
    checker = IncrementalChecker(telemetry=telemetry)
    try:
        checker.restore_state(state)
    except (KeyError, TypeError, ValueError, AssertionError) as err:
        raise _corrupt(
            "<snapshot>", f"snapshot state does not restore ({err})"
        ) from err
    return checker


def restore_tail(
    document: Dict[str, Any],
    log_path: Union[str, "os.PathLike[str]"],
) -> EventLogTail:
    """A tailer positioned exactly where the snapshot left off."""
    log = document["log"]
    tail = EventLogTail(log_path)
    tail.restore(int(log["offset"]), int(log["line"]))
    return tail
