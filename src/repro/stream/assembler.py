"""Fold a typed event stream into the committed composite system.

The assembler is the state machine between the wire format
(:mod:`repro.io.eventlog`) and the model layer: it stages declarations
under their roots, tracks root lifecycle (begin / commit / abort), and
on demand *replays* every activated declaration — in original arrival
order — through a fresh :class:`~repro.core.builder.SystemBuilder`.

Replaying in arrival order is what makes the streaming path
byte-compatible with the batch path: the builder interns schedules,
transactions and operations in call order, so a log produced by
:func:`repro.io.eventlog.events_from_recorded` reassembles into a
system whose element orders (and hence every packed-bitset
``Relation``, witness, and telemetry byte downstream) are identical to
the original's.

Activation rule: a ``txn`` declaration folds in when its root commits;
a ``conflict``/``order`` declaration folds in once *every* node it
mentions belongs to a committed root.  Because declarations only ever
activate (commits are permanent; aborts discard whole staged roots
before they commit), the committed system grows monotonically — the
property the checker's incremental observed order relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.builder import SystemBuilder
from repro.criteria.registry import RecordedExecution
from repro.exceptions import ModelError, ScheduleAxiomError, StreamError
from repro.io.eventlog import Event

__all__ = ["CommitDelta", "StreamAssembler"]


@dataclass(frozen=True)
class CommitDelta:
    """What a ``commit`` event added to the committed system."""

    root: str
    ordinal: int
    txns: Tuple[str, ...]


@dataclass
class _Arrival:
    schedule: str
    root: str
    op: str
    item: Optional[str]
    mode: Optional[str]


class StreamAssembler:
    """Incremental event-log consumer (see module docstring)."""

    def __init__(self) -> None:
        self.derive: Optional[str] = None
        self._decls: List[Event] = []
        self._root_of: Dict[str, str] = {}
        self._committed: Set[str] = set()
        self._begun: Set[str] = set()
        self._commit_order: List[str] = []
        self._arrivals: List[_Arrival] = []
        self._ended = False

    # ------------------------------------------------------------------
    @property
    def committed_roots(self) -> Tuple[str, ...]:
        return tuple(self._commit_order)

    @property
    def ended(self) -> bool:
        return self._ended

    # ------------------------------------------------------------------
    def apply(self, event: Event) -> Optional[CommitDelta]:
        """Consume one event; returns a delta for ``commit`` events."""
        if self._ended:
            raise StreamError(
                f"event {event.kind!r} after the end of stream"
            )
        if self.derive is None and event.kind != "log":
            raise StreamError(
                f"event {event.kind!r} before the 'log' header"
            )
        handler = getattr(self, f"_apply_{event.kind}")
        result = handler(event)
        return result  # type: ignore[no-any-return]

    def _apply_log(self, event: Event) -> None:
        if self.derive is not None:
            raise StreamError("duplicate 'log' header")
        self.derive = event.derive

    def _apply_txn(self, event: Event) -> None:
        assert event.root is not None and event.txn is not None
        known = self._root_of.get(event.txn)
        if known is not None and known != event.root:
            raise StreamError(
                f"transaction {event.txn!r} declared under two roots "
                f"({known!r} and {event.root!r})"
            )
        if event.root in self._committed:
            raise StreamError(
                f"declaration for already-committed root {event.root!r}"
            )
        self._root_of[event.txn] = event.root
        for op in event.ops:
            self._root_of[op] = event.root
        self._decls.append(event)

    def _apply_conflict(self, event: Event) -> None:
        self._decls.append(event)

    _apply_order = _apply_conflict

    def _apply_begin(self, event: Event) -> None:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(
                f"begin of already-committed root {event.root!r}"
            )
        if event.root in self._begun:
            # A retry: the previous (unfinished) attempt is discarded,
            # recorder-style.  Declarations staged *before* the first
            # begin (the converter's layout) are untouched.
            self._discard_root(event.root)
        self._begun.add(event.root)

    def _apply_access(self, event: Event) -> None:
        assert (
            event.root is not None
            and event.schedule is not None
            and event.op is not None
        )
        if event.root in self._committed:
            raise StreamError(
                f"operation {event.op!r} for already-committed root "
                f"{event.root!r}"
            )
        self._arrivals.append(
            _Arrival(
                schedule=event.schedule,
                root=event.root,
                op=event.op,
                item=event.item,
                mode=event.mode,
            )
        )

    _apply_call = _apply_access

    def _apply_commit(self, event: Event) -> CommitDelta:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(f"duplicate commit of root {event.root!r}")
        txns = tuple(
            d.txn
            for d in self._decls
            if d.kind == "txn" and d.root == event.root and d.txn is not None
        )
        if not txns:
            raise StreamError(
                f"commit of root {event.root!r} with no staged transactions"
            )
        self._committed.add(event.root)
        self._commit_order.append(event.root)
        return CommitDelta(
            root=event.root, ordinal=len(self._commit_order), txns=txns
        )

    def _apply_abort(self, event: Event) -> None:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(f"abort of committed root {event.root!r}")
        self._discard_root(event.root)
        self._begun.discard(event.root)

    def _apply_end(self, event: Event) -> None:
        self._ended = True

    # ------------------------------------------------------------------
    def _discard_root(self, root: str) -> None:
        """Drop the root's staged attempt (abort, or begin of a retry)."""
        kept: List[Event] = []
        for decl in self._decls:
            if decl.kind == "txn" and decl.root == root:
                if decl.txn is not None:
                    self._root_of.pop(decl.txn, None)
                for op in decl.ops:
                    self._root_of.pop(op, None)
            else:
                kept.append(decl)
        self._decls = kept
        self._arrivals = [a for a in self._arrivals if a.root != root]

    def _active(self, decl: Event) -> bool:
        """A conflict/order pair activates when both mentioned nodes
        belong to committed roots."""
        for node in (decl.a, decl.b):
            assert node is not None
            root = self._root_of.get(node)
            if root is None or root not in self._committed:
                return False
        return True

    # ------------------------------------------------------------------
    def executions(self) -> Dict[str, List[str]]:
        """Per-schedule arrival sequences of committed operations."""
        result: Dict[str, List[str]] = {}
        for arrival in self._arrivals:
            if arrival.root in self._committed:
                result.setdefault(arrival.schedule, []).append(arrival.op)
        return result

    def build(self) -> Optional[RecordedExecution]:
        """The committed composite system, or ``None`` before the first
        commit.

        Mid-stream prefixes may violate validation-only axioms the
        finished system satisfies (e.g. an unordered conflict whose
        ordering pair has not activated yet); those fall back to
        ``validate=False`` exactly like the simulator's recorder does.
        A cyclic weak order, by contrast, can never appear in a prefix
        of a well-formed log (closed suborders of an acyclic order are
        acyclic), so :class:`~repro.exceptions.CycleError` propagates.
        """
        if not self._committed:
            return None
        builder = SystemBuilder()
        for decl in self._decls:
            if decl.kind == "txn":
                if decl.root not in self._committed:
                    continue
                assert decl.schedule is not None and decl.txn is not None
                builder.transaction(
                    decl.txn,
                    decl.schedule,
                    decl.ops,
                    weak_order=decl.weak,
                    strong_order=decl.strong,
                )
            elif not self._active(decl):
                continue
            elif decl.kind == "conflict":
                assert (
                    decl.schedule is not None
                    and decl.a is not None
                    and decl.b is not None
                )
                builder.conflict(decl.schedule, decl.a, decl.b)
            else:
                assert (
                    decl.schedule is not None
                    and decl.order_kind is not None
                    and decl.a is not None
                    and decl.b is not None
                )
                getattr(builder, decl.order_kind)(
                    decl.schedule, decl.a, decl.b
                )
        if self.derive == "temporal":
            self._derive_temporal(builder)
        try:
            system = builder.build()
        except (ScheduleAxiomError, ModelError):
            system = builder.build(validate=False)
        return RecordedExecution(system=system, executions=self.executions())

    def _derive_temporal(self, builder: SystemBuilder) -> None:
        """Temporal mode: derive conflicts from item/mode overlap and
        weak output orders from arrival order (recorder semantics)."""
        sequences = self.executions()
        by_schedule: Dict[str, List[_Arrival]] = {}
        for arrival in self._arrivals:
            if arrival.root in self._committed:
                by_schedule.setdefault(arrival.schedule, []).append(arrival)
        for sname, arrivals in by_schedule.items():
            for i, first in enumerate(arrivals):
                if first.item is None:
                    continue
                for second in arrivals[i + 1 :]:
                    if (
                        second.item == first.item
                        and second.op != first.op
                        and self._parent(first.op) != self._parent(second.op)
                        and "w" in ((first.mode or "") + (second.mode or ""))
                    ):
                        builder.conflict(sname, first.op, second.op)
        for sname, sequence in sequences.items():
            builder.executed(sname, sequence, mode="conflicts")

    def _parent(self, op: str) -> Optional[str]:
        for decl in self._decls:
            if decl.kind == "txn" and op in decl.ops:
                return decl.txn
        return None
