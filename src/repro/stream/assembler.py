"""Fold a typed event stream into the committed composite system.

The assembler is the state machine between the wire format
(:mod:`repro.io.eventlog`) and the model layer: it stages declarations
under their roots, tracks root lifecycle (begin / commit / abort), and
materializes the committed composite system on demand.

Two build paths share one activation rule:

:meth:`StreamAssembler.build`
    replays every activated declaration — in original arrival order —
    through a fresh :class:`~repro.core.builder.SystemBuilder`.
    Replaying in arrival order is what makes the streaming path
    byte-compatible with the batch path: the builder interns
    schedules, transactions and operations in call order, so a log
    produced by :func:`repro.io.eventlog.events_from_recorded`
    reassembles into a system whose element orders (and hence every
    packed-bitset ``Relation``, witness, and telemetry byte
    downstream) are identical to the original's.  ``finalize`` uses
    this path, so the certified verdict stays byte-pinned.

:meth:`StreamAssembler.build_incremental`
    maintains one *persistent* builder across commits and only feeds
    it the declarations each commit newly activated, making
    per-commit assembly cost O(changes) instead of O(all
    declarations).  The result is byte-identical to a full rebuild
    because a :class:`~repro.core.schedule.Schedule` interns its
    relation carriers up front from transaction order — pair *sets*
    are order-insensitive — so only the per-schedule transaction
    application order matters, and that is guarded: a transaction
    activating *out of declaration order* within its schedule (a
    later-staged transaction committing first) triggers one full
    rebuild of the persistent builder, after which incremental
    appends resume.  Logs laid out by
    :func:`~repro.io.eventlog.events_from_recorded` (and its
    :func:`~repro.io.eventlog.interleave_by_commit` live re-layout)
    activate in declaration order per schedule, so the guard never
    fires on them.  Temporal-derive logs always take the full
    rebuild: later commits splice arrivals *into* earlier sequences,
    so nothing about them is append-only.

Activation rule: a ``txn`` declaration folds in when its root commits;
a ``conflict``/``order`` declaration folds in once *every* node it
mentions belongs to a committed root.  Because declarations only ever
activate (commits are permanent; aborts discard whole staged roots
before they commit), the committed system grows monotonically — the
property the checker's incremental observed order relies on, and the
reason the persistent builder never has to *remove* anything.

Declarations carry stable monotone integer ids (list positions shift
when an abort discards a staged root; ids never do), which is what the
snapshot layer (:mod:`repro.stream.snapshot`) records so a restored
assembler replays the exact application order of the uninterrupted
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.builder import SystemBuilder
from repro.criteria.registry import RecordedExecution
from repro.exceptions import ModelError, ScheduleAxiomError, StreamError
from repro.io.eventlog import Event, event_from_dict, event_to_dict

__all__ = ["CommitDelta", "StreamAssembler"]


@dataclass(frozen=True)
class CommitDelta:
    """What a ``commit`` event added to the committed system."""

    root: str
    ordinal: int
    txns: Tuple[str, ...]


@dataclass
class _Arrival:
    schedule: str
    root: str
    op: str
    item: Optional[str]
    mode: Optional[str]


@dataclass(frozen=True)
class _Decl:
    """One staged declaration with its stable id."""

    ident: int
    event: Event


class StreamAssembler:
    """Incremental event-log consumer (see module docstring)."""

    def __init__(self) -> None:
        self.derive: Optional[str] = None
        self._decls: List[_Decl] = []
        self._next_decl = 0
        self._root_of: Dict[str, str] = {}
        self._committed: Set[str] = set()
        self._begun: Set[str] = set()
        self._commit_order: List[str] = []
        self._arrivals: List[_Arrival] = []
        self._ended = False
        # -- persistent-builder state (build_incremental) --------------
        #: the maintained builder; ``None`` means "materialize on next
        #: use by replaying ``_applied_ids``" (fresh, restored from a
        #: snapshot, or invalidated by an out-of-order activation)
        self._builder: Optional[SystemBuilder] = None
        #: decl ids in the order they were fed to the builder
        self._applied_ids: List[int] = []
        self._applied: Set[int] = set()
        #: per schedule, the largest txn decl id applied — the
        #: byte-identity guard (see module docstring)
        self._txn_watermark: Dict[str, int] = {}
        #: full rebuilds forced by out-of-order activation
        self.rebuilds = 0
        self._cache: Optional[Tuple[Tuple[int, int], RecordedExecution]] = (
            None
        )

    # ------------------------------------------------------------------
    @property
    def committed_roots(self) -> Tuple[str, ...]:
        return tuple(self._commit_order)

    @property
    def ended(self) -> bool:
        return self._ended

    # ------------------------------------------------------------------
    def apply(self, event: Event) -> Optional[CommitDelta]:
        """Consume one event; returns a delta for ``commit`` events."""
        if self._ended:
            raise StreamError(
                f"event {event.kind!r} after the end of stream"
            )
        if self.derive is None and event.kind != "log":
            raise StreamError(
                f"event {event.kind!r} before the 'log' header"
            )
        handler = getattr(self, f"_apply_{event.kind}")
        result = handler(event)
        return result  # type: ignore[no-any-return]

    def _stage(self, event: Event) -> None:
        self._decls.append(_Decl(ident=self._next_decl, event=event))
        self._next_decl += 1

    def _apply_log(self, event: Event) -> None:
        if self.derive is not None:
            raise StreamError("duplicate 'log' header")
        self.derive = event.derive

    def _apply_txn(self, event: Event) -> None:
        assert event.root is not None and event.txn is not None
        known = self._root_of.get(event.txn)
        if known is not None and known != event.root:
            raise StreamError(
                f"transaction {event.txn!r} declared under two roots "
                f"({known!r} and {event.root!r})"
            )
        if event.root in self._committed:
            raise StreamError(
                f"declaration for already-committed root {event.root!r}"
            )
        self._root_of[event.txn] = event.root
        for op in event.ops:
            self._root_of[op] = event.root
        self._stage(event)

    def _apply_conflict(self, event: Event) -> None:
        self._stage(event)

    _apply_order = _apply_conflict

    def _apply_begin(self, event: Event) -> None:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(
                f"begin of already-committed root {event.root!r}"
            )
        if event.root in self._begun:
            # A retry: the previous (unfinished) attempt is discarded,
            # recorder-style.  Declarations staged *before* the first
            # begin (the converter's layout) are untouched.
            self._discard_root(event.root)
        self._begun.add(event.root)

    def _apply_access(self, event: Event) -> None:
        assert (
            event.root is not None
            and event.schedule is not None
            and event.op is not None
        )
        if event.root in self._committed:
            raise StreamError(
                f"operation {event.op!r} for already-committed root "
                f"{event.root!r}"
            )
        self._arrivals.append(
            _Arrival(
                schedule=event.schedule,
                root=event.root,
                op=event.op,
                item=event.item,
                mode=event.mode,
            )
        )

    _apply_call = _apply_access

    def _apply_commit(self, event: Event) -> CommitDelta:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(f"duplicate commit of root {event.root!r}")
        txns = tuple(
            d.event.txn
            for d in self._decls
            if d.event.kind == "txn"
            and d.event.root == event.root
            and d.event.txn is not None
        )
        if not txns:
            raise StreamError(
                f"commit of root {event.root!r} with no staged transactions"
            )
        self._committed.add(event.root)
        self._commit_order.append(event.root)
        return CommitDelta(
            root=event.root, ordinal=len(self._commit_order), txns=txns
        )

    def _apply_abort(self, event: Event) -> None:
        assert event.root is not None
        if event.root in self._committed:
            raise StreamError(f"abort of committed root {event.root!r}")
        self._discard_root(event.root)
        self._begun.discard(event.root)

    def _apply_end(self, event: Event) -> None:
        self._ended = True

    # ------------------------------------------------------------------
    def _discard_root(self, root: str) -> None:
        """Drop the root's staged attempt (abort, or begin of a retry).

        Only *uncommitted* roots can reach here (commit is permanent),
        and activation implies a committed root, so a discarded
        declaration was never applied to the persistent builder —
        discarding never invalidates it.
        """
        kept: List[_Decl] = []
        for decl in self._decls:
            event = decl.event
            if event.kind == "txn" and event.root == root:
                if event.txn is not None:
                    self._root_of.pop(event.txn, None)
                for op in event.ops:
                    self._root_of.pop(op, None)
            else:
                kept.append(decl)
        self._decls = kept
        self._arrivals = [a for a in self._arrivals if a.root != root]

    def _active(self, decl: Event) -> bool:
        """A conflict/order pair activates when both mentioned nodes
        belong to committed roots."""
        for node in (decl.a, decl.b):
            assert node is not None
            root = self._root_of.get(node)
            if root is None or root not in self._committed:
                return False
        return True

    # ------------------------------------------------------------------
    def executions(self) -> Dict[str, List[str]]:
        """Per-schedule arrival sequences of committed operations."""
        result: Dict[str, List[str]] = {}
        for arrival in self._arrivals:
            if arrival.root in self._committed:
                result.setdefault(arrival.schedule, []).append(arrival.op)
        return result

    # ------------------------------------------------------------------
    def _apply_decl(self, builder: SystemBuilder, decl: Event) -> None:
        """Feed one activated declaration to a builder."""
        if decl.kind == "txn":
            assert decl.schedule is not None and decl.txn is not None
            builder.transaction(
                decl.txn,
                decl.schedule,
                decl.ops,
                weak_order=decl.weak,
                strong_order=decl.strong,
            )
        elif decl.kind == "conflict":
            assert (
                decl.schedule is not None
                and decl.a is not None
                and decl.b is not None
            )
            builder.conflict(decl.schedule, decl.a, decl.b)
        else:
            assert (
                decl.schedule is not None
                and decl.order_kind is not None
                and decl.a is not None
                and decl.b is not None
            )
            getattr(builder, decl.order_kind)(decl.schedule, decl.a, decl.b)

    def _finish_build(self, builder: SystemBuilder) -> RecordedExecution:
        """Assemble, falling back to ``validate=False`` on prefixes.

        Mid-stream prefixes may violate validation-only axioms the
        finished system satisfies (e.g. an unordered conflict whose
        ordering pair has not activated yet); those fall back exactly
        like the simulator's recorder does.  A cyclic weak order, by
        contrast, can never appear in a prefix of a well-formed log
        (closed suborders of an acyclic order are acyclic), so
        :class:`~repro.exceptions.CycleError` propagates.
        """
        try:
            system = builder.build()
        except (ScheduleAxiomError, ModelError):
            system = builder.build(validate=False)
        return RecordedExecution(system=system, executions=self.executions())

    def build(self) -> Optional[RecordedExecution]:
        """The committed composite system via a *full* replay of every
        activated declaration in declaration order, or ``None`` before
        the first commit.  The byte-pinned certification path."""
        if not self._committed:
            return None
        builder = SystemBuilder()
        for decl in self._decls:
            event = decl.event
            if event.kind == "txn":
                if event.root not in self._committed:
                    continue
            elif not self._active(event):
                continue
            self._apply_decl(builder, event)
        if self.derive == "temporal":
            self._derive_temporal(builder)
        return self._finish_build(builder)

    # ------------------------------------------------------------------
    def _reset_builder(self) -> None:
        self._builder = None
        self._applied_ids = []
        self._applied = set()
        self._txn_watermark = {}
        self._cache = None

    def _materialize_builder(self) -> SystemBuilder:
        """The persistent builder, replaying the recorded application
        order when it is not live (fresh assembler, snapshot restore,
        or a just-invalidated out-of-order rebuild)."""
        if self._builder is not None:
            return self._builder
        builder = SystemBuilder()
        if self._applied_ids:
            by_id = {d.ident: d for d in self._decls}
            for ident in self._applied_ids:
                event = by_id[ident].event
                self._apply_decl(builder, event)
                if event.kind == "txn":
                    assert event.schedule is not None
                    previous = self._txn_watermark.get(event.schedule, -1)
                    self._txn_watermark[event.schedule] = max(
                        previous, ident
                    )
        self._builder = builder
        return builder

    def build_incremental(self) -> Optional[RecordedExecution]:
        """The committed composite system via the persistent builder:
        per-commit cost proportional to the declarations the commit
        activated, byte-identical to :meth:`build` (see module
        docstring for why, and for the out-of-order guard)."""
        if not self._committed:
            return None
        if self.derive == "temporal":
            return self.build()
        for _attempt in range(2):
            builder = self._materialize_builder()
            fresh: List[_Decl] = []
            out_of_order = False
            for decl in self._decls:
                if decl.ident in self._applied:
                    continue
                event = decl.event
                if event.kind == "txn":
                    if event.root not in self._committed:
                        continue
                    assert event.schedule is not None
                    if decl.ident < self._txn_watermark.get(
                        event.schedule, -1
                    ):
                        out_of_order = True
                        break
                elif not self._active(event):
                    continue
                fresh.append(decl)
            if not out_of_order:
                break
            # A later-staged transaction committed before an
            # earlier-staged one of the same schedule: appending would
            # intern it out of declaration order and break byte
            # identity with the full rebuild.  Pay one full replay.
            self._reset_builder()
            self.rebuilds += 1
        for decl in fresh:
            event = decl.event
            self._apply_decl(builder, event)
            self._applied.add(decl.ident)
            self._applied_ids.append(decl.ident)
            if event.kind == "txn":
                assert event.schedule is not None
                self._txn_watermark[event.schedule] = decl.ident
        key = (len(self._applied_ids), len(self._commit_order))
        if self._cache is not None and self._cache[0] == key:
            return self._cache[1]
        recorded = self._finish_build(builder)
        self._cache = (key, recorded)
        return recorded

    # ------------------------------------------------------------------
    def _derive_temporal(self, builder: SystemBuilder) -> None:
        """Temporal mode: derive conflicts from item/mode overlap and
        weak output orders from arrival order (recorder semantics)."""
        sequences = self.executions()
        by_schedule: Dict[str, List[_Arrival]] = {}
        for arrival in self._arrivals:
            if arrival.root in self._committed:
                by_schedule.setdefault(arrival.schedule, []).append(arrival)
        for sname, arrivals in by_schedule.items():
            for i, first in enumerate(arrivals):
                if first.item is None:
                    continue
                for second in arrivals[i + 1 :]:
                    if (
                        second.item == first.item
                        and second.op != first.op
                        and self._parent(first.op) != self._parent(second.op)
                        and "w" in ((first.mode or "") + (second.mode or ""))
                    ):
                        builder.conflict(sname, first.op, second.op)
        for sname, sequence in sequences.items():
            builder.executed(sname, sequence, mode="conflicts")

    def _parent(self, op: str) -> Optional[str]:
        for decl in self._decls:
            if decl.event.kind == "txn" and op in decl.event.ops:
                return decl.event.txn
        return None

    # ------------------------------------------------------------------
    # snapshot support (driven by repro.stream.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """The assembler's full state as a JSON-shaped document.

        ``applied`` records the persistent builder's application order
        by decl id — a restored assembler replays it lazily, so its
        builder (and every byte downstream) matches the uninterrupted
        run's.
        """
        return {
            "derive": self.derive,
            "next_decl": self._next_decl,
            "decls": [
                [d.ident, event_to_dict(d.event)] for d in self._decls
            ],
            "root_of": dict(self._root_of),
            "committed": sorted(self._committed),
            "begun": sorted(self._begun),
            "commit_order": list(self._commit_order),
            "arrivals": [
                [a.schedule, a.root, a.op, a.item, a.mode]
                for a in self._arrivals
            ],
            "ended": self._ended,
            "applied": list(self._applied_ids),
            "rebuilds": self.rebuilds,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`snapshot_state` output into this (fresh)
        assembler.  The persistent builder is rebuilt lazily on the
        first :meth:`build_incremental` after restore."""
        derive = state["derive"]
        self.derive = None if derive is None else str(derive)
        self._next_decl = int(state["next_decl"])
        self._decls = [
            _Decl(ident=int(ident), event=event_from_dict(doc))
            for ident, doc in state["decls"]
        ]
        self._root_of = {
            str(k): str(v) for k, v in state["root_of"].items()
        }
        self._committed = {str(r) for r in state["committed"]}
        self._begun = {str(r) for r in state["begun"]}
        self._commit_order = [str(r) for r in state["commit_order"]]
        self._arrivals = [
            _Arrival(
                schedule=str(schedule),
                root=str(root),
                op=str(op),
                item=None if item is None else str(item),
                mode=None if mode is None else str(mode),
            )
            for schedule, root, op, item, mode in state["arrivals"]
        ]
        self._ended = bool(state["ended"])
        self._applied_ids = [int(i) for i in state["applied"]]
        self._applied = set(self._applied_ids)
        self.rebuilds = int(state["rebuilds"])
        self._builder = None
        self._txn_watermark = {}
        self._cache = None
