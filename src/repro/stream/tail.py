"""Tail a growing JSONL event log with torn-tail tolerance.

The transport half of ``composite-tx watch``: poll a file a concurrent
writer is appending to, hand back every *complete* line as a parsed
:class:`~repro.io.eventlog.Event`, and leave a torn tail (the writer
mid-``write``) in place for the next poll — the same discipline
:func:`repro.obs.sink.salvage_records` applies to telemetry sinks, but
incremental: only bytes past the consumed offset are ever re-read.

Offsets are plain byte offsets into the file.  Each returned event
carries the offset *after* its line, so a consumer can persist the
last offset it acted on and a later ``watch --from-offset`` can
suppress re-announcing transitions it already reported.

A well-behaved log only ever *grows*.  If a poll observes the file
smaller than the consumed offset, the log was truncated or rotated
underneath the tailer and every consumed byte past the new end is
unverifiable — ``poll`` raises
:class:`~repro.exceptions.EventLogTruncatedError` (carrying the
``CTX502`` diagnostic) instead of silently reporting "no new events",
which is what a bare ``seek``-past-EOF + ``read`` would do.  The
stream supervisor catches it and falls back to a snapshot-verified
re-read (:mod:`repro.stream.supervisor`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from repro.exceptions import EventLogTruncatedError, ParseError
from repro.io.eventlog import Event, parse_event_line
from repro.lint.diagnostics import Diagnostic, Location, Severity

__all__ = ["EventLogTail", "TailedEvent"]


@dataclass(frozen=True)
class TailedEvent:
    """One parsed event plus the byte offset just past its line."""

    event: Event
    offset: int
    line: int


class EventLogTail:
    """Incremental reader over a growing event log file.

    ``poll()`` parses every complete line appended since the last call.
    A final line without a newline is *torn* — the writer is mid-append
    — and is left unconsumed; it will be parsed on a later poll once
    the newline lands.  A complete line that fails to parse raises
    :class:`~repro.exceptions.ParseError` (real corruption, not a torn
    tail — a tailer never waits out a malformed line).  A file smaller
    than the consumed offset raises
    :class:`~repro.exceptions.EventLogTruncatedError` (see module
    docstring).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self.offset = 0
        self._line = 0

    @property
    def line(self) -> int:
        """1-based number of the last fully consumed line."""
        return self._line

    def restore(self, offset: int, line: int) -> None:
        """Reposition the tailer at a snapshot-recorded position.

        The caller (:mod:`repro.stream.snapshot`) is responsible for
        having verified that the log's first ``offset`` bytes still
        match the snapshot's fingerprint before trusting this.
        """
        if offset < 0 or line < 0:
            raise ValueError("tail position must be non-negative")
        self.offset = offset
        self._line = line

    def poll(self) -> List[TailedEvent]:
        try:
            with open(self.path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < self.offset:
                    raise EventLogTruncatedError(
                        f"event log {self.path} shrank to {size} bytes "
                        f"below the consumed offset {self.offset} "
                        "(truncated or rotated mid-tail)",
                        path=self.path,
                        offset=self.offset,
                        size=size,
                        diagnostic=Diagnostic(
                            code="CTX502",
                            severity=Severity.ERROR,
                            location=Location(file=self.path),
                            message=(
                                f"file size {size} < consumed offset "
                                f"{self.offset}"
                            ),
                            fix_hint=(
                                "resume from a fingerprint-verified "
                                "snapshot, or re-read from offset 0"
                            ),
                        ),
                    )
                handle.seek(self.offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        out: List[TailedEvent] = []
        consumed = 0
        line = self._line
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: wait for the writer to finish it
            consumed += len(raw)
            line += 1
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                event = parse_event_line(
                    stripped.decode("utf-8"),
                    source=self.path,
                    line=line,
                )
            except ParseError as err:
                # attribute the defect to its exact log position so
                # the supervisor can quarantine the poison line even
                # when the whole log arrived in one poll (the tail's
                # own state is left uncommitted — nothing before the
                # defect counts as consumed)
                if err.offset is None:
                    err.offset = self.offset + consumed - len(raw)
                if err.line is None:
                    err.line = line
                raise
            out.append(
                TailedEvent(
                    event=event,
                    offset=self.offset + consumed,
                    line=line,
                )
            )
        self.offset += consumed
        self._line = line
        return out
