"""Tail a growing JSONL event log with torn-tail tolerance.

The transport half of ``composite-tx watch``: poll a file a concurrent
writer is appending to, hand back every *complete* line as a parsed
:class:`~repro.io.eventlog.Event`, and leave a torn tail (the writer
mid-``write``) in place for the next poll — the same discipline
:func:`repro.obs.sink.salvage_records` applies to telemetry sinks, but
incremental: only bytes past the consumed offset are ever re-read.

Offsets are plain byte offsets into the file.  Each returned event
carries the offset *after* its line, so a consumer can persist the
last offset it acted on and a later ``watch --from-offset`` can
suppress re-announcing transitions it already reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from repro.io.eventlog import Event, parse_event_line

__all__ = ["EventLogTail", "TailedEvent"]


@dataclass(frozen=True)
class TailedEvent:
    """One parsed event plus the byte offset just past its line."""

    event: Event
    offset: int
    line: int


class EventLogTail:
    """Incremental reader over a growing event log file.

    ``poll()`` parses every complete line appended since the last call.
    A final line without a newline is *torn* — the writer is mid-append
    — and is left unconsumed; it will be parsed on a later poll once
    the newline lands.  A complete line that fails to parse raises
    :class:`~repro.exceptions.ParseError` (real corruption, not a torn
    tail — a tailer never waits out a malformed line).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self.offset = 0
        self._line = 0

    def poll(self) -> List[TailedEvent]:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        out: List[TailedEvent] = []
        consumed = 0
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: wait for the writer to finish it
            consumed += len(raw)
            self._line += 1
            stripped = raw.strip()
            if not stripped:
                continue
            event = parse_event_line(
                stripped.decode("utf-8"),
                source=self.path,
                line=self._line,
            )
            out.append(
                TailedEvent(
                    event=event,
                    offset=self.offset + consumed,
                    line=self._line,
                )
            )
        self.offset += consumed
        return out
