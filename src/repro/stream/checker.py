"""The online Comp-C checker: live verdicts over an event stream.

:class:`IncrementalChecker` ingests :mod:`repro.io.eventlog` events one
at a time and keeps a *live verdict*: ACCEPTED-so-far, flipping to
REJECTED — with the same :class:`~repro.core.front.ReductionFailure`
witness the batch engine produces — the moment a committed prefix
closes a cycle.

Incrementality lives at level 0, where the cost is.  Schedule seed
pairs, conflicts, and committed output orders only ever *grow* as roots
commit (declarations activate, nothing retracts — see
:mod:`repro.stream.assembler`), so the checker maintains the closed
level-0 observed order across commits with
:meth:`~repro.core.orders.Relation.add_closed` over just the new seed
pairs, probes it for cycles with the O(V)
:meth:`~repro.core.orders.Relation.first_self_loop` gate, and injects
it into :meth:`~repro.core.reduction.ReductionEngine.run` via
``level0=`` instead of re-closing the leaf order from scratch on every
commit.  Higher levels re-run per commit — they are small (node counts
shrink as the reduction climbs) and their carried-closure path is
already incremental within a run.  Per-commit *assembly* is
incremental too: ``_recheck`` builds through the assembler's
persistent :class:`~repro.core.builder.SystemBuilder`
(:meth:`~repro.stream.assembler.StreamAssembler.build_incremental`),
so a commit pays for the declarations it activated, not for the whole
log so far.

The checker is also *resumable*: :meth:`IncrementalChecker.snapshot_state`
/ :meth:`IncrementalChecker.restore_state` round-trip its entire state
(via :mod:`repro.stream.snapshot`), and replaying the unseen log
suffix after a restore reproduces the uninterrupted run's verdict,
witness, and canonical telemetry byte for byte.

Rejection is *sticky*: closed relations only grow, so once a committed
prefix closes a cycle every extension keeps it, and later commits are
counted (``stream.skip_after_reject``) but not re-checked.

:meth:`IncrementalChecker.finalize` is the certify-on-close step: it
re-runs the plain batch :func:`~repro.core.reduction.reduce_to_roots`
over the assembled final system under the *ambient* telemetry and
hard-asserts that the live status agrees — which makes a finished
stream's verdict and canonical telemetry byte-identical to the batch
path, the equivalence the streaming tests pin.  The per-event work is
recorded on the checker's own ``"watch"`` stream, which
:func:`~repro.obs.sink.canonical_dumps` drops, exactly like the fleet
coordinator's ``"fleet"`` stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.front import Front, ReductionFailure
from repro.core.observed import (
    ObservedOrderOptions,
    group_by_schedule,
    schedule_seed_pairs,
)
from repro.core.orders import Relation
from repro.core.reduction import (
    ReductionEngine,
    ReductionResult,
    reduce_to_roots,
)
from repro.criteria.registry import RecordedExecution
from repro.exceptions import StreamError
from repro.io.eventlog import Event
from repro.obs.telemetry import Span, Telemetry
from repro.stream.assembler import StreamAssembler

__all__ = [
    "IncrementalChecker",
    "StreamResult",
    "StreamVerdict",
    "WATCH_STREAM",
]

#: Telemetry stream for per-event/per-commit streaming work.  Listed in
#: :data:`repro.obs.sink.ENV_STREAMS`, so canonical dumps drop it — the
#: main stream stays byte-identical to a batch ``check``.
WATCH_STREAM = "watch"

ACCEPTED = "ACCEPTED"
REJECTED = "REJECTED"


@dataclass(frozen=True)
class StreamVerdict:
    """The live verdict after some prefix of the stream.

    ``status`` is ACCEPTED while every committed prefix reduces to the
    roots, REJECTED from the first commit whose reduction fails on.
    ``failure`` carries the live witness; because the maintained
    observed order interns elements in *commit* order (the batch path
    interns in declaration order), its cycle may name the same cycle
    starting from a different element than the batch witness — the
    certified batch witness is :attr:`StreamResult.reduction`'s.
    """

    status: str
    events: int
    commits: int
    failure: Optional[ReductionFailure] = None
    rejected_at_event: Optional[int] = None
    rejected_at_commit: Optional[int] = None

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED

    def describe(self) -> str:
        head = (
            f"{self.status} after {self.events} events "
            f"({self.commits} commits)"
        )
        if self.failure is None:
            return head
        return (
            f"{head}; rejected at event {self.rejected_at_event} "
            f"(commit {self.rejected_at_commit}): "
            f"{self.failure.describe()}"
        )


@dataclass
class StreamResult:
    """What :meth:`IncrementalChecker.finalize` certifies.

    ``reduction`` is the plain batch result over the assembled final
    system — the canonical verdict, witness and serial order;
    ``verdict`` is the live stream verdict whose status is hard-asserted
    to agree.  ``recorded`` is the reassembled execution (``None`` when
    the stream committed nothing).
    """

    verdict: StreamVerdict
    reduction: Optional[ReductionResult]
    recorded: Optional[RecordedExecution]


class IncrementalChecker:
    """Ingest events, keep a live verdict (see module docstring)."""

    def __init__(
        self,
        options: ObservedOrderOptions = ObservedOrderOptions(),
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.options = options
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(stream=WATCH_STREAM)
        )
        self.assembler = StreamAssembler()
        #: the maintained, transitively closed level-0 observed order
        self._observed0 = Relation()
        self._known_leaves: Set[str] = set()
        self._seeded: Set[Tuple[str, str]] = set()
        self._events = 0
        self._failure: Optional[ReductionFailure] = None
        self._rejected_at_event: Optional[int] = None
        self._rejected_at_commit: Optional[int] = None
        #: the most recent live reduction result (one per commit)
        self.last_result: Optional[ReductionResult] = None
        # Per-event bookkeeping is plain dict increments; the counters
        # flush to telemetry in one batch (identical totals — counters
        # aggregate by name and fields) so the amortized per-event cost
        # stays O(1) dictionary work, which BENCH_ST1 measures.
        self._kind_counts: Dict[str, int] = {}
        self._skips = 0
        self._verdict_cache: Optional[StreamVerdict] = None

    # ------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.assembler.ended

    def verdict(self) -> StreamVerdict:
        return StreamVerdict(
            status=ACCEPTED if self._failure is None else REJECTED,
            events=self._events,
            commits=len(self.assembler.committed_roots),
            failure=self._failure,
            rejected_at_event=self._rejected_at_event,
            rejected_at_commit=self._rejected_at_commit,
        )

    # ------------------------------------------------------------------
    def ingest(self, event: Event) -> StreamVerdict:
        """Consume one event; returns the (possibly flipped) verdict.

        The returned verdict's *status* is always current (it can only
        change at a commit, which rebuilds it); its event/commit counts
        are as of the most recent commit — call :meth:`verdict` for
        exact counts.  Non-commit events cost O(1) dictionary work.
        """
        self._events += 1
        self._kind_counts[event.kind] = (
            self._kind_counts.get(event.kind, 0) + 1
        )
        delta = self.assembler.apply(event)
        if delta is not None:
            if self._failure is not None:
                # Sticky rejection: closed relations only grow, so the
                # witnessed cycle survives every later commit.
                self._skips += 1
            else:
                with self.telemetry.span(
                    "stream.ingest", root=delta.root, commit=delta.ordinal
                ) as span:
                    self._recheck(span)
        cache = self._verdict_cache
        if delta is not None or cache is None:
            cache = self.verdict()
            self._verdict_cache = cache
        return cache

    def ingest_all(self, events: List[Event]) -> StreamVerdict:
        for event in events:
            self.ingest(event)
        return self.verdict()

    # ------------------------------------------------------------------
    def _recheck(self, span: Span) -> None:
        # Per-commit assembly goes through the persistent builder —
        # O(declarations the commit activated), byte-identical to a
        # full rebuild (the assembler guards the one order that
        # matters).  ``finalize`` still certifies over a full replay.
        recorded = self.assembler.build_incremental()
        assert recorded is not None  # a commit just landed
        system = recorded.system
        new_leaves = [
            leaf for leaf in system.leaves if leaf not in self._known_leaves
        ]
        self._known_leaves.update(new_leaves)
        seed_delta: List[Tuple[str, str]] = []
        for sname, members in group_by_schedule(
            system, system.leaves
        ).items():
            for pair in schedule_seed_pairs(
                system, sname, members, self.options
            ):
                if pair not in self._seeded:
                    self._seeded.add(pair)
                    seed_delta.append(pair)
        touched = self._observed0.add_closed(seed_delta, elements=new_leaves)
        gate = self._observed0.first_self_loop()
        front0 = Front.level0(
            tuple(self._observed0.elements), self._observed0.copy()
        )
        engine = ReductionEngine(
            system, self.options, telemetry=self.telemetry
        )
        result = engine.run(level0=front0)
        self.last_result = result
        span.note(
            new_leaves=len(new_leaves),
            seed_delta=len(seed_delta),
            closure_rows=touched,
            gated=gate is not None,
        )
        if gate is not None and result.failure is None:
            raise StreamError(
                "maintained observed order has a cycle (self-loop at "
                f"{gate!r}) but the reduction accepted — streaming "
                "state is corrupt"
            )
        if result.failure is not None:
            self._failure = result.failure
            self._rejected_at_event = self._events
            self._rejected_at_commit = len(self.assembler.committed_roots)

    # ------------------------------------------------------------------
    def _flush_counters(self) -> None:
        """Push the batched per-event counters into the telemetry
        stream (``stream.event`` per kind, ``stream.skip_after_reject``)
        — totals identical to counting one by one, paid once."""
        for kind, count in self._kind_counts.items():
            self.telemetry.count("stream.event", count, kind=kind)
        self._kind_counts.clear()
        if self._skips:
            self.telemetry.count("stream.skip_after_reject", self._skips)
            self._skips = 0

    # ------------------------------------------------------------------
    # snapshot support (driven by repro.stream.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """The checker's full resumable state.

        Values are live Python objects (packed-bitset relations, sets,
        the :class:`~repro.core.front.ReductionFailure` witness with
        its rejected front); :mod:`repro.stream.snapshot` serializes
        them through the typed checkpoint codec.  ``last_result`` and
        the verdict cache are deliberately absent — both are rebuilt by
        the next commit and never cross a restart boundary.
        """
        return {
            "assembler": self.assembler.snapshot_state(),
            "observed0": self._observed0,
            "known_leaves": self._known_leaves,
            "seeded": self._seeded,
            "events": self._events,
            "failure": self._failure,
            "rejected_at_event": self._rejected_at_event,
            "rejected_at_commit": self._rejected_at_commit,
            "kind_counts": dict(self._kind_counts),
            "skips": self._skips,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore :meth:`snapshot_state` output into this (fresh)
        checker.  Replaying the log suffix after this yields the same
        verdict, witness, and canonical telemetry bytes as an
        uninterrupted run over the whole log — the resume contract the
        snapshot tests pin."""
        assembler_state = state["assembler"]
        assert isinstance(assembler_state, dict)
        self.assembler.restore_state(assembler_state)
        observed0 = state["observed0"]
        assert isinstance(observed0, Relation)
        self._observed0 = observed0
        known_leaves = state["known_leaves"]
        assert isinstance(known_leaves, set)
        self._known_leaves = {str(leaf) for leaf in known_leaves}
        seeded = state["seeded"]
        assert isinstance(seeded, set)
        self._seeded = {(str(a), str(b)) for a, b in seeded}
        self._events = int(state["events"])  # type: ignore[call-overload]
        failure = state["failure"]
        assert failure is None or isinstance(failure, ReductionFailure)
        self._failure = failure
        rejected_at_event = state["rejected_at_event"]
        self._rejected_at_event = (
            None if rejected_at_event is None else int(rejected_at_event)  # type: ignore[call-overload]
        )
        rejected_at_commit = state["rejected_at_commit"]
        self._rejected_at_commit = (
            None if rejected_at_commit is None else int(rejected_at_commit)  # type: ignore[call-overload]
        )
        kind_counts = state["kind_counts"]
        assert isinstance(kind_counts, dict)
        self._kind_counts = {
            str(kind): int(count) for kind, count in kind_counts.items()
        }
        self._skips = int(state["skips"])  # type: ignore[call-overload]
        self._verdict_cache = None
        self.last_result = None

    # ------------------------------------------------------------------
    def finalize(self) -> StreamResult:
        """Certify the finished stream against the batch path.

        Runs the plain batch reduction over the assembled final system
        under the *ambient* telemetry — a caller that wraps this in the
        same spans ``check`` uses gets canonical telemetry
        byte-identical to a batch run — and hard-asserts the live
        status agrees (live REJECTED stays rejected by monotonicity;
        live ACCEPTED covered the full committed system at its last
        commit).  A disagreement falsifies the streaming invariant and
        raises :class:`~repro.exceptions.StreamError`.
        """
        self._flush_counters()
        recorded = self.assembler.build()
        live = self.verdict()
        if recorded is None:
            return StreamResult(verdict=live, reduction=None, recorded=None)
        reduction = reduce_to_roots(recorded.system, self.options)
        if (reduction.failure is not None) != live.rejected:
            raise StreamError(
                "streaming/batch verdict disagreement: live verdict is "
                f"{live.status} but the batch reduction "
                f"{'rejected' if reduction.failure else 'accepted'} the "
                "assembled system"
            )
        return StreamResult(
            verdict=live, reduction=reduction, recorded=recorded
        )
