"""Log-chaos harness: torture the watch loop, demand byte identity.

``composite-tx chaos-stream`` drives a supervised watch
(:mod:`repro.stream.supervisor`) over an event log while a misbehaving
"writer" injects the faults a real log pipeline produces, then
**hard-asserts** that the certified final verdict, witness narrative,
and canonical telemetry are byte-identical to a plain batch
``composite-tx check`` of the same execution.  Scenarios:

``kill``
    the watcher dies mid-follow (state abandoned, snapshot on disk),
    the writer keeps appending, and a supervised restart resumes from
    the snapshot — replaying only the unseen suffix.
``torn``
    a batch lands in two ``write`` calls, splitting a record down the
    middle; the tailer waits the torn tail out.
``corrupt``
    appended bytes are garbage; every restart dies on the same line
    (``ParseError``), the poison offset is quarantined (``CTX504``),
    the writer repairs the bytes, and a fresh supervised run resumes
    from the pre-corruption snapshot.
``duplicate``
    an append batch is written twice; the duplicated commit is a
    deterministic protocol violation, quarantined and repaired the
    same way.
``reorder``
    two declarations land transposed — *valid* protocol, wrong bytes.
    The watcher consumes and snapshots over the diverged prefix before
    dying; the writer rewrites the correct order, and resume detects
    the divergence by fingerprint (``CTX501``) and falls back to a
    full re-read instead of trusting the lying snapshot.
``rotate``
    the log is copytruncate-rotated mid-follow and loses its tail: the
    tailer catches the size regression (``CTX502``), the restart finds
    the snapshot unverifiable against the shortened file (``CTX501``)
    and re-reads from offset 0 while the writer backfills.

Faults are injected from the supervisor's single-threaded ``on_idle``
hook with an injected no-op ``sleep``, so every interleaving is
deterministic; failed attempts record only watch-stream telemetry
(dropped from canonical dumps) and never reach ``finalize``, which is
why even a run with crashes, quarantines, and full re-reads ends with
the exact bytes of an undisturbed batch check.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.reduction import ReductionResult, reduce_to_roots
from repro.criteria.registry import RecordedExecution
from repro.exceptions import StreamError
from repro.io.eventlog import Event, dumps_event, events_from_recorded
from repro.obs.sink import canonical_dumps, sort_events, to_record
from repro.obs.telemetry import Telemetry, TelemetryEvent, current, using
from repro.stream.checker import IncrementalChecker, StreamResult
from repro.stream.snapshot import SnapshotWriter
from repro.stream.supervisor import StreamSupervisor
from repro.stream.tail import EventLogTail
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

__all__ = ["SCENARIOS", "ScenarioOutcome", "run_chaos_suite"]

SCENARIOS = ("kill", "torn", "corrupt", "duplicate", "reorder", "rotate")

#: (result, collected watch-stream telemetry, attempts, quarantines)
_ScenarioRun = Tuple[StreamResult, List[TelemetryEvent], int, int]


@dataclass
class ScenarioOutcome:
    """What one chaos scenario did and proved."""

    name: str
    attempts: int
    quarantines: int
    recover_modes: List[str]
    replayed: int
    total_events: int
    codes: List[str]
    status: str

    def describe(self) -> str:
        modes = ",".join(self.recover_modes) or "-"
        codes = ",".join(self.codes) or "-"
        return (
            f"{self.name:<10} {self.status:<8} "
            f"attempts={self.attempts} quarantines={self.quarantines} "
            f"replayed={self.replayed}/{self.total_events} "
            f"recover={modes} codes={codes}"
        )


@dataclass
class _Feed:
    """The chaotic writer: appends one batch per idle callback.

    ``marks[i]`` is the file size immediately before batch ``i`` was
    appended — the repair crews truncate back to a mark, never to a
    guessed offset.  ``taint`` maps a batch index to a transform
    applied to the bytes as written (the batch list itself keeps the
    correct bytes, so repairs can re-write them verbatim).
    """

    path: str
    batches: List[bytes]
    index: int = 0
    marks: Dict[int, int] = field(default_factory=dict)
    taint: Dict[int, Callable[[bytes], bytes]] = field(default_factory=dict)

    def __call__(self) -> None:
        step = self.index
        if step >= len(self.batches):
            return
        data = self.batches[step]
        transform = self.taint.get(step)
        if transform is not None:
            data = transform(data)
        self.marks[step] = self.size()
        with open(self.path, "ab") as handle:
            handle.write(data)
        self.index = step + 1

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except FileNotFoundError:
            return 0


def _batches(events: List[Event], batch_lines: int) -> List[bytes]:
    """Chunk the log's lines into append batches, forcing a batch
    boundary at the first commit so fault injection can target the
    batch that *starts* with a commit deterministically."""
    lines = [(dumps_event(e) + "\n").encode("utf-8") for e in events]
    first_commit = next(
        (i for i, e in enumerate(events) if e.kind == "commit"), len(lines)
    )
    cuts = sorted(
        {0, first_commit, len(lines)}
        | set(range(0, len(lines), batch_lines))
    )
    return [b"".join(lines[a:b]) for a, b in zip(cuts, cuts[1:]) if a < b]


def _first_commit_batch(batches: List[bytes]) -> int:
    for i, batch in enumerate(batches):
        head = batch.split(b"\n", 1)[0]
        if b'"e":"commit"' in head:
            return i
    raise StreamError("chaos workload produced no commit batch")


def _records(telemetry: Telemetry) -> List[Dict[str, object]]:
    return [to_record(e) for e in sort_events(telemetry.collect())]


def _supervisor(
    log: str, snap: str, feed: Callable[[], None]
) -> StreamSupervisor:
    return StreamSupervisor(
        log,
        snapshot_path=snap,
        snapshot_every=1,
        follow=True,
        interval=0.0,
        quarantine_after=2,
        max_restarts=50,
        backoff_base=0.0,
        seed=7,
        sleep=lambda _s: None,
        on_idle=feed,
    )


def _abandoned_watch(log: str, snap: str, prefix: List[bytes]) -> None:
    """Phase A of the crash scenarios: write a log prefix, watch it
    with snapshotting, then *abandon* the checker — the in-process
    stand-in for SIGKILL (the subprocess variant lives in the tests
    and the CI smoke)."""
    with open(log, "wb") as handle:
        handle.write(b"".join(prefix))
    checker = IncrementalChecker()
    tail = EventLogTail(log)
    writer = SnapshotWriter(snap, every=1, telemetry=checker.telemetry)
    while True:
        events = tail.poll()
        if not events:
            break
        for tailed in events:
            checker.ingest(tailed.event)
        writer.maybe(checker, tail)
    # no finalize, no absorb: the "process" is gone


def _drive(
    log: str,
    snap: str,
    feed: Callable[[], None],
    repairs: List[Callable[[], None]],
) -> _ScenarioRun:
    """Run supervised watches until one certifies, applying the next
    repair after each quarantine."""
    attempts = 0
    quarantines = 0
    telemetry: List[TelemetryEvent] = []
    for round_index in range(len(repairs) + 1):
        supervisor = _supervisor(log, snap, feed)
        outcome = supervisor.run()
        attempts += outcome.attempts
        telemetry.extend(supervisor.telemetry.collect())
        if outcome.result is not None:
            return outcome.result, telemetry, attempts, quarantines
        assert outcome.poison is not None
        quarantines += 1
        if round_index >= len(repairs):
            raise StreamError(
                "chaos scenario quarantined with no repair left: "
                + outcome.poison.describe()
            )
        repairs[round_index]()
    raise AssertionError("unreachable")


def _reference(recorded: RecordedExecution) -> Tuple[ReductionResult, str]:
    telemetry = Telemetry(stream="main")
    with using(telemetry):
        with telemetry.span("cli.command", command="check"):
            result = reduce_to_roots(recorded.system)
    return result, canonical_dumps(_records(telemetry))


def _certified(
    scenario: Callable[[], _ScenarioRun],
) -> Tuple[StreamResult, str, List[TelemetryEvent], int, int]:
    """Run a scenario the way ``cmd_watch`` runs: per-event work on
    the watch stream, certification under the ambient main stream,
    watch records absorbed at the end."""
    telemetry = Telemetry(stream="main")
    with using(telemetry):
        with telemetry.span("cli.command", command="watch"):
            result, watch_events, attempts, quarantines = scenario()
            current().absorb(watch_events)
    return (
        result,
        canonical_dumps(_records(telemetry)),
        watch_events,
        attempts,
        quarantines,
    )


def _recovery_stats(
    watch_events: List[TelemetryEvent], total: int
) -> Tuple[List[str], int, List[str]]:
    """(recover modes, events replayed after the best resume, CTX codes
    seen) from the watch-stream telemetry."""
    modes: List[str] = []
    restored = 0
    codes = set()
    for event in watch_events:
        if event.kind != "meta":
            continue
        fields = dict(event.fields)
        if event.name == "stream.recover":
            mode = str(fields.get("mode"))
            modes.append(mode)
            if mode == "snapshot":
                restored = max(restored, int(str(fields.get("events", 0))))
        elif event.name == "stream.snapshot.invalid":
            codes.add(str(fields.get("code")))
        elif event.name == "stream.quarantine":
            codes.add("CTX504")
    return modes, total - restored, sorted(codes)


# ----------------------------------------------------------------------
# the scenarios
# ----------------------------------------------------------------------
def _scenario(
    name: str, events: List[Event], batch_lines: int, workdir: str
) -> _ScenarioRun:
    log = os.path.join(workdir, f"{name}.jsonl")
    snap = os.path.join(workdir, f"{name}.snapshot.json")
    batches = _batches(events, batch_lines)
    target = _first_commit_batch(batches)
    half = max(1, len(batches) // 2)

    if name == "kill":
        _abandoned_watch(log, snap, batches[:half])
        return _drive(
            log, snap, _Feed(log, batches, index=half), repairs=[]
        )

    if name == "torn":
        feed = _Feed(log, batches)
        split_at = min(target + 1, len(batches) - 1)
        whole = batches[split_at]
        head, rest = whole[: len(whole) // 2], whole[len(whole) // 2 :]
        state = {"phase": 0}

        def _torn_feed() -> None:
            if feed.index == split_at:
                if state["phase"] == 0:
                    # first half of a record lands; the newline is
                    # still in flight
                    with open(log, "ab") as handle:
                        handle.write(head)
                    state["phase"] = 1
                    return
                with open(log, "ab") as handle:
                    handle.write(rest)
                feed.index = split_at + 1
                return
            feed()

        return _drive(log, snap, _torn_feed, repairs=[])

    if name == "corrupt":
        feed = _Feed(log, batches)
        junk = b"%<not a json line>%"
        feed.taint[target] = lambda data: junk + data[len(junk):]

        def _repair_corrupt() -> None:
            with open(log, "r+b") as handle:
                handle.truncate(feed.marks[target])
                handle.seek(0, os.SEEK_END)
                handle.write(batches[target])

        return _drive(log, snap, feed, repairs=[_repair_corrupt])

    if name == "duplicate":
        feed = _Feed(log, batches)
        feed.taint[target] = lambda data: data + data

        def _repair_duplicate() -> None:
            with open(log, "r+b") as handle:
                handle.truncate(
                    feed.marks[target] + len(batches[target])
                )

        return _drive(log, snap, feed, repairs=[_repair_duplicate])

    if name == "reorder":
        # two adjacent declaration lines transposed in the first
        # batch: protocol-valid, byte-diverged.  Phase A consumes and
        # snapshots the lie, then "dies".
        swapped = list(batches)
        lines = swapped[0].split(b"\n")
        if len(lines) < 4:
            raise StreamError(
                "chaos workload too small to transpose declarations"
            )
        lines[1], lines[2] = lines[2], lines[1]
        swapped[0] = b"\n".join(lines)
        _abandoned_watch(log, snap, swapped[:half])
        # the writer notices and rewrites the whole prefix correctly;
        # the stale snapshot now fingerprints bytes that are gone
        with open(log, "wb") as handle:
            handle.write(b"".join(batches[:half]))
        return _drive(
            log, snap, _Feed(log, batches, index=half), repairs=[]
        )

    if name == "rotate":
        feed = _Feed(log, batches)
        rotate_at = min(target + 1, len(batches) - 1)
        keep = max(1, rotate_at // 2)
        state = {"rotated": False}

        def _rotating_feed() -> None:
            if feed.index == rotate_at and not state["rotated"]:
                # copytruncate rotation that loses the tail: the file
                # restarts with only a prefix of its history
                with open(log, "wb") as handle:
                    handle.write(b"".join(batches[:keep]))
                feed.index = keep
                state["rotated"] = True
                return
            feed()

        return _drive(log, snap, _rotating_feed, repairs=[])

    raise StreamError(f"unknown chaos scenario {name!r}")


# ----------------------------------------------------------------------
def run_chaos_suite(
    *,
    seed: int = 3,
    roots: int = 4,
    batch_lines: int = 40,
    scenarios: Optional[List[str]] = None,
) -> List[ScenarioOutcome]:
    """Run the scenario suite, hard-asserting byte identity.

    Raises :class:`~repro.exceptions.StreamError` the moment any
    scenario's certified verdict, witness narrative, or canonical
    telemetry differs by one byte from the batch reference.
    """
    spec = stack_topology(3)
    config = WorkloadConfig(
        seed=seed, roots=roots, conflict_probability=0.2
    )
    recorded = generate(spec, config)
    events = events_from_recorded(recorded)
    reference, reference_canonical = _reference(recorded)
    reference_narrative = reference.narrative()

    chosen = list(scenarios) if scenarios else list(SCENARIOS)
    outcomes: List[ScenarioOutcome] = []
    for name in chosen:
        if name not in SCENARIOS:
            raise StreamError(
                f"unknown chaos scenario {name!r}; "
                f"choose from {', '.join(SCENARIOS)}"
            )
        with tempfile.TemporaryDirectory(prefix="chaos-stream-") as workdir:
            result, canonical, watch_events, attempts, quarantines = (
                _certified(
                    lambda: _scenario(name, events, batch_lines, workdir)
                )
            )
        assert result.reduction is not None
        if result.reduction.narrative() != reference_narrative:
            raise StreamError(
                f"chaos scenario {name!r}: witness narrative diverged "
                "from the batch check"
            )
        if (result.reduction.failure is not None) != (
            reference.failure is not None
        ):
            raise StreamError(
                f"chaos scenario {name!r}: verdict diverged from the "
                "batch check"
            )
        if canonical != reference_canonical:
            raise StreamError(
                f"chaos scenario {name!r}: canonical telemetry diverged "
                "from the batch check"
            )
        modes, replayed, codes = _recovery_stats(watch_events, len(events))
        outcomes.append(
            ScenarioOutcome(
                name=name,
                attempts=attempts,
                quarantines=quarantines,
                recover_modes=modes,
                replayed=replayed,
                total_events=len(events),
                codes=codes,
                status=(
                    "REJECTED"
                    if result.reduction.failure is not None
                    else "ACCEPTED"
                ),
            )
        )
    return outcomes
