"""Self-healing watch loop: restart from snapshots, quarantine poison.

:class:`StreamSupervisor` runs the ``composite-tx watch`` loop under
the same supervision contract the batch layer gives grid tasks
(:mod:`repro.analysis.supervise`): an attempt that dies — a malformed
line, a protocol violation, a log truncated underneath the tailer, a
hang caught by the :func:`~repro.analysis.supervise.time_limit` alarm
— is restarted after a seeded deterministic backoff
(:func:`repro.simulator.retry.make_retry_policy`; the default is the
chaos layer's seeded full-jitter exponential), resuming from the
latest *valid* snapshot: read, self-digest-checked, and
fingerprint-verified against the log being tailed
(:mod:`repro.stream.snapshot`).  A snapshot the log no longer agrees
with (rotation, divergence — ``CTX501``) or that is itself corrupt
(``CTX503``) is discarded and the attempt falls back to a full re-read
from offset 0, so supervision never resumes lying state; it only ever
trades replay work for it.

Failures are attributed to the byte offset just past the line being
consumed when the attempt died.  Deterministic failures therefore
land on the *same* offset every restart, and after ``quarantine_after``
failures there the supervisor stops retrying and reports a
:class:`PoisonEvent` (``CTX504``) naming the offset, the line, and the
final error — the streaming analogue of the batch supervisor's
:class:`~repro.analysis.supervise.QuarantinedTask`.  A global
``max_restarts`` cap bounds pathological non-repeating failures; past
it the last error propagates.

Every restart emits a ``stream.recover`` meta record (mode
``snapshot``/``full``, the resume offset, and how many events the
restored checker already accounted for) on the ``"watch"`` telemetry
stream — dropped from canonical dumps, surfaced by ``composite-tx
profile`` as the stream-recovery section — so "how much replay did
crashes cost" is a measured quantity, which BENCH_ST2 and the
kill-and-resume CI smoke assert on.

The loop itself is injectable (``sleep``, ``on_idle``) and
single-threaded, which is what lets the chaos harness
(``composite-tx chaos-stream``) interleave log faults with polls
deterministically.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.analysis.supervise import time_limit
from repro.exceptions import CompositeTxError, SnapshotError
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.obs.telemetry import Telemetry
from repro.simulator.retry import RetryPolicy, make_retry_policy
from repro.stream.checker import (
    WATCH_STREAM,
    IncrementalChecker,
    StreamResult,
)
from repro.stream.snapshot import (
    SnapshotWriter,
    read_snapshot,
    restore_checker,
    restore_tail,
    verify_snapshot,
)
from repro.stream.tail import EventLogTail

__all__ = ["PoisonEvent", "StreamSupervisor", "SupervisedWatch"]


@dataclass(frozen=True)
class PoisonEvent:
    """The offset the watcher kept dying at, and what killed it.

    ``offset`` is the consumed-byte offset the failures were attributed
    to (just past the poison line), ``line`` the 1-based log line of
    the next unconsumed event at that point, ``failures`` how many
    attempts died there, and ``error`` the final error text.  Carries
    the ``CTX504`` diagnostic for stable matching.
    """

    offset: int
    line: int
    failures: int
    error: str
    diagnostic: Diagnostic

    def describe(self) -> str:
        return (
            f"poison event quarantined at offset {self.offset} "
            f"(log line {self.line}): {self.failures} failed attempts; "
            f"last error: {self.error}"
        )


@dataclass
class SupervisedWatch:
    """What a supervised watch run produced.

    Exactly one of ``result`` (the certified
    :class:`~repro.stream.checker.StreamResult`) and ``poison`` is
    set.  ``restarts`` counts restarts actually paid (attempts - 1).
    """

    result: Optional[StreamResult]
    poison: Optional[PoisonEvent]
    attempts: int

    @property
    def restarts(self) -> int:
        return self.attempts - 1

    @property
    def quarantined(self) -> bool:
        return self.poison is not None


class StreamSupervisor:
    """Run the watch loop with restart-from-snapshot supervision
    (see module docstring)."""

    def __init__(
        self,
        log_path: Union[str, "os.PathLike[str]"],
        *,
        snapshot_path: Optional[str] = None,
        snapshot_every: int = 1,
        follow: bool = True,
        interval: float = 0.05,
        quarantine_after: int = 3,
        max_restarts: int = 10,
        policy: Union[str, RetryPolicy] = "exponential",
        backoff_base: float = 0.01,
        seed: int = 0,
        attempt_timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_idle: Optional[Callable[[], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.log_path = str(log_path)
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every
        self.follow = follow
        self.interval = interval
        self.quarantine_after = quarantine_after
        self.max_restarts = max_restarts
        self.policy = make_retry_policy(policy, base=backoff_base, seed=seed)
        self._rng = random.Random(seed)
        self.attempt_timeout = attempt_timeout
        self.sleep = sleep
        self.on_idle = on_idle
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(stream=WATCH_STREAM)
        )
        #: failure counts keyed by attributed offset
        self._failures: Dict[int, int] = {}
        #: the last attempt's checker (the certified one on success)
        self.checker: Optional[IncrementalChecker] = None

    # ------------------------------------------------------------------
    def _bootstrap(
        self, attempt: int
    ) -> Tuple[IncrementalChecker, EventLogTail, str, int, bool]:
        """A (checker, tail, mode, restored-events, fell-back) tuple
        for one attempt: restored from the latest valid snapshot when
        there is one, else fresh from offset 0.  Invalid snapshots are
        *recorded and skipped*, never trusted — the fell-back flag is
        True when one was, so the full re-read is surfaced as a
        recovery even on a first attempt."""
        fell_back = False
        if self.snapshot_path and os.path.exists(self.snapshot_path):
            try:
                document = read_snapshot(self.snapshot_path)
                verify_snapshot(
                    document,
                    self.log_path,
                    snapshot_path=self.snapshot_path,
                )
            except SnapshotError as err:
                code = getattr(err.diagnostic, "code", None)
                self.telemetry.meta(
                    "stream.snapshot.invalid",
                    attempt=attempt,
                    code=str(code),
                )
                fell_back = True
            else:
                checker = restore_checker(
                    document, telemetry=self.telemetry
                )
                tail = restore_tail(document, self.log_path)
                return (
                    checker,
                    tail,
                    "snapshot",
                    checker.verdict().events,
                    False,
                )
        return (
            IncrementalChecker(telemetry=self.telemetry),
            EventLogTail(self.log_path),
            "full",
            0,
            fell_back,
        )

    def _watch(
        self,
        checker: IncrementalChecker,
        tail: EventLogTail,
        writer: Optional[SnapshotWriter],
        position: Dict[str, int],
    ) -> StreamResult:
        """One watch attempt: poll, ingest, snapshot, finalize."""
        while True:
            events = tail.poll()
            for tailed in events:
                position["offset"] = tailed.offset
                position["line"] = tailed.line
                checker.ingest(tailed.event)
            if writer is not None and events:
                writer.maybe(checker, tail)
            if checker.ended:
                break
            if not events:
                if not self.follow:
                    break
                if self.on_idle is not None:
                    self.on_idle()
                self.sleep(self.interval)
        if writer is not None:
            writer.maybe(checker, tail)
        return checker.finalize()

    # ------------------------------------------------------------------
    def run(self) -> SupervisedWatch:
        """Watch to completion, restarting through failures.

        Returns the certified result, or the quarantined poison event
        after ``quarantine_after`` failures at one offset.  Raises the
        last attempt's error once ``max_restarts`` restarts are
        exhausted (failures that keep *moving* are environmental, not
        poison — supervision hands them back).
        """
        attempt = 0
        while True:
            attempt += 1
            checker, tail, mode, restored, fell_back = self._bootstrap(
                attempt
            )
            self.checker = checker
            if attempt > 1 or mode == "snapshot" or fell_back:
                self.telemetry.meta(
                    "stream.recover",
                    mode=mode,
                    attempt=attempt,
                    offset=tail.offset,
                    line=tail.line,
                    events=restored,
                )
            writer = (
                SnapshotWriter(
                    self.snapshot_path,
                    every=self.snapshot_every,
                    telemetry=self.telemetry,
                )
                if self.snapshot_path
                else None
            )
            position = {"offset": tail.offset, "line": tail.line}
            try:
                with time_limit(self.attempt_timeout):
                    result = self._watch(checker, tail, writer, position)
            except CompositeTxError as err:
                offset = int(
                    getattr(err, "offset", None) or position["offset"]
                )
                count = self._failures.get(offset, 0) + 1
                self._failures[offset] = count
                self.telemetry.meta(
                    "stream.supervisor.failure",
                    attempt=attempt,
                    offset=offset,
                    failures=count,
                    error=type(err).__name__,
                )
                if count >= self.quarantine_after:
                    line = int(
                        getattr(err, "line", None)
                        or position["line"] + 1
                    )
                    poison = PoisonEvent(
                        offset=offset,
                        line=line,
                        failures=count,
                        error=str(err),
                        diagnostic=Diagnostic(
                            code="CTX504",
                            severity=Severity.ERROR,
                            location=Location(file=self.log_path),
                            message=(
                                f"{count} attempts died at offset "
                                f"{offset} (log line {line}): {err}"
                            ),
                            fix_hint=(
                                "repair or excise the poison line, "
                                "then resume from the snapshot"
                            ),
                        ),
                    )
                    self.telemetry.meta(
                        "stream.quarantine",
                        offset=offset,
                        line=line,
                        failures=count,
                    )
                    return SupervisedWatch(
                        result=None, poison=poison, attempts=attempt
                    )
                if attempt > self.max_restarts:
                    raise
                self.telemetry.count("stream.supervisor.restart")
                self.sleep(self.policy.delay(attempt, self._rng))
            else:
                return SupervisedWatch(
                    result=result, poison=None, attempts=attempt
                )
