"""Flat read/write workload generation (for the classical baselines).

Random single-schedule histories over data items with tunable write
ratio and zipf hot-spot skew, used by the CSR/OPSR comparison tests and
the H1 benchmark's flat sanity row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.criteria.classical import FlatHistory, FlatOp
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class FlatWorkloadConfig:
    seed: int = 0
    transactions: int = 4
    ops_per_transaction: int = 4
    items: int = 8
    write_probability: float = 0.5
    item_skew: float = 0.0
    serial: bool = False


def random_flat_history(config: FlatWorkloadConfig) -> FlatHistory:
    """One random flat history; ``serial`` lays transactions end to end."""
    if config.transactions < 1 or config.ops_per_transaction < 1:
        raise WorkloadError("need at least one transaction and operation")
    rng = random.Random(config.seed)
    per_txn: List[List[FlatOp]] = []
    for t in range(1, config.transactions + 1):
        ops = []
        for _ in range(config.ops_per_transaction):
            if config.item_skew > 0:
                weights = [
                    1.0 / (i + 1) ** config.item_skew
                    for i in range(config.items)
                ]
                item_index = rng.choices(
                    range(config.items), weights=weights, k=1
                )[0]
            else:
                item_index = rng.randrange(config.items)
            mode = "w" if rng.random() < config.write_probability else "r"
            ops.append(FlatOp(f"T{t}", mode, f"x{item_index}"))
        per_txn.append(ops)
    if config.serial:
        flat = [op for ops in per_txn for op in ops]
        return FlatHistory(flat)
    # Random fair interleaving.
    cursors = [0] * len(per_txn)
    sequence: List[FlatOp] = []
    while any(c < len(ops) for c, ops in zip(cursors, per_txn)):
        candidates = [
            i for i, (c, ops) in enumerate(zip(cursors, per_txn)) if c < len(ops)
        ]
        pick = rng.choice(candidates)
        sequence.append(per_txn[pick][cursors[pick]])
        cursors[pick] += 1
    return FlatHistory(sequence)


def flat_history_batch(
    config: FlatWorkloadConfig, count: int
) -> List[FlatHistory]:
    """``count`` histories with consecutive seeds."""
    return [
        random_flat_history(
            FlatWorkloadConfig(
                seed=config.seed + i,
                transactions=config.transactions,
                ops_per_transaction=config.ops_per_transaction,
                items=config.items,
                write_probability=config.write_probability,
                item_skew=config.item_skew,
                serial=config.serial,
            )
        )
        for i in range(count)
    ]
