"""Configuration (topology) descriptors for generated composite systems.

A :class:`TopologySpec` describes the *static* shape of a composite
system — its schedules, their levels, which schedules host roots and
which schedules each level invokes — without any transactions yet.  The
generator (:mod:`repro.workloads.generator`) populates a spec with a
random execution forest and recorded schedules.

The shapes match the paper's taxonomy:

* ``stack``  — Def. 21, the multilevel-transaction chain;
* ``fork``   — Def. 23, one coordinator over ``n`` disjoint resource
  managers (a distributed transaction / federated DB);
* ``join``   — Def. 25, ``n`` independent applications over one shared
  server;
* ``tree``   — a balanced invocation tree (every schedule invoked by
  exactly one caller);
* ``dag``    — the general case: a layered random invocation DAG, roots
  allowed at any layer (Figure 1's arbitrary configuration).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import WorkloadError


@dataclass
class TopologySpec:
    """The static shape of a composite system.

    ``invokes`` maps a schedule to the schedules its transactions may
    delegate to (empty list = leaf schedule).  ``root_schedules`` lists
    the schedules on which composite transactions start.
    """

    name: str
    levels: Dict[str, int]
    invokes: Dict[str, List[str]]
    root_schedules: List[str]

    @property
    def order(self) -> int:
        return max(self.levels.values())

    @property
    def schedule_names(self) -> Tuple[str, ...]:
        return tuple(self.levels)

    def validate(self) -> "TopologySpec":
        for schedule, targets in self.invokes.items():
            for target in targets:
                if self.levels[target] >= self.levels[schedule]:
                    raise WorkloadError(
                        f"{schedule} (level {self.levels[schedule]}) cannot "
                        f"invoke {target} (level {self.levels[target]})"
                    )
        if not self.root_schedules:
            raise WorkloadError("topology declares no root schedules")
        return self


def stack_topology(depth: int) -> TopologySpec:
    """A Def.-21 stack of ``depth`` schedules; roots on the top."""
    if depth < 1:
        raise WorkloadError("stack depth must be >= 1")
    names = [f"L{level}" for level in range(depth, 0, -1)]
    levels = {name: depth - i for i, name in enumerate(names)}
    invokes = {
        name: [names[i + 1]] if i + 1 < len(names) else []
        for i, name in enumerate(names)
    }
    return TopologySpec(
        name=f"stack{depth}",
        levels=levels,
        invokes=invokes,
        root_schedules=[names[0]],
    ).validate()


def fork_topology(branches: int) -> TopologySpec:
    """A Def.-23 fork: coordinator ``F`` over ``branches`` managers."""
    if branches < 1:
        raise WorkloadError("a fork needs at least one branch")
    branch_names = [f"B{i}" for i in range(1, branches + 1)]
    levels = {"F": 2, **{name: 1 for name in branch_names}}
    return TopologySpec(
        name=f"fork{branches}",
        levels=levels,
        invokes={"F": list(branch_names), **{n: [] for n in branch_names}},
        root_schedules=["F"],
    ).validate()


def join_topology(clients: int) -> TopologySpec:
    """A Def.-25 join: ``clients`` applications over one server ``J``."""
    if clients < 1:
        raise WorkloadError("a join needs at least one client schedule")
    client_names = [f"C{i}" for i in range(1, clients + 1)]
    levels = {**{name: 2 for name in client_names}, "J": 1}
    return TopologySpec(
        name=f"join{clients}",
        levels=levels,
        invokes={**{n: ["J"] for n in client_names}, "J": []},
        root_schedules=list(client_names),
    ).validate()


def tree_topology(depth: int, fanout: int) -> TopologySpec:
    """A balanced invocation tree: each non-leaf schedule invokes
    ``fanout`` private schedules one level down; roots at the top."""
    if depth < 1 or fanout < 1:
        raise WorkloadError("tree depth and fanout must be >= 1")
    levels: Dict[str, int] = {}
    invokes: Dict[str, List[str]] = {}
    frontier = ["N0"]
    levels["N0"] = depth
    counter = 1
    for level in range(depth - 1, 0, -1):
        next_frontier: List[str] = []
        for parent in frontier:
            children = []
            for _ in range(fanout):
                child = f"N{counter}"
                counter += 1
                levels[child] = level
                children.append(child)
            invokes[parent] = children
            next_frontier.extend(children)
        frontier = next_frontier
    for leaf in frontier:
        invokes[leaf] = []
    return TopologySpec(
        name=f"tree{depth}x{fanout}",
        levels=levels,
        invokes=invokes,
        root_schedules=["N0"],
    ).validate()


def random_dag_topology(
    layers: int,
    width: int,
    *,
    seed: int = 0,
    edge_probability: float = 0.5,
    extra_roots: int = 1,
) -> TopologySpec:
    """A layered random DAG (the general Figure-1 shape).

    ``layers`` schedule layers of ``width`` schedules each; every
    schedule invokes a random non-empty subset of the layer below
    (probability ``edge_probability`` per candidate).  Roots live on the
    top layer plus up to ``extra_roots`` random lower schedules, giving
    composite transactions of different heights.
    """
    if layers < 1 or width < 1:
        raise WorkloadError("layers and width must be >= 1")
    rng = random.Random(seed)
    levels: Dict[str, int] = {}
    invokes: Dict[str, List[str]] = {}
    grid: List[List[str]] = []
    for layer in range(layers, 0, -1):
        row = [f"S{layer}_{i}" for i in range(width)]
        for name in row:
            levels[name] = layer
        grid.append(row)
    for upper, lower in zip(grid, grid[1:]):
        for name in upper:
            targets = [t for t in lower if rng.random() < edge_probability]
            if not targets:
                targets = [rng.choice(lower)]
            invokes[name] = targets
    for name in grid[-1]:
        invokes[name] = []
    root_schedules = list(grid[0])
    lower_pool = [name for row in grid[1:] for name in row]
    rng.shuffle(lower_pool)
    root_schedules.extend(lower_pool[:extra_roots])
    return TopologySpec(
        name=f"dag{layers}x{width}",
        levels=levels,
        invokes=invokes,
        root_schedules=root_schedules,
    ).validate()
