"""Random composite-execution generator.

Populates a :class:`repro.workloads.topologies.TopologySpec` with a
random execution forest and per-schedule recorded executions, yielding a
:class:`repro.criteria.registry.RecordedExecution` that is always a
*well-formed* composite execution (every Def.-3 axiom holds) but not
necessarily a *correct* one — exactly the population the theorem and
hierarchy benchmarks need.

How validity is guaranteed: schedules are laid out top-down by level.
A schedule's recorded sequence is a random linear extension of its
*obligations* — intra-transaction orders of its transactions plus the
operation orders that axiom 1a derives from the input orders its callers
committed.  Everything else (the relative order of conflicting
operations of input-unordered transactions) is free, and it is this
freedom that produces both serializable and non-serializable
interleavings.

Layouts
-------
``serial``
    one global depth-first pass over the roots: every schedule sees its
    transactions one after another — correct by construction.
``random``
    unconstrained-but-valid random interleaving (the default).
``perturbed``
    the serial layout followed by random adjacent swaps of
    *non-conflicting, unobligated* operation pairs.  Such swaps change
    the temporal layout but none of the committed orders, so the
    execution stays Comp-C while layout-sensitive criteria (seriality,
    OPSR) may flip — the separation the H1 benchmark measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.builder import SystemBuilder
from repro.core.orders import Relation
from repro.core.system import CompositeSystem
from repro.criteria.registry import RecordedExecution
from repro.exceptions import WorkloadError
from repro.workloads.topologies import TopologySpec


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for the random generator.

    ``ops_per_transaction`` is an inclusive ``(lo, hi)`` range.
    ``conflict_probability`` is applied independently to every pair of
    operations of a schedule owned by different transactions.
    ``leaf_probability`` lets internal schedules execute some operations
    locally instead of delegating (0 keeps stack/fork/join shapes pure).
    ``intra_order_probability`` gives a transaction a weak sequential
    order over its operations.
    """

    seed: int = 0
    roots: int = 4
    ops_per_transaction: Tuple[int, int] = (1, 3)
    conflict_probability: float = 0.3
    leaf_probability: float = 0.0
    intra_order_probability: float = 0.0
    layout: str = "random"
    perturbation_swaps: int = 8

    def __post_init__(self) -> None:
        if self.layout not in ("serial", "random", "perturbed"):
            raise WorkloadError(f"unknown layout {self.layout!r}")
        lo, hi = self.ops_per_transaction
        if lo < 1 or hi < lo:
            raise WorkloadError(
                "ops_per_transaction must be an inclusive range with lo >= 1"
            )


@dataclass
class _Forest:
    """The raw random forest before assembly."""

    txn_schedule: Dict[str, str]
    txn_ops: Dict[str, List[str]]
    txn_intra: Dict[str, bool]
    schedule_ops: Dict[str, List[str]]
    op_owner: Dict[str, str]
    conflicts: Dict[str, List[Tuple[str, str]]]
    roots: List[str]


def generate(spec: TopologySpec, config: WorkloadConfig) -> RecordedExecution:
    """Generate one recorded composite execution over ``spec``."""
    rng = random.Random(config.seed)
    forest = _grow_forest(spec, config, rng)
    _draw_conflicts(spec, config, rng, forest)
    executions = _lay_out(spec, config, rng, forest)
    system = _assemble(spec, forest, executions)
    # Schedules that received no transactions are pruned from the system
    # (see _assemble); keep the executions map consistent with it.
    executions = {
        name: seq for name, seq in executions.items() if name in system.schedules
    }
    return RecordedExecution(system=system, executions=executions)


# ----------------------------------------------------------------------
# forest growth
# ----------------------------------------------------------------------
def _grow_forest(
    spec: TopologySpec, config: WorkloadConfig, rng: random.Random
) -> _Forest:
    forest = _Forest(
        txn_schedule={},
        txn_ops={},
        txn_intra={},
        schedule_ops={name: [] for name in spec.schedule_names},
        op_owner={},
        conflicts={name: [] for name in spec.schedule_names},
        roots=[],
    )
    counter = {"t": 0, "o": 0}

    def new_txn(schedule: str, name: Optional[str] = None) -> str:
        if name is None:
            counter["t"] += 1
            name = f"t{counter['t']}"
        forest.txn_schedule[name] = schedule
        forest.txn_ops[name] = []
        forest.txn_intra[name] = (
            rng.random() < config.intra_order_probability
        )
        targets = spec.invokes[schedule]
        lo, hi = config.ops_per_transaction
        for _ in range(rng.randint(lo, hi)):
            delegate = bool(targets) and (
                config.leaf_probability <= 0.0
                or rng.random() >= config.leaf_probability
            )
            if delegate:
                child = new_txn(rng.choice(targets))
                op = child
            else:
                counter["o"] += 1
                op = f"o{counter['o']}"
            forest.txn_ops[name].append(op)
            forest.schedule_ops[schedule].append(op)
            forest.op_owner[op] = name
        return name

    for i in range(config.roots):
        schedule = spec.root_schedules[i % len(spec.root_schedules)]
        forest.roots.append(new_txn(schedule, name=f"R{i + 1}"))
    return forest


def _draw_conflicts(
    spec: TopologySpec,
    config: WorkloadConfig,
    rng: random.Random,
    forest: _Forest,
) -> None:
    for schedule in spec.schedule_names:
        ops = forest.schedule_ops[schedule]
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if forest.op_owner[a] == forest.op_owner[b]:
                    continue
                if rng.random() < config.conflict_probability:
                    forest.conflicts[schedule].append((a, b))


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def _serial_layout(forest: _Forest) -> Dict[str, List[str]]:
    """One global depth-first pass over the roots."""
    sequences: Dict[str, List[str]] = {s: [] for s in forest.schedule_ops}

    def run(txn: str) -> None:
        schedule = forest.txn_schedule[txn]
        for op in forest.txn_ops[txn]:
            sequences[schedule].append(op)
            if op in forest.txn_schedule:  # a subtransaction
                run(op)

    for root in forest.roots:
        run(root)
    return sequences


def _obligations(
    spec: TopologySpec,
    forest: _Forest,
    committed: Dict[str, Relation],
    schedule: str,
) -> Relation:
    """The op-order constraints the schedule's sequence must extend:
    intra-transaction orders (axiom 2a) plus the conflicting-pair orders
    derived from the callers' committed orders (axiom 1a/1b)."""
    constraints = Relation(elements=forest.schedule_ops[schedule])
    # Intra-transaction weak orders of this schedule's transactions.
    for txn, here in forest.txn_schedule.items():
        if here == schedule and forest.txn_intra[txn]:
            ops = forest.txn_ops[txn]
            for a, b in zip(ops, ops[1:]):
                constraints.add(a, b)
    # Input orders: committed caller pairs between this schedule's
    # transactions, closed across callers, lifted through conflicts.
    input_order = Relation()
    for caller, relation in committed.items():
        for t, t2 in relation.pairs():
            if (
                forest.txn_schedule.get(t) == schedule
                and forest.txn_schedule.get(t2) == schedule
            ):
                input_order.add(t, t2)
    input_order = input_order.transitive_closure()
    conflicting = {frozenset(p) for p in forest.conflicts[schedule]}
    for t, t2 in input_order.pairs():
        for a in forest.txn_ops[t]:
            for b in forest.txn_ops[t2]:
                if frozenset((a, b)) in conflicting:
                    constraints.add(a, b)
    return constraints


def _random_extension(
    constraints: Relation, ops: Sequence[str], rng: random.Random
) -> List[str]:
    """A uniformly-random-ish linear extension of the constraints."""
    remaining = set(ops)
    in_degree = {op: 0 for op in ops}
    for a, b in constraints.pairs():
        if a in remaining and b in remaining:
            in_degree[b] += 1
    ready = sorted(op for op in ops if in_degree[op] == 0)
    sequence: List[str] = []
    while ready:
        index = rng.randrange(len(ready))
        op = ready.pop(index)
        remaining.discard(op)
        sequence.append(op)
        for succ in sorted(constraints.successors(op)):
            if succ in remaining:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
    if len(sequence) != len(ops):  # pragma: no cover - generator invariant
        raise WorkloadError("obligations are cyclic; generation bug")
    return sequence


def _committed_relation(forest: _Forest, schedule: str, sequence: Sequence[str]) -> Relation:
    """What the schedule commits given a temporal sequence: conflicting
    pairs by position plus intra-transaction orders, closed."""
    position = {op: i for i, op in enumerate(sequence)}
    committed = Relation(elements=sequence)
    for a, b in forest.conflicts[schedule]:
        if position[a] < position[b]:
            committed.add(a, b)
        else:
            committed.add(b, a)
    for txn, here in forest.txn_schedule.items():
        if here == schedule and forest.txn_intra[txn]:
            ops = forest.txn_ops[txn]
            for a, b in zip(ops, ops[1:]):
                committed.add(a, b)
    return committed.transitive_closure()


def _lay_out(
    spec: TopologySpec,
    config: WorkloadConfig,
    rng: random.Random,
    forest: _Forest,
) -> Dict[str, List[str]]:
    if config.layout == "serial":
        return _serial_layout(forest)
    if config.layout == "perturbed":
        return _perturb(spec, config, rng, forest, _serial_layout(forest))

    # random layout: top-down by level so caller commitments are known.
    sequences: Dict[str, List[str]] = {}
    committed: Dict[str, Relation] = {}
    order = sorted(
        spec.schedule_names, key=lambda s: spec.levels[s], reverse=True
    )
    for schedule in order:
        constraints = _obligations(spec, forest, committed, schedule)
        sequences[schedule] = _random_extension(
            constraints, forest.schedule_ops[schedule], rng
        )
        committed[schedule] = _committed_relation(
            forest, schedule, sequences[schedule]
        )
    return sequences


def _perturb(
    spec: TopologySpec,
    config: WorkloadConfig,
    rng: random.Random,
    forest: _Forest,
    sequences: Dict[str, List[str]],
) -> Dict[str, List[str]]:
    """Adjacent swaps of non-conflicting, intra-unordered pairs: the
    committed orders — and hence the Comp-C verdict — are unchanged."""
    conflicting = {
        schedule: {frozenset(p) for p in pairs}
        for schedule, pairs in forest.conflicts.items()
    }

    def intra_ordered(a: str, b: str) -> bool:
        # An intra-ordered transaction chains *all* its operation pairs.
        owner_a, owner_b = forest.op_owner[a], forest.op_owner[b]
        return owner_a == owner_b and forest.txn_intra[owner_a]

    for schedule, sequence in sequences.items():
        if len(sequence) < 2:
            continue
        for _ in range(config.perturbation_swaps):
            i = rng.randrange(len(sequence) - 1)
            a, b = sequence[i], sequence[i + 1]
            if frozenset((a, b)) in conflicting[schedule]:
                continue
            if intra_ordered(a, b):
                continue
            sequence[i], sequence[i + 1] = b, a
    return sequences


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def _assemble(
    spec: TopologySpec,
    forest: _Forest,
    executions: Dict[str, List[str]],
) -> "CompositeSystem":
    builder = SystemBuilder()
    populated = {schedule for schedule in forest.txn_schedule.values()}
    for schedule in spec.schedule_names:
        # Schedules that received no transactions (e.g. a join client with
        # fewer roots than clients) are dropped: an empty schedule has no
        # behaviour to check and would only distort the structural
        # classification of the result.
        if schedule in populated:
            builder.schedule(schedule)
    for txn, schedule in forest.txn_schedule.items():
        ops = forest.txn_ops[txn]
        weak = list(zip(ops, ops[1:])) if forest.txn_intra[txn] else []
        builder.transaction(txn, schedule, ops, weak_order=weak)
    for schedule, pairs in forest.conflicts.items():
        for a, b in pairs:
            builder.conflict(schedule, a, b)
    for schedule, sequence in executions.items():
        if schedule in populated:
            builder.executed(schedule, sequence)
    return builder.build()


def generate_batch(
    spec: TopologySpec, config: WorkloadConfig, count: int
) -> List[RecordedExecution]:
    """``count`` executions with consecutive seeds (deterministic)."""
    out = []
    for i in range(count):
        cfg = WorkloadConfig(
            seed=config.seed + i,
            roots=config.roots,
            ops_per_transaction=config.ops_per_transaction,
            conflict_probability=config.conflict_probability,
            leaf_probability=config.leaf_probability,
            intra_order_probability=config.intra_order_probability,
            layout=config.layout,
            perturbation_swaps=config.perturbation_swaps,
        )
        out.append(generate(spec, cfg))
    return out
