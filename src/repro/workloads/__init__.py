"""Workload and topology generators.

Topologies describe the static shape of a composite system (stack /
fork / join / tree / layered DAG — the paper's taxonomy plus the general
Figure-1 case); the generator populates a topology with a random,
always-well-formed composite execution; the flat module generates
classical read/write histories for the baseline criteria.
"""

from repro.workloads.flat import (
    FlatWorkloadConfig,
    flat_history_batch,
    random_flat_history,
)
from repro.workloads.generator import WorkloadConfig, generate, generate_batch
from repro.workloads.topologies import (
    TopologySpec,
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)

__all__ = [
    "FlatWorkloadConfig",
    "flat_history_batch",
    "random_flat_history",
    "WorkloadConfig",
    "generate",
    "generate_batch",
    "TopologySpec",
    "fork_topology",
    "join_topology",
    "random_dag_topology",
    "stack_topology",
    "tree_topology",
]
