"""Discrete-event simulator of composite transactional systems.

The paper has no testbed (its prototype was "in progress"), so this
package provides the synthetic substrate: components wired per a
topology, each running its own concurrency-control protocol, driven by
closed-loop clients issuing random composite transactions.  Committed
executions are recorded as Def.-3/Def.-4 objects and fed back into the
Comp-C checker — closing the loop between protocol dynamics and the
theory (the P1 benchmark).
"""

from repro.simulator.engine import (
    Simulation,
    SimulationConfig,
    SimulationResult,
    simulate,
)
from repro.simulator.events import EventHandle, EventQueue
from repro.simulator.faults import (
    CrashWindow,
    Degradation,
    FaultInjector,
    FaultPlan,
    random_fault_plan,
)
from repro.simulator.metrics import Metrics
from repro.simulator.retry import (
    DecorrelatedJitterBackoff,
    ExponentialBackoff,
    LinearBackoff,
    RetryPolicy,
    make_retry_policy,
)
from repro.simulator.programs import (
    AccessStep,
    CallStep,
    Program,
    ProgramConfig,
    random_program,
)
from repro.simulator.recorder import AssembledRun, ExecutionRecorder
from repro.simulator.scenarios import (
    tp_monitor_mix,
    tp_monitor_topology,
)

__all__ = [
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "EventHandle",
    "EventQueue",
    "Metrics",
    "AccessStep",
    "CallStep",
    "Program",
    "ProgramConfig",
    "random_program",
    "AssembledRun",
    "ExecutionRecorder",
    "tp_monitor_mix",
    "tp_monitor_topology",
    "CrashWindow",
    "Degradation",
    "FaultInjector",
    "FaultPlan",
    "random_fault_plan",
    "RetryPolicy",
    "LinearBackoff",
    "ExponentialBackoff",
    "DecorrelatedJitterBackoff",
    "make_retry_policy",
]
