"""Recording simulated executions as composite systems.

The recorder is the bridge from the simulator back to the theory: it
logs every granted access and every delegated call of every transaction
attempt, keeps only the *committed* attempt of each root, and assembles
the result into the formal objects of Def. 3–4 so the Comp-C checker
(and every other criterion) can judge the protocols' output.

Conflicts are the read/write kind: two committed accesses of one
component conflict when they touch the same item and at least one
writes.  Transactions declare their program order as a weak
intra-transaction order (the program is a sequential data flow).

Assembly tries full Def.-3/Def.-4 validation first; a protocol that does
not respect propagated input orders (plain SGT or TO, by design) can
produce executions that are not valid *schedules* in the paper's sense —
those are flagged (``axiom_violation``) and assembled without validation
so the checker can still classify them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.builder import SystemBuilder
from repro.criteria.registry import RecordedExecution
from repro.exceptions import ModelError, ScheduleAxiomError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.io.eventlog import Event


@dataclass
class _OpRecord:
    component: str
    txn: str
    op: str
    time: float
    seq: int  # global tie-breaker: recording order
    item: Optional[str] = None  # None for call-ops
    mode: Optional[str] = None

    @property
    def sort_key(self) -> Tuple[float, int]:
        """The one temporal order of the recorder.

        Simulated clocks tie constantly (a scheduler granting a batch
        of accesses in one tick stamps them all with the same time), so
        every sort over records MUST fall back to ``seq`` — the global
        recording order — or assembly and recorded→event-log conversion
        would depend on list-sort incidentals and vary across runs.
        Keeping the key here, rather than inline at the sort sites, is
        what the tie-heavy regression test pins against.
        """
        return (self.time, self.seq)


@dataclass
class AssembledRun:
    """The finalized recording."""

    recorded: RecordedExecution
    axiom_violation: Optional[str]  # message, or None when fully valid
    committed_roots: Tuple[str, ...]


class ExecutionRecorder:
    """Collects per-attempt operation logs and assembles the survivors."""

    def __init__(self) -> None:
        self._ops: Dict[str, List[_OpRecord]] = {}  # root -> current attempt
        # txn -> list of (step, segment id)
        self._txn_steps: Dict[str, Dict[str, List[Tuple[str, int]]]] = {}
        self._txn_component: Dict[str, Dict[str, str]] = {}
        self._committed: Dict[str, List[_OpRecord]] = {}
        self._seq = 0
        self._committed_txns: Dict[str, Dict[str, List[Tuple[str, int]]]] = {}
        self._committed_comp: Dict[str, Dict[str, str]] = {}
        #: wasted-work accounting: attempts thrown away by aborts (any
        #: reason — protocol races, timeouts, injected faults) and the
        #: operations they had already performed.  Only *committed*
        #: attempts enter the assembled execution, so these counters are
        #: the recorder-side proof that aborted work leaves no trace.
        self.discarded_attempts = 0
        self.discarded_operations = 0

    # ------------------------------------------------------------------
    # per-attempt logging
    # ------------------------------------------------------------------
    def begin_attempt(self, root: str) -> None:
        """Reset the log for a new attempt of ``root``."""
        self._ops[root] = []
        self._txn_steps[root] = {}
        self._txn_component[root] = {}

    def begin_transaction(self, root: str, txn: str, component: str) -> None:
        self._txn_steps[root].setdefault(txn, [])
        self._txn_component[root][txn] = component

    def record_access(
        self,
        root: str,
        component: str,
        txn: str,
        op: str,
        item: str,
        mode: str,
        time: float,
        segment: Optional[int] = None,
    ) -> None:
        self._seq += 1
        self._ops[root].append(
            _OpRecord(component, txn, op, time, self._seq, item=item, mode=mode)
        )
        steps = self._txn_steps[root][txn]
        steps.append((op, len(steps) if segment is None else segment))

    def record_call(
        self,
        root: str,
        component: str,
        txn: str,
        child: str,
        time: float,
        segment: Optional[int] = None,
    ) -> None:
        self._seq += 1
        self._ops[root].append(_OpRecord(component, txn, child, time, self._seq))
        steps = self._txn_steps[root][txn]
        steps.append((child, len(steps) if segment is None else segment))

    def commit_root(self, root: str) -> None:
        self._committed[root] = self._ops.pop(root)
        self._committed_txns[root] = self._txn_steps.pop(root)
        self._committed_comp[root] = self._txn_component.pop(root)

    def discard_attempt(self, root: str) -> None:
        ops = self._ops.pop(root, None)
        if ops is not None:
            self.discarded_attempts += 1
            self.discarded_operations += len(ops)
        self._txn_steps.pop(root, None)
        self._txn_component.pop(root, None)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self) -> AssembledRun:
        """Build the committed execution as a composite system."""
        if not self._committed:
            raise ModelError("no committed transactions to assemble")

        # Chronological per-component sequences over committed attempts.
        per_component: Dict[str, List[_OpRecord]] = {}
        for root, records in self._committed.items():
            for record in records:
                per_component.setdefault(record.component, []).append(record)
        for records in per_component.values():
            records.sort(key=lambda r: r.sort_key)

        def build(validate: bool) -> RecordedExecution:
            builder = SystemBuilder()
            for root, txns in self._committed_txns.items():
                components = self._committed_comp[root]
                for txn, tagged_steps in txns.items():
                    steps = [op for op, _seg in tagged_steps]
                    # Program order is a *partial* order: steps of one
                    # segment (a parallel call run) are mutually
                    # unordered; consecutive segments are fully ordered.
                    # Group by segment id, preserving order of appearance:
                    weak = []
                    grouped: List[Tuple[int, List[str]]] = []
                    for op, seg in tagged_steps:
                        if grouped and grouped[-1][0] == seg:
                            grouped[-1][1].append(op)
                        else:
                            grouped.append((seg, [op]))
                    for (s_a, ops_a), (s_b, ops_b) in zip(
                        grouped, grouped[1:]
                    ):
                        for a in ops_a:
                            for b in ops_b:
                                weak.append((a, b))
                    builder.transaction(
                        txn, components[txn], steps, weak_order=weak
                    )
            executions: Dict[str, List[str]] = {}
            for component, records in per_component.items():
                sequence = [record.op for record in records]
                executions[component] = sequence
                accesses = [r for r in records if r.item is not None]
                for i, a in enumerate(accesses):
                    for b in accesses[i + 1:]:
                        if (
                            a.item == b.item
                            and a.txn != b.txn
                            and "w" in (a.mode, b.mode)
                        ):
                            builder.conflict(component, a.op, b.op)
                builder.executed(component, sequence)
            system = builder.build(validate=validate)
            return RecordedExecution(system=system, executions=executions)

        try:
            return AssembledRun(
                recorded=build(validate=True),
                axiom_violation=None,
                committed_roots=tuple(self._committed),
            )
        except (ScheduleAxiomError, ModelError) as err:
            recorded = build(validate=False)
            return AssembledRun(
                recorded=recorded,
                axiom_violation=str(err),
                committed_roots=tuple(self._committed),
            )

    @property
    def committed_count(self) -> int:
        return len(self._committed)

    # ------------------------------------------------------------------
    # streaming export
    # ------------------------------------------------------------------
    def committed_events(self) -> List["Event"]:
        """The committed execution as a streaming event log.

        Assembles (so the per-component sequences get their one
        deterministic ``sort_key`` ordering) and converts through
        :func:`repro.io.eventlog.events_from_recorded` — the same log a
        live simulation would emit, ready for ``composite-tx watch`` or
        :class:`repro.stream.IncrementalChecker`.
        """
        from repro.io.eventlog import events_from_recorded

        return events_from_recorded(self.assemble().recorded)
