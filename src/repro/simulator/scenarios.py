"""Named workload scenarios (the paper's motivating applications).

The introduction motivates composite systems with TP monitors,
CORBA-style services and web information systems.  This module ships a
concrete one: a **TP monitor** front-ending three resource managers,
with a TPC-flavoured transaction mix — deterministic program *shapes*
(only item choices are random), so experiment results are attributable
to concurrency control rather than workload noise.

Components
----------
``TPM``        the TP monitor (root schedule; pure coordinator)
``AccountsDB`` account balances (hot rows under zipf skew)
``StockDB``    product stock levels
``LogDB``      append-style audit records (write-mostly)

Transaction mix
---------------
``payment``   debit one account, credit another, append a log record
``order``     check stock, decrement it, debit an account, log
``audit``     read a batch of accounts and stock rows (read-only)

Use with the engine::

    cfg = SimulationConfig(
        topology=tp_monitor_topology(),
        program_factory=tp_monitor_mix(payment=0.5, order=0.35, audit=0.15),
        protocol="cc",
    )
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.exceptions import WorkloadError
from repro.simulator.programs import AccessStep, CallStep, Program
from repro.workloads.topologies import TopologySpec

ACCOUNTS = 8
PRODUCTS = 8
LOG_PARTITIONS = 4


def tp_monitor_topology() -> TopologySpec:
    """The TP-monitor fork: one coordinator, three resource managers."""
    managers = ["AccountsDB", "StockDB", "LogDB"]
    return TopologySpec(
        name="tp_monitor",
        levels={"TPM": 2, **{m: 1 for m in managers}},
        invokes={"TPM": managers, **{m: [] for m in managers}},
        root_schedules=["TPM"],
    ).validate()


def _account(rng: random.Random, skew: float = 0.8) -> str:
    weights = [1.0 / (i + 1) ** skew for i in range(ACCOUNTS)]
    return f"AccountsDB:a{rng.choices(range(ACCOUNTS), weights=weights, k=1)[0]}"


def _product(rng: random.Random, skew: float = 0.8) -> str:
    weights = [1.0 / (i + 1) ** skew for i in range(PRODUCTS)]
    return f"StockDB:p{rng.choices(range(PRODUCTS), weights=weights, k=1)[0]}"


def _log(rng: random.Random) -> str:
    return f"LogDB:l{rng.randrange(LOG_PARTITIONS)}"


def payment_program(rng: random.Random) -> Program:
    """Debit one account, credit another, append to the log."""
    debit, credit = _account(rng), _account(rng)
    return Program(
        component="TPM",
        steps=[
            CallStep(
                "AccountsDB",
                [
                    AccessStep(debit, "r"),
                    AccessStep(debit, "w"),
                    AccessStep(credit, "r"),
                    AccessStep(credit, "w"),
                ],
            ),
            CallStep("LogDB", [AccessStep(_log(rng), "w")]),
        ],
    )


def order_program(rng: random.Random) -> Program:
    """Check + decrement stock, debit the buyer, log the order."""
    product = _product(rng)
    buyer = _account(rng)
    return Program(
        component="TPM",
        steps=[
            CallStep(
                "StockDB",
                [AccessStep(product, "r"), AccessStep(product, "w")],
            ),
            CallStep(
                "AccountsDB",
                [AccessStep(buyer, "r"), AccessStep(buyer, "w")],
            ),
            CallStep("LogDB", [AccessStep(_log(rng), "w")]),
        ],
    )


def audit_program(rng: random.Random) -> Program:
    """Read-only sweep over a few accounts and products."""
    accounts = [AccessStep(_account(rng, skew=0.0), "r") for _ in range(3)]
    products = [AccessStep(_product(rng, skew=0.0), "r") for _ in range(2)]
    return Program(
        component="TPM",
        steps=[
            CallStep("AccountsDB", accounts),
            CallStep("StockDB", products),
        ],
    )


PROGRAMS: Dict[str, Callable[[random.Random], Program]] = {
    "payment": payment_program,
    "order": order_program,
    "audit": audit_program,
}


def tp_monitor_mix(
    payment: float = 0.5, order: float = 0.35, audit: float = 0.15
):
    """A program factory drawing from the transaction mix.

    The returned callable has the ``(topology, home, rng)`` signature
    :class:`repro.simulator.engine.SimulationConfig` expects.
    """
    total = payment + order + audit
    if total <= 0:
        raise WorkloadError("the transaction mix must have positive mass")
    weights = [payment / total, order / total, audit / total]
    kinds = ["payment", "order", "audit"]

    def factory(
        topology: TopologySpec, home: str, rng: random.Random
    ) -> Program:
        if home != "TPM":
            raise WorkloadError(
                "the TP-monitor mix issues transactions through 'TPM'"
            )
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        return PROGRAMS[kind](rng)

    return factory
