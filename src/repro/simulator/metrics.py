"""Simulation metrics: throughput, response times, abort accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Metrics:
    """Counters filled in by the engine while a simulation runs."""

    commits: int = 0
    protocol_aborts: int = 0  # scheduler said ABORT
    timeout_aborts: int = 0  # blocked past the deadlock timeout
    gave_up: int = 0  # roots that exhausted max_attempts
    operations: int = 0
    response_times: List[float] = field(default_factory=list)
    end_time: float = 0.0

    @property
    def attempts(self) -> int:
        return self.commits + self.protocol_aborts + self.timeout_aborts

    @property
    def abort_rate(self) -> float:
        """Aborted attempts per attempt."""
        total = self.attempts
        if total == 0:
            return 0.0
        return (self.protocol_aborts + self.timeout_aborts) / total

    @property
    def throughput(self) -> float:
        """Committed roots per unit of simulated time."""
        if self.end_time <= 0:
            return 0.0
        return self.commits / self.end_time

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def percentile_response_time(self, q: float) -> float:
        """``q``-th percentile (0..100) of root response times."""
        if not self.response_times:
            return 0.0
        data = sorted(self.response_times)
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "commits": self.commits,
            "protocol_aborts": self.protocol_aborts,
            "timeout_aborts": self.timeout_aborts,
            "gave_up": self.gave_up,
            "operations": self.operations,
            "abort_rate": round(self.abort_rate, 4),
            "throughput": round(self.throughput, 4),
            "mean_response_time": round(self.mean_response_time, 4),
            "p95_response_time": round(self.percentile_response_time(95), 4),
        }
