"""Simulation metrics: throughput, response times, abort accounting,
fault/downtime/availability accounting.

Aborts are tracked *by reason* (``aborts_by_reason``); the legacy
``protocol_aborts`` / ``timeout_aborts`` counters are derived views.
Reasons used by the engine:

``protocol``        the component scheduler answered ABORT
``timeout``         blocked past the deadlock timeout
``crash``           a component crashed with the root in flight
``component_down``  a call or fresh attempt hit a crashed component
``message_drop``    a call message was lost
``transient``       an access failed transiently

Root-level outcomes are accounted separately from per-attempt outcomes:
``gave_up`` roots (exhausted retry budget) used to be invisible to every
rate — :attr:`root_failure_rate` now reports them against completed
roots, and :meth:`summary` includes it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Metrics:
    """Counters filled in by the engine while a simulation runs."""

    commits: int = 0
    gave_up: int = 0  # roots that exhausted their retry budget
    operations: int = 0
    response_times: List[float] = field(default_factory=list)
    end_time: float = 0.0
    #: per-attempt abort counters, keyed by abort reason
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    #: aborts that led to a retry (excludes the final abort of a
    #: gave-up root), keyed by the reason of the aborted attempt
    retries_by_reason: Dict[str, int] = field(default_factory=dict)
    #: reason of the *final* abort of each gave-up root
    giveups_by_reason: Dict[str, int] = field(default_factory=dict)
    #: fault-injector event counters (crash, message_drop, transient,
    #: degraded_op); empty when no fault plan is attached
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: per-component total down duration within the run horizon
    downtime: Dict[str, float] = field(default_factory=dict)
    #: number of components the availability denominator covers
    components: int = 0
    #: correctness checks answered by the static safety certificate
    #: alone (``--static-precheck``), with the reduction skipped
    static_precheck_skips: int = 0
    #: correctness checks answered by the static *refuter* — a
    #: replay-validated CERTIFIED_UNSAFE witness — with the reduction
    #: skipped in the rejecting direction
    static_refute_skips: int = 0

    # ------------------------------------------------------------------
    # recording (engine-side API)
    # ------------------------------------------------------------------
    def record_abort(self, reason: str) -> None:
        self.aborts_by_reason[reason] = (
            self.aborts_by_reason.get(reason, 0) + 1
        )

    def record_retry(self, reason: str) -> None:
        self.retries_by_reason[reason] = (
            self.retries_by_reason.get(reason, 0) + 1
        )

    def record_giveup(self, reason: str) -> None:
        self.gave_up += 1
        self.giveups_by_reason[reason] = (
            self.giveups_by_reason.get(reason, 0) + 1
        )

    # ------------------------------------------------------------------
    # attempt-level views
    # ------------------------------------------------------------------
    @property
    def protocol_aborts(self) -> int:
        """Scheduler-refused attempts (legacy counter)."""
        return self.aborts_by_reason.get("protocol", 0)

    @property
    def timeout_aborts(self) -> int:
        """Deadlock-timeout attempts (legacy counter)."""
        return self.aborts_by_reason.get("timeout", 0)

    @property
    def fault_aborts(self) -> int:
        """Attempts killed by injected faults (any fault reason)."""
        return self.total_aborts - self.protocol_aborts - self.timeout_aborts

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts_by_reason.values())

    @property
    def attempts(self) -> int:
        return self.commits + self.total_aborts

    @property
    def abort_rate(self) -> float:
        """Aborted attempts per attempt (any reason)."""
        total = self.attempts
        if total == 0:
            return 0.0
        return self.total_aborts / total

    # ------------------------------------------------------------------
    # root-level views
    # ------------------------------------------------------------------
    @property
    def finished_roots(self) -> int:
        """Roots that reached a terminal outcome (commit or give-up)."""
        return self.commits + self.gave_up

    @property
    def root_failure_rate(self) -> float:
        """Fraction of finished roots that gave up instead of
        committing — the client-visible failure rate that per-attempt
        ``abort_rate`` cannot show."""
        total = self.finished_roots
        if total == 0:
            return 0.0
        return self.gave_up / total

    @property
    def throughput(self) -> float:
        """Committed roots per unit of simulated time."""
        if self.end_time <= 0:
            return 0.0
        return self.commits / self.end_time

    # ------------------------------------------------------------------
    # latency and availability
    # ------------------------------------------------------------------
    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def percentile_response_time(self, q: float) -> float:
        """``q``-th percentile (0..100) of root response times."""
        if not self.response_times:
            return 0.0
        data = sorted(self.response_times)
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def availability(self) -> float:
        """Fraction of component-uptime over the run horizon: 1.0 means
        every component served the whole run, 0.0 means everything was
        down throughout.  Without fault accounting it is trivially 1."""
        if self.end_time <= 0 or self.components <= 0:
            return 1.0
        capacity = self.components * self.end_time
        down = sum(self.downtime.values())
        return max(0.0, 1.0 - down / capacity)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        out = {
            "commits": self.commits,
            "protocol_aborts": self.protocol_aborts,
            "timeout_aborts": self.timeout_aborts,
            "fault_aborts": self.fault_aborts,
            "gave_up": self.gave_up,
            "operations": self.operations,
            "abort_rate": round(self.abort_rate, 4),
            "root_failure_rate": round(self.root_failure_rate, 4),
            "availability": round(self.availability, 4),
            "throughput": round(self.throughput, 4),
            "mean_response_time": round(self.mean_response_time, 4),
            "p50_response_time": round(self.percentile_response_time(50), 4),
            "p95_response_time": round(self.percentile_response_time(95), 4),
            "static_precheck_skips": self.static_precheck_skips,
            "static_refute_skips": self.static_refute_skips,
        }
        return out

    def abort_breakdown(self) -> str:
        """Compact ``reason:count`` rendering, stable order."""
        if not self.aborts_by_reason:
            return "-"
        return " ".join(
            f"{reason}:{count}"
            for reason, count in sorted(self.aborts_by_reason.items())
        )
