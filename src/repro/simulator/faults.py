"""Deterministic fault injection for the discrete-event simulator.

A :class:`FaultPlan` is pure data: crash/restart windows, service-time
degradation windows, and per-call / per-access failure probabilities.
The :class:`FaultInjector` executes a plan inside one simulation run:
the engine asks it, at event boundaries, whether a component is down,
whether a call message is dropped, whether an access fails transiently,
and how degraded a component's service currently is.

Failure semantics (all of them attack *liveness*, never safety):

* **crash** — at ``CrashWindow.at`` the component loses its volatile
  state: every in-flight composite transaction touching it is aborted
  (reason ``"crash"``) and its scheduler is reset.  Until
  ``CrashWindow.up_at`` the component refuses service: calls into it
  and fresh attempts homed on it fail fast (reason
  ``"component_down"``).
* **message drop** — an issued call is lost with probability
  ``drop_probability``; the caller's root aborts (reason
  ``"message_drop"``) and retries per its retry policy.
* **transient access failure** — a granted-able access fails with
  probability ``transient_probability`` before reaching the scheduler
  (reason ``"transient"``) — a failed disk read, a poisoned cache line.
* **degradation** — inside a :class:`Degradation` window the
  component's mean service time is multiplied by ``factor`` (a slow
  disk, a GC storm); no aborts, just latency.

Determinism: the injector draws from its *own* seeded RNG, never the
engine's, so enabling faults does not perturb the workload stream and
two runs of the same config + plan are bit-for-bit identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import FaultError

#: abort reasons introduced by the fault layer (the engine's native
#: reasons are "protocol" and "timeout")
FAULT_ABORT_REASONS = ("crash", "component_down", "message_drop", "transient")


@dataclass(frozen=True)
class CrashWindow:
    """Component ``component`` is down during ``[at, at + down_for)``."""

    component: str
    at: float
    down_for: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"crash time must be >= 0, got {self.at}")
        if self.down_for <= 0:
            raise FaultError(
                f"crash down_for must be positive, got {self.down_for}"
            )

    @property
    def up_at(self) -> float:
        return self.at + self.down_for


@dataclass(frozen=True)
class Degradation:
    """Mean service time at ``component`` is multiplied by ``factor``
    during ``[at, at + duration)``."""

    component: str
    at: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"degradation time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultError(
                f"degradation duration must be positive, got {self.duration}"
            )
        if self.factor < 1.0:
            raise FaultError(
                f"degradation factor must be >= 1, got {self.factor}"
            )

    @property
    def until(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong during one run (pure data)."""

    crashes: Tuple[CrashWindow, ...] = ()
    degradations: Tuple[Degradation, ...] = ()
    drop_probability: float = 0.0
    transient_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "transient_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {p}")
        # tolerate lists from callers; store tuples for hashability
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "degradations", tuple(self.degradations))

    @property
    def empty(self) -> bool:
        return not (
            self.crashes
            or self.degradations
            or self.drop_probability
            or self.transient_probability
        )

    def components(self) -> Tuple[str, ...]:
        """Components named by crash/degradation windows."""
        seen: Dict[str, None] = {}
        for window in self.crashes:
            seen.setdefault(window.component)
        for window in self.degradations:
            seen.setdefault(window.component)
        return tuple(seen)


def random_fault_plan(
    components: Sequence[str],
    *,
    seed: int = 0,
    horizon: float = 120.0,
    intensity: float = 1.0,
    crashes_per_component: float = 1.0,
    mean_downtime: float = 8.0,
    degradations_per_component: float = 1.0,
    mean_degradation: float = 15.0,
    degradation_factor: float = 4.0,
    drop_probability: float = 0.02,
    transient_probability: float = 0.02,
) -> FaultPlan:
    """A seeded random plan over ``[0, horizon)``, scaled by
    ``intensity`` (0 disables everything, 1 uses the parameters as
    given, >1 amplifies them).  The expected crash/degradation counts
    per component scale linearly; window placement and lengths are
    drawn from ``random.Random(seed)`` only, so equal arguments always
    produce the identical plan."""
    if intensity < 0:
        raise FaultError(f"intensity must be >= 0, got {intensity}")
    if horizon <= 0:
        raise FaultError(f"horizon must be positive, got {horizon}")
    rng = random.Random(seed)

    def sample_count(expected: float) -> int:
        whole, frac = divmod(expected, 1.0)
        return int(whole) + (1 if rng.random() < frac else 0)

    crashes: List[CrashWindow] = []
    degradations: List[Degradation] = []
    for component in components:
        for _ in range(sample_count(intensity * crashes_per_component)):
            crashes.append(
                CrashWindow(
                    component,
                    at=rng.uniform(0.0, horizon),
                    down_for=rng.expovariate(1.0 / mean_downtime),
                )
            )
        for _ in range(
            sample_count(intensity * degradations_per_component)
        ):
            degradations.append(
                Degradation(
                    component,
                    at=rng.uniform(0.0, horizon),
                    duration=rng.expovariate(1.0 / mean_degradation),
                    factor=degradation_factor,
                )
            )
    return FaultPlan(
        crashes=tuple(crashes),
        degradations=tuple(degradations),
        drop_probability=min(1.0, intensity * drop_probability),
        transient_probability=min(1.0, intensity * transient_probability),
        seed=seed,
    )


class FaultInjector:
    """Executes a :class:`FaultPlan` inside one simulation run.

    Holds the plan's RNG, the live down/up state, and fault counters.
    The engine owns the event schedule (it turns crash windows into
    queue events and calls :meth:`mark_down` / :meth:`mark_up`)."""

    def __init__(
        self, plan: FaultPlan, components: Iterable[str]
    ) -> None:
        known = set(components)
        unknown = [c for c in plan.components() if c not in known]
        if unknown:
            raise FaultError(
                f"fault plan names unknown components {sorted(set(unknown))}; "
                f"topology has {sorted(known)}"
            )
        self.plan = plan
        # Decouple the fault stream from the workload stream: a fixed
        # odd multiplier keeps plan seeds 0,1,2,... apart from the
        # engine seeds without colliding on small integers.
        self._rng = random.Random(plan.seed * 2654435761 + 97)
        self._down_depth: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # live state (driven by engine events)
    # ------------------------------------------------------------------
    def mark_down(self, component: str) -> None:
        self._down_depth[component] = self._down_depth.get(component, 0) + 1
        self._count("crash")

    def mark_up(self, component: str) -> None:
        depth = self._down_depth.get(component, 0)
        if depth > 0:
            self._down_depth[component] = depth - 1

    def is_down(self, component: str) -> bool:
        return self._down_depth.get(component, 0) > 0

    # ------------------------------------------------------------------
    # per-event draws (consume only the injector's RNG)
    # ------------------------------------------------------------------
    def drop_call(self, caller: str, callee: str) -> bool:
        if self.plan.drop_probability <= 0.0:
            return False
        if self._rng.random() < self.plan.drop_probability:
            self._count("message_drop")
            return True
        return False

    def access_fails(self, component: str) -> bool:
        if self.plan.transient_probability <= 0.0:
            return False
        if self._rng.random() < self.plan.transient_probability:
            self._count("transient")
            return True
        return False

    def degradation_factor(self, component: str, now: float) -> float:
        factor = 1.0
        for window in self.plan.degradations:
            if window.component == component and window.at <= now < window.until:
                factor *= window.factor
        if factor > 1.0:
            self._count("degraded_op")
        return factor

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def downtime(self, horizon: float) -> Dict[str, float]:
        """Per-component total down duration, clipped to ``[0, horizon]``
        with overlapping windows merged."""
        by_component: Dict[str, List[Tuple[float, float]]] = {}
        for window in self.plan.crashes:
            lo = min(window.at, horizon)
            hi = min(window.up_at, horizon)
            if hi > lo:
                by_component.setdefault(window.component, []).append((lo, hi))
        result: Dict[str, float] = {}
        for component, intervals in by_component.items():
            intervals.sort()
            total = 0.0
            cur_lo, cur_hi = intervals[0]
            for lo, hi in intervals[1:]:
                if lo > cur_hi:
                    total += cur_hi - cur_lo
                    cur_lo, cur_hi = lo, hi
                else:
                    cur_hi = max(cur_hi, hi)
            total += cur_hi - cur_lo
            result[component] = total
        return result
