"""Transaction programs: what a composite transaction *does*.

A program is a tree mirroring the invocation topology: at a component a
transaction performs a sequence of steps — local data accesses and calls
that delegate a subprogram to another component.  Programs are generated
once per root and re-executed verbatim on retry (the classical
transaction-restart model).

Items are component-local (``"B1:k3"``); item selection follows a
zipf-like skew so hot-spot contention is tunable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.workloads.topologies import TopologySpec


@dataclass(frozen=True)
class AccessStep:
    """Read or write one local data item."""

    item: str
    mode: str  # "r" or "w"


@dataclass
class CallStep:
    """Delegate a subprogram to another component."""

    component: str
    steps: List["Step"] = field(default_factory=list)


Step = Union[AccessStep, CallStep]


@dataclass
class Program:
    """A root transaction's program: its home component and step tree."""

    component: str
    steps: List[Step]

    def access_count(self) -> int:
        return _count_accesses(self.steps)

    def call_count(self) -> int:
        return _count_calls(self.steps)


def _count_accesses(steps: Sequence[Step]) -> int:
    total = 0
    for step in steps:
        if isinstance(step, AccessStep):
            total += 1
        else:
            total += _count_accesses(step.steps)
    return total


def _count_calls(steps: Sequence[Step]) -> int:
    total = 0
    for step in steps:
        if isinstance(step, CallStep):
            total += 1 + _count_calls(step.steps)
    return total


@dataclass(frozen=True)
class ProgramConfig:
    """Shape parameters for random programs."""

    accesses_per_transaction: Tuple[int, int] = (1, 3)
    calls_per_transaction: Tuple[int, int] = (1, 2)
    items_per_component: int = 8
    write_probability: float = 0.5
    local_access_probability: float = 0.0
    item_skew: float = 0.0  # 0 = uniform; larger = hotter hot spots
    #: execute consecutive runs of calls concurrently (fork-join): the
    #: run's subtransactions are mutually unordered (Def. 1's
    #: unrestricted parallelism); the transaction waits for the whole
    #: run before its next step.
    parallel_calls: bool = False


def pick_item(
    component: str,
    config: ProgramConfig,
    rng: random.Random,
    lane: Tuple[float, float] = (0.0, 1.0),
) -> str:
    """Skewed item choice: item ``k0`` is the hottest (within the lane).

    ``lane`` restricts the choice to a fraction of the component's item
    space.  Parallel sibling subtrees of one transaction get disjoint
    lanes so a transaction never races *itself* — a data race between
    parallel branches of one program is a bug in the program, not a
    concurrency-control scenario.  Different transactions use the full
    space relative to their own lanes and contend normally.
    """
    n = config.items_per_component
    lo = int(lane[0] * n)
    hi = max(lo + 1, int(lane[1] * n))
    hi = min(hi, n)
    width = hi - lo
    if config.item_skew <= 0:
        index = lo + rng.randrange(width)
    else:
        weights = [1.0 / (i + 1) ** config.item_skew for i in range(width)]
        index = lo + rng.choices(range(width), weights=weights, k=1)[0]
    return f"{component}:k{index}"


def random_program(
    topology: TopologySpec,
    root_component: str,
    config: ProgramConfig,
    rng: random.Random,
) -> Program:
    """Generate a random program rooted at ``root_component``."""
    return Program(
        component=root_component,
        steps=_random_steps(topology, root_component, config, rng),
    )


def _random_steps(
    topology: TopologySpec,
    component: str,
    config: ProgramConfig,
    rng: random.Random,
    lane: Tuple[float, float] = (0.0, 1.0),
) -> List[Step]:
    callees = topology.invokes[component]
    steps: List[Step] = []
    if not callees:
        lo, hi = config.accesses_per_transaction
        for _ in range(rng.randint(lo, hi)):
            mode = "w" if rng.random() < config.write_probability else "r"
            steps.append(
                AccessStep(pick_item(component, config, rng, lane), mode)
            )
        return steps
    lo, hi = config.calls_per_transaction
    count = rng.randint(lo, hi)
    for position in range(count):
        if (
            config.local_access_probability > 0
            and rng.random() < config.local_access_probability
        ):
            mode = "w" if rng.random() < config.write_probability else "r"
            steps.append(
                AccessStep(pick_item(component, config, rng, lane), mode)
            )
        else:
            if config.parallel_calls and count > 1:
                # Disjoint sub-lane per sibling: parallel branches of one
                # transaction never touch the same items (race-free
                # programs; see pick_item).
                span = (lane[1] - lane[0]) / count
                sub = (
                    lane[0] + position * span,
                    lane[0] + (position + 1) * span,
                )
            else:
                sub = lane
            callee = rng.choice(callees)
            steps.append(
                CallStep(
                    component=callee,
                    steps=_random_steps(
                        topology, callee, config, rng, lane=sub
                    ),
                )
            )
    return steps
