"""Pluggable retry policies for aborted composite transactions.

The engine used to hard-code linear backoff (``retry_backoff *
attempt``, uniformly jittered).  This module extracts that decision
into a small policy object with two responsibilities:

* **pacing** — :meth:`RetryPolicy.delay` computes how long an aborted
  root waits before its next attempt;
* **giving up** — :meth:`RetryPolicy.should_retry` decides whether a
  root retries at all, which lets a policy react to *why* the attempt
  died: an abort caused by a crashed component is a different signal
  than losing a protocol race, and a policy can declare some reasons
  non-retryable or give each reason its own budget.

All policies draw jitter from the RNG they are handed (the engine
passes its seeded stream), so runs stay bit-for-bit deterministic.
:class:`LinearBackoff` with default parameters reproduces the legacy
engine behaviour exactly — same formula, same single RNG draw per
retry — so existing seeded tests are unaffected.

Seeding contract
----------------
A policy constructed with ``seed=N`` owns a private
``random.Random(N)`` stream and ignores the RNG argument of
:meth:`RetryPolicy.delay`.  This is how *sharded* consumers (the batch
supervisor, per-cell chaos runs) stay reproducible: each task derives
its policy seed from stable identifiers only — the run's base seed and
the task's submission index, never worker ids or wall-clock — so the
jitter sequence of any one task is the same whether the grid runs
serially, across N processes, or resumed from a checkpoint.  An
*unseeded* policy (``seed=None``, the default) keeps the legacy
behaviour of drawing from the caller's stream, which the simulation
engine relies on for its own bit-for-bit determinism.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional

from repro.exceptions import SimulationError


class RetryPolicy:
    """Decides whether and when an aborted root transaction retries.

    ``non_retryable`` abort reasons make the root give up immediately;
    ``reason_budgets`` caps how many aborts of one reason a root absorbs
    before giving up (independent of the global ``max_attempts``).
    ``seed`` gives the policy a private deterministic jitter stream
    (see the module docstring for the seeding contract).
    """

    name = "abstract"

    def __init__(
        self,
        *,
        non_retryable: Iterable[str] = (),
        reason_budgets: Optional[Dict[str, int]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.non_retryable: FrozenSet[str] = frozenset(non_retryable)
        self.reason_budgets: Dict[str, int] = dict(reason_budgets or {})
        self.seed = seed
        self._rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None
        )

    def _jitter_rng(self, rng: random.Random) -> random.Random:
        """The stream jitter is drawn from: the private seeded stream
        when the policy was seeded, else the caller's."""
        return self._rng if self._rng is not None else rng

    # ------------------------------------------------------------------
    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` >= 1 is
        the attempt that just aborted).  ``last_delay`` is the delay the
        root waited before the aborted attempt (0.0 on the first abort);
        only decorrelated jitter uses it."""
        raise NotImplementedError

    def should_retry(
        self,
        attempt: int,
        max_attempts: int,
        reason: str,
        reason_count: int,
    ) -> bool:
        """``True`` when the root should attempt again.

        ``attempt`` attempts have run so far, the last aborting with
        ``reason`` (its ``reason_count``-th abort for that reason)."""
        if attempt >= max_attempts:
            return False
        if reason in self.non_retryable:
            return False
        budget = self.reason_budgets.get(reason)
        if budget is not None and reason_count >= budget:
            return False
        return True


class LinearBackoff(RetryPolicy):
    """``U(0, base * attempt) + floor`` — the legacy engine behaviour."""

    name = "linear"

    def __init__(
        self, base: float = 3.0, *, floor: float = 0.01, **kw: Any
    ) -> None:
        super().__init__(**kw)
        self.base = base
        self.floor = floor

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        rng = self._jitter_rng(rng)
        return rng.random() * (self.base * attempt) + self.floor


class ExponentialBackoff(RetryPolicy):
    """``U(0, min(cap, base * 2**(attempt-1))) + floor`` (full jitter).

    ``ExponentialBackoff(seed=N)`` is the *deterministic* full-jitter
    variant: jitter comes from a private ``random.Random(N)`` stream,
    so the delay sequence depends only on the seed and the number of
    draws — the default policy of the chaos layer and the batch
    supervisor, both of which derive ``N`` from (base seed, task
    index) to keep sharded and resumed runs reproducible.
    """

    name = "exponential"

    def __init__(
        self,
        base: float = 1.0,
        *,
        cap: float = 60.0,
        floor: float = 0.01,
        **kw: Any,
    ) -> None:
        super().__init__(**kw)
        self.base = base
        self.cap = cap
        self.floor = floor

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        rng = self._jitter_rng(rng)
        ceiling = min(self.cap, self.base * (2.0 ** (attempt - 1)))
        return rng.random() * ceiling + self.floor


class DecorrelatedJitterBackoff(RetryPolicy):
    """``min(cap, U(base, 3 * max(last_delay, base)))`` — the AWS
    "decorrelated jitter" scheme: each delay is drawn relative to the
    previous one, which spreads synchronized retry storms apart faster
    than independent jitter."""

    name = "decorrelated-jitter"

    def __init__(
        self, base: float = 1.0, *, cap: float = 60.0, **kw: Any
    ) -> None:
        super().__init__(**kw)
        self.base = base
        self.cap = cap

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        rng = self._jitter_rng(rng)
        previous = max(last_delay, self.base)
        return min(self.cap, rng.uniform(self.base, previous * 3.0))


#: policy id -> factory taking the config's ``retry_backoff`` as base
POLICIES: Dict[str, Callable[..., RetryPolicy]] = {
    LinearBackoff.name: LinearBackoff,
    ExponentialBackoff.name: ExponentialBackoff,
    DecorrelatedJitterBackoff.name: DecorrelatedJitterBackoff,
}


def make_retry_policy(
    spec: "str | RetryPolicy", *, base: float = 3.0, **kw: Any
) -> RetryPolicy:
    """Resolve a policy: an instance passes through, a name is
    instantiated with ``base`` (the config's ``retry_backoff``).
    Extra keywords (``seed``, ``non_retryable``, ...) are forwarded to
    the policy constructor."""
    if isinstance(spec, RetryPolicy):
        return spec
    try:
        factory = POLICIES[spec]
    except KeyError:
        raise SimulationError(
            f"unknown retry policy {spec!r}; choose from {sorted(POLICIES)}"
        ) from None
    return factory(base, **kw)
