"""Pluggable retry policies for aborted composite transactions.

The engine used to hard-code linear backoff (``retry_backoff *
attempt``, uniformly jittered).  This module extracts that decision
into a small policy object with two responsibilities:

* **pacing** — :meth:`RetryPolicy.delay` computes how long an aborted
  root waits before its next attempt;
* **giving up** — :meth:`RetryPolicy.should_retry` decides whether a
  root retries at all, which lets a policy react to *why* the attempt
  died: an abort caused by a crashed component is a different signal
  than losing a protocol race, and a policy can declare some reasons
  non-retryable or give each reason its own budget.

All policies draw jitter from the RNG they are handed (the engine
passes its seeded stream), so runs stay bit-for-bit deterministic.
:class:`LinearBackoff` with default parameters reproduces the legacy
engine behaviour exactly — same formula, same single RNG draw per
retry — so existing seeded tests are unaffected.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.exceptions import SimulationError


class RetryPolicy:
    """Decides whether and when an aborted root transaction retries.

    ``non_retryable`` abort reasons make the root give up immediately;
    ``reason_budgets`` caps how many aborts of one reason a root absorbs
    before giving up (independent of the global ``max_attempts``).
    """

    name = "abstract"

    def __init__(
        self,
        *,
        non_retryable: Iterable[str] = (),
        reason_budgets: Optional[Dict[str, int]] = None,
    ) -> None:
        self.non_retryable: FrozenSet[str] = frozenset(non_retryable)
        self.reason_budgets: Dict[str, int] = dict(reason_budgets or {})

    # ------------------------------------------------------------------
    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` >= 1 is
        the attempt that just aborted).  ``last_delay`` is the delay the
        root waited before the aborted attempt (0.0 on the first abort);
        only decorrelated jitter uses it."""
        raise NotImplementedError

    def should_retry(
        self,
        attempt: int,
        max_attempts: int,
        reason: str,
        reason_count: int,
    ) -> bool:
        """``True`` when the root should attempt again.

        ``attempt`` attempts have run so far, the last aborting with
        ``reason`` (its ``reason_count``-th abort for that reason)."""
        if attempt >= max_attempts:
            return False
        if reason in self.non_retryable:
            return False
        budget = self.reason_budgets.get(reason)
        if budget is not None and reason_count >= budget:
            return False
        return True


class LinearBackoff(RetryPolicy):
    """``U(0, base * attempt) + floor`` — the legacy engine behaviour."""

    name = "linear"

    def __init__(self, base: float = 3.0, *, floor: float = 0.01, **kw) -> None:
        super().__init__(**kw)
        self.base = base
        self.floor = floor

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        return rng.random() * (self.base * attempt) + self.floor


class ExponentialBackoff(RetryPolicy):
    """``U(0, min(cap, base * 2**(attempt-1))) + floor`` (full jitter)."""

    name = "exponential"

    def __init__(
        self,
        base: float = 1.0,
        *,
        cap: float = 60.0,
        floor: float = 0.01,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.base = base
        self.cap = cap
        self.floor = floor

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        ceiling = min(self.cap, self.base * (2.0 ** (attempt - 1)))
        return rng.random() * ceiling + self.floor


class DecorrelatedJitterBackoff(RetryPolicy):
    """``min(cap, U(base, 3 * max(last_delay, base)))`` — the AWS
    "decorrelated jitter" scheme: each delay is drawn relative to the
    previous one, which spreads synchronized retry storms apart faster
    than independent jitter."""

    name = "decorrelated-jitter"

    def __init__(
        self, base: float = 1.0, *, cap: float = 60.0, **kw
    ) -> None:
        super().__init__(**kw)
        self.base = base
        self.cap = cap

    def delay(
        self, attempt: int, rng: random.Random, last_delay: float = 0.0
    ) -> float:
        previous = max(last_delay, self.base)
        return min(self.cap, rng.uniform(self.base, previous * 3.0))


#: policy id -> factory taking the config's ``retry_backoff`` as base
POLICIES: Dict[str, Callable[..., RetryPolicy]] = {
    LinearBackoff.name: LinearBackoff,
    ExponentialBackoff.name: ExponentialBackoff,
    DecorrelatedJitterBackoff.name: DecorrelatedJitterBackoff,
}


def make_retry_policy(
    spec: "str | RetryPolicy", *, base: float = 3.0, **kw
) -> RetryPolicy:
    """Resolve a policy: an instance passes through, a name is
    instantiated with ``base`` (the config's ``retry_backoff``)."""
    if isinstance(spec, RetryPolicy):
        return spec
    try:
        factory = POLICIES[spec]
    except KeyError:
        raise SimulationError(
            f"unknown retry policy {spec!r}; choose from {sorted(POLICIES)}"
        ) from None
    return factory(base, **kw)
