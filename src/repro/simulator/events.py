"""Deterministic discrete-event machinery.

A tiny, dependency-free event queue: events fire in ``(time, seq)``
order, where ``seq`` is an insertion counter, so two events at the same
instant fire in schedule order — runs are bit-for-bit reproducible for a
given seed.  Events can be cancelled (lazily) via their handle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass
class EventHandle:
    """Cancellation handle for a scheduled event."""

    time: float
    seq: int
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A priority queue of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` after the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        handle = EventHandle(time=self.now + delay, seq=self._seq)
        heapq.heappush(
            self._heap, (handle.time, handle.seq, handle, callback)
        )
        return handle

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events fired."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            time, _seq, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            callback()
            fired += 1
        return fired

    def __len__(self) -> int:
        return sum(1 for *_rest, h, _cb in self._heap if not h.cancelled)

    def empty(self) -> bool:
        return len(self) == 0
