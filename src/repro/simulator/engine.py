"""The discrete-event composite-system simulator.

Closed-loop clients issue composite transactions (random
:mod:`repro.simulator.programs` trees) against a set of components wired
per a :class:`repro.workloads.topologies.TopologySpec`.  Every component
runs its own scheduler (any protocol from :mod:`repro.schedulers`);
access service times are exponential; blocked requests time out (the
practical answer to cross-component deadlocks); aborts retry the whole
root transaction under a pluggable retry policy
(:mod:`repro.simulator.retry`, linear backoff by default).  An optional
:class:`repro.simulator.faults.FaultPlan` injects component crashes,
message drops, transient access failures and service degradation at
event boundaries — faults attack liveness (throughput, availability)
but never the safety of what gets committed.

Order propagation (Def. 4.7) is performed by the engine: when a
transaction issues a call to a component, the engine tells the callee's
scheduler about the orders it must respect relative to earlier calls —
program order within one caller transaction, plus whatever order the
caller component has established between the calling transactions.  The
classical protocols ignore this information *by design*; the CC
scheduler consumes it.  The committed execution is recorded and
assembled into a composite system, so the P1 benchmark can measure both
performance (throughput/aborts) and *correctness* (Comp-C of what each
protocol actually committed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.orders import Relation
from repro.exceptions import SimulationError
from repro.obs.telemetry import Telemetry, current
from repro.schedulers import PROTOCOLS, ComponentScheduler, make_scheduler
from repro.schedulers.base import Decision
from repro.schedulers.composite_cc import (
    CompositeCCScheduler,
    RootOrderRegistry,
)
from repro.simulator.events import EventHandle, EventQueue
from repro.simulator.faults import FaultInjector, FaultPlan
from repro.simulator.metrics import Metrics
from repro.simulator.retry import POLICIES, RetryPolicy, make_retry_policy
from repro.simulator.programs import (
    AccessStep,
    CallStep,
    Program,
    ProgramConfig,
    random_program,
)
from repro.simulator.recorder import AssembledRun, ExecutionRecorder
from repro.workloads.topologies import TopologySpec


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a run needs (all times in abstract simulated units).

    ``arrival`` selects the client model: ``"closed"`` (default) runs
    ``clients`` closed-loop clients with exponential think times;
    ``"open"`` ignores think times and injects
    ``clients * transactions_per_client`` root transactions as a Poisson
    stream of rate ``arrival_rate``.  ``service_times`` overrides the
    mean access service time per component (heterogeneous components —
    a slow disk-bound site next to a fast cache)."""

    topology: TopologySpec
    protocol: Union[str, Dict[str, str]] = "cc"
    clients: int = 4
    transactions_per_client: int = 10
    program: ProgramConfig = ProgramConfig()
    mean_service_time: float = 1.0
    service_times: Optional[Dict[str, float]] = None
    think_time: float = 0.5
    deadlock_timeout: float = 60.0
    retry_backoff: float = 3.0
    max_attempts: int = 25
    seed: int = 0
    arrival: str = "closed"
    arrival_rate: float = 1.0
    #: attach the shared divergence-point order registry to CC
    #: schedulers (on by default; the A2 ablation switches it off to
    #: measure exactly what the registry buys)
    cc_registry: bool = True
    #: optional custom program source: ``factory(topology, home, rng) ->
    #: Program``.  Defaults to the random generator; named scenarios
    #: (repro.simulator.scenarios) plug in here.
    program_factory: "Optional[Callable]" = None
    #: retry pacing + give-up policy: a name from
    #: :data:`repro.simulator.retry.POLICIES` (instantiated with
    #: ``retry_backoff`` as base) or a ready :class:`RetryPolicy`.
    retry_policy: Union[str, RetryPolicy] = "linear"
    #: optional fault plan (crashes, drops, degradation, transient
    #: failures); ``None`` runs fault-free.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.arrival not in ("closed", "open"):
            raise SimulationError(f"unknown arrival model {self.arrival!r}")
        if self.arrival == "open" and self.arrival_rate <= 0:
            raise SimulationError("open-loop arrival_rate must be positive")
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("retry_backoff", "deadlock_timeout", "think_time"):
            value = getattr(self, name)
            if value < 0:
                raise SimulationError(
                    f"{name} must be >= 0, got {value}"
                )
        protocols = (
            {None: self.protocol}
            if isinstance(self.protocol, str)
            else self.protocol
        )
        for component, protocol in protocols.items():
            if protocol not in PROTOCOLS:
                where = f" for component {component!r}" if component else ""
                raise SimulationError(
                    f"unknown protocol {protocol!r}{where}; "
                    f"choose from {sorted(PROTOCOLS)}"
                )
        if (
            isinstance(self.retry_policy, str)
            and self.retry_policy not in POLICIES
        ):
            raise SimulationError(
                f"unknown retry policy {self.retry_policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise SimulationError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )

    def protocol_for(self, component: str) -> str:
        if isinstance(self.protocol, str):
            return self.protocol
        return self.protocol.get(component, "cc")

    def service_time_for(self, component: str) -> float:
        if self.service_times and component in self.service_times:
            return self.service_times[component]
        return self.mean_service_time


@dataclass
class _Frame:
    """One executing (sub)transaction in the fork-join task tree.

    ``outstanding`` counts live child frames; a frame past its last step
    completes only when it reaches zero.  ``path`` is the chain of local
    transaction ids from the root's top transaction down to this frame —
    the divergence information the CC registry orders by.
    ``last_units`` holds the child ids of the most recent call segment
    (used to seed the structural program order into the registry).
    """

    component: str
    txn: str
    steps: list
    path: Tuple[str, ...] = ()
    index: int = 0
    outstanding: int = 0
    parent: "Optional[_Frame]" = None
    last_units: List[str] = field(default_factory=list)


@dataclass
class _Root:
    name: str
    client: int
    program: Program
    attempt: int = 0
    top: "Optional[_Frame]" = None
    involved: List[Tuple[str, str]] = field(default_factory=list)
    start_time: float = 0.0
    timeouts: Dict[Tuple[str, str], EventHandle] = field(default_factory=dict)
    call_counter: int = 0
    done: bool = False
    #: bumped on every abort AND every (re)start: in-flight events from a
    #: dead attempt must never touch the root again, even in the window
    #: between an abort and the retry (where ``attempt`` is unchanged).
    epoch: int = 0
    #: how often each abort reason hit this root (retry-budget input)
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    #: backoff the root waited before the current attempt (decorrelated
    #: jitter feeds on it)
    last_delay: float = 0.0


@dataclass
class SimulationResult:
    """Outcome of one run."""

    config: SimulationConfig
    metrics: Metrics
    assembled: Optional[AssembledRun]

    @property
    def recorded(self):
        return self.assembled.recorded if self.assembled else None


class Simulation:
    """One seeded simulation run."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config
        # Resolved once: the ambient sink active at construction time
        # (the batch runner activates a per-task stream around workers).
        self.telemetry = telemetry if telemetry is not None else current()
        self.rng = random.Random(config.seed)
        self.queue = EventQueue()
        self.metrics = Metrics()
        self.metrics.components = len(config.topology.schedule_names)
        self.recorder = ExecutionRecorder()
        self.retry_policy = make_retry_policy(
            config.retry_policy, base=config.retry_backoff
        )
        # The injector draws from its own seeded stream, so attaching a
        # plan never perturbs the workload RNG.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(config.faults, config.topology.schedule_names)
            if config.faults is not None and not config.faults.empty
            else None
        )
        self.schedulers: Dict[str, ComponentScheduler] = {
            name: make_scheduler(config.protocol_for(name), name)
            for name in config.topology.schedule_names
        }
        # All CC schedulers of one system share a root-order registry
        # (the ticket service that makes cross-component serialization
        # consistent; see repro.schedulers.composite_cc).
        self.registry = RootOrderRegistry()
        if config.cc_registry:
            for scheduler in self.schedulers.values():
                if isinstance(scheduler, CompositeCCScheduler):
                    scheduler.attach_registry(self.registry)
        # Engine-side order knowledge per component (Def. 4.7 plumbing).
        self._required: Dict[str, Relation] = {
            name: Relation() for name in config.topology.schedule_names
        }
        # (caller_txn, child_txn, callee, root, segment) per component,
        # in issue order.
        self._issued_calls: Dict[
            str, List[Tuple[str, str, str, str, int]]
        ] = {name: [] for name in config.topology.schedule_names}
        self._pending_block: Dict[
            Tuple[str, str], Tuple[_Root, _Frame, str, str]
        ] = {}
        self._roots: Dict[str, _Root] = {}
        self._remaining: Dict[int, int] = {}
        self._root_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, *, max_events: int = 2_000_000) -> SimulationResult:
        with self.telemetry.span(
            "sim.run",
            seed=self.config.seed,
            protocol=self.config.protocol
            if isinstance(self.config.protocol, str)
            else repr(self.config.protocol),
            topology=self.config.topology.name,
        ) as span:
            result = self._run(max_events=max_events)
            span.note(
                events=result.metrics.operations,
                commits=result.metrics.commits,
                end_time=result.metrics.end_time,
            )
        return result

    def _run(self, *, max_events: int) -> SimulationResult:
        cfg = self.config
        if self.faults is not None:
            # Crash windows become queue events; degradation windows
            # need none (they are looked up at completion-scheduling
            # time) and drops/transients are per-call draws.
            for window in self.faults.plan.crashes:
                self.queue.schedule(
                    window.at,
                    lambda c=window.component: self._crash(c),
                )
                self.queue.schedule(
                    window.up_at,
                    lambda c=window.component: self._restore(c),
                )
        if cfg.arrival == "open":
            # Poisson arrivals: pre-schedule the whole stream (client -1
            # is the open-loop source; completions trigger nothing).
            self._remaining[-1] = cfg.clients * cfg.transactions_per_client
            at = 0.0
            for _ in range(self._remaining[-1]):
                at += self.rng.expovariate(cfg.arrival_rate)
                self.queue.schedule(at, lambda: self._next_root(-1))
        else:
            for client in range(cfg.clients):
                self._remaining[client] = cfg.transactions_per_client
                jitter = self.rng.random() * cfg.think_time
                self.queue.schedule(
                    jitter, lambda c=client: self._next_root(c)
                )
        fired = self.queue.run(max_events=max_events)
        if fired >= max_events:  # pragma: no cover - runaway guard
            raise SimulationError(
                f"simulation exceeded {max_events} events; likely livelock"
            )
        self.metrics.end_time = self.queue.now
        if self.faults is not None:
            self.metrics.faults_injected = dict(self.faults.counts)
            self.metrics.downtime = self.faults.downtime(self.queue.now)
            for kind, hits in sorted(self.metrics.faults_injected.items()):
                self.telemetry.count("sim.fault", value=hits, kind=kind)
        assembled = (
            self.recorder.assemble()
            if self.recorder.committed_count
            else None
        )
        return SimulationResult(
            config=cfg, metrics=self.metrics, assembled=assembled
        )

    # ------------------------------------------------------------------
    # client loop
    # ------------------------------------------------------------------
    def _next_root(self, client: int) -> None:
        if self._remaining[client] <= 0:
            return
        self._remaining[client] -= 1
        self._root_counter += 1
        name = f"R{self._root_counter}_{client}" if client >= 0 else (
            f"R{self._root_counter}_open"
        )
        home = self.config.topology.root_schedules[
            self.rng.randrange(len(self.config.topology.root_schedules))
        ]
        if self.config.program_factory is not None:
            program = self.config.program_factory(
                self.config.topology, home, self.rng
            )
        else:
            program = random_program(
                self.config.topology, home, self.config.program, self.rng
            )
        root = _Root(name=name, client=client, program=program)
        self._roots[name] = root
        self._start_attempt(root)

    def _after_completion(self, client: int) -> None:
        if client < 0:
            return  # open-loop: arrivals are pre-scheduled
        if self._remaining[client] > 0:
            delay = (
                self.rng.expovariate(1.0 / self.config.think_time)
                if self.config.think_time > 0
                else 0.0
            )
            self.queue.schedule(delay, lambda: self._next_root(client))

    # ------------------------------------------------------------------
    # attempt lifecycle
    # ------------------------------------------------------------------
    def _start_attempt(self, root: _Root) -> None:
        self.telemetry.count("sim.attempt")
        root.attempt += 1
        root.epoch += 1
        root.call_counter = 0
        root.involved = []
        root.timeouts = {}
        root.start_time = self.queue.now
        self.recorder.begin_attempt(root.name)
        if self.faults is not None and self.faults.is_down(
            root.program.component
        ):
            # The home component refuses service: the attempt dies
            # before any scheduler sees it.
            self._abort_root(root, "component_down")
            return
        top_txn = f"{root.name}a{root.attempt}"
        root.top = _Frame(
            root.program.component,
            top_txn,
            root.program.steps,
            path=(top_txn,),
        )
        self._begin_transaction(root, root.program.component, top_txn, (top_txn,))
        self._advance(root, root.top)

    def _begin_transaction(
        self,
        root: _Root,
        component: str,
        txn: str,
        path: Tuple[str, ...],
    ) -> None:
        scheduler = self.schedulers[component]
        scheduler.begin(txn)
        scheduler.set_origin(txn, root.name)
        scheduler.set_path(txn, path)
        root.involved.append((component, txn))
        self.recorder.begin_transaction(root.name, txn, component)

    def _advance(self, root: _Root, frame: _Frame) -> None:
        """Drive one frame of the fork-join task tree.

        A completed frame bubbles up: the parent resumes when all
        children of its current call segment have finished.  Events
        (never recursion) drive sibling frames, which keeps re-entrancy
        out of the state machine.
        """
        if root.done:
            return
        while True:
            if frame.index >= len(frame.steps):
                if frame.outstanding > 0:
                    return  # waiting for the current call segment
                parent = frame.parent
                if parent is None:
                    self._commit_root(root)
                    return
                # Local completion: nested locking retains this frame's
                # holdings at the parent — at *every* component, because
                # locks inherited from the frame's own children may live
                # at components the frame never visited itself.
                for component, scheduler in self.schedulers.items():
                    scheduler.finish(frame.txn, parent=parent.txn)
                    self._drain(component)
                if root.done:
                    return  # a woken sibling cascaded into a terminal state
                parent.outstanding -= 1
                if parent.outstanding == 0:
                    frame = parent
                    continue
                return  # siblings of this frame are still running
            step = frame.steps[frame.index]
            if isinstance(step, AccessStep):
                self._request_access(root, frame, step)
                return  # waiting for completion, block, or aborted
            self._launch_call_segment(root, frame)
            return  # fork-join: resume when the segment's children finish

    def _launch_call_segment(self, root: _Root, frame: _Frame) -> None:
        """Issue the next call — or, with ``parallel_calls``, the whole
        maximal run of consecutive calls — as concurrent child frames."""
        start = frame.index
        end = start + 1
        if self.config.program.parallel_calls:
            while end < len(frame.steps) and isinstance(
                frame.steps[end], CallStep
            ):
                end += 1
        segment = frame.steps[start:end]
        if self.faults is not None:
            # Call messages can hit a dead callee or get lost on the
            # wire; either way the whole attempt fails fast (detection
            # latency is folded into the retry backoff).
            for step in segment:
                if self.faults.is_down(step.component):
                    self._abort_root(root, "component_down")
                    return
                if self.faults.drop_call(frame.component, step.component):
                    self._abort_root(root, "message_drop")
                    return
        frame.index = end
        frame.outstanding += len(segment)
        epoch = root.epoch
        new_units: List[str] = []
        children: List[_Frame] = []
        for step in segment:
            child_frame = self._issue_call(root, frame, step, segment_id=start)
            children.append(child_frame)
            new_units.append(child_frame.txn)
        # Structural program order: every unit of an earlier segment of
        # this frame precedes every unit of this one (transitively via
        # the previous segment).  Seeding the registry with these edges
        # lets the CC protocol refuse accesses that would contradict the
        # program order across components.
        for previous in frame.last_units:
            for unit in new_units:
                self.registry.try_order(
                    previous, unit, tag=unit, witness=previous
                )
        frame.last_units = new_units
        for child_frame in children:
            self.queue.schedule(
                0.0,
                lambda r=root, f=child_frame, e=epoch: (
                    self._advance(r, f)
                    if not r.done and r.epoch == e
                    else None
                ),
            )

    # ------------------------------------------------------------------
    # access handling
    # ------------------------------------------------------------------
    def _request_access(
        self, root: _Root, frame: _Frame, step: AccessStep
    ) -> None:
        if self.faults is not None:
            if self.faults.is_down(frame.component):
                # Defensive: a crash aborts every involved root, so a
                # live frame at a down component should not exist — but
                # fail fast rather than trust that invariant.
                self._abort_root(root, "component_down")
                return
            if self.faults.access_fails(frame.component):
                self._abort_root(root, "transient")
                return
        scheduler = self.schedulers[frame.component]
        decision = scheduler.request(frame.txn, step.item, step.mode)
        if decision is Decision.GRANT:
            self._schedule_completion(root, frame, step)
        elif decision is Decision.BLOCK:
            key = (frame.component, frame.txn)
            self._pending_block[key] = (root, frame, step.item, step.mode)
            root.timeouts[key] = self.queue.schedule(
                self.config.deadlock_timeout,
                lambda: self._abort_root(root, "timeout"),
            )
        else:
            self._abort_root(root, "protocol")

    def _schedule_completion(
        self, root: _Root, frame: _Frame, step: AccessStep
    ) -> None:
        mean = self.config.service_time_for(frame.component)
        if self.faults is not None:
            mean *= self.faults.degradation_factor(
                frame.component, self.queue.now
            )
        service = self.rng.expovariate(1.0 / mean)
        epoch = root.epoch
        # Record at the *grant* instant: that is when the scheduler fixes
        # the serialization position of the access.  Recording at
        # completion would let overlapping service intervals reorder
        # conflicting accesses behind the scheduler's back.
        op_id = f"{frame.txn}.o{frame.index}"
        self.recorder.record_access(
            root.name,
            frame.component,
            frame.txn,
            op_id,
            step.item,
            step.mode,
            self.queue.now,
            segment=frame.index,
        )

        def complete() -> None:
            if root.done or root.epoch != epoch:
                return  # the attempt was aborted meanwhile
            self.metrics.operations += 1
            frame.index += 1
            self._advance(root, frame)

        self.queue.schedule(service, complete)

    # ------------------------------------------------------------------
    # call handling and order propagation (Def. 4.7)
    # ------------------------------------------------------------------
    def _issue_call(
        self, root: _Root, frame: _Frame, step: CallStep, *, segment_id: int
    ) -> _Frame:
        root.call_counter += 1
        child = f"{root.name}a{root.attempt}.c{root.call_counter}"
        caller_component = frame.component
        callee = step.component
        self._propagate_orders(
            caller_component, frame.txn, child, callee, segment_id
        )
        self._issued_calls[caller_component].append(
            (frame.txn, child, callee, root.name, segment_id)
        )
        child_path = frame.path + (child,)
        self._begin_transaction(root, callee, child, child_path)
        self.recorder.record_call(
            root.name,
            caller_component,
            frame.txn,
            child,
            self.queue.now,
            segment=segment_id,
        )
        return _Frame(
            callee, child, step.steps, path=child_path, parent=frame
        )

    def _propagate_orders(
        self,
        caller: str,
        caller_txn: str,
        child: str,
        callee: str,
        segment_id: int,
    ) -> None:
        """Tell the callee which earlier calls must precede ``child``.

        A sibling call of the *same* transaction precedes ``child`` only
        when it belongs to an earlier segment (members of one parallel
        run are mutually unordered, Def. 1); calls of other transactions
        precede it when the caller component has an established order
        between the transactions.
        """
        scheduler = self.schedulers[caller]
        if isinstance(scheduler, CompositeCCScheduler):
            caller_order = scheduler.committed_order().union(
                self._required[caller]
            )
        else:
            caller_order = self._required[caller]
        callee_scheduler = self.schedulers[callee]
        for (
            earlier_txn,
            earlier_child,
            target,
            _root,
            earlier_segment,
        ) in self._issued_calls[caller]:
            if target != callee:
                continue
            if earlier_txn == caller_txn:
                ordered = earlier_segment != segment_id
            else:
                ordered = caller_order.reaches(earlier_txn, caller_txn)
            if ordered:
                self._required[callee].add(earlier_child, child)
                callee_scheduler.require_order(earlier_child, child)

    # ------------------------------------------------------------------
    # terminal outcomes
    # ------------------------------------------------------------------
    def _commit_root(self, root: _Root) -> None:
        root.done = True
        touched = []
        for component, txn in root.involved:
            self.schedulers[component].commit(txn)
            touched.append(component)
        self.recorder.commit_root(root.name)
        self.telemetry.count("sim.commit")
        self.metrics.commits += 1
        self.metrics.response_times.append(self.queue.now - root.start_time)
        self._after_completion(root.client)
        for component in touched:
            self._drain(component)

    def _abort_root(self, root: _Root, reason: str) -> None:
        if root.done:
            return
        root.epoch += 1  # invalidate every in-flight event of the attempt
        self.telemetry.count("sim.abort", reason=reason)
        self.metrics.record_abort(reason)
        root.abort_reasons[reason] = root.abort_reasons.get(reason, 0) + 1
        for handle in root.timeouts.values():
            handle.cancel()
        root.timeouts = {}
        touched = []
        for component, txn in root.involved:
            self._pending_block.pop((component, txn), None)
            self.schedulers[component].abort(txn)
            touched.append(component)
        self._issued_calls_purge(root.name)
        self.recorder.discard_attempt(root.name)
        root.top = None
        root.involved = []
        if not self.retry_policy.should_retry(
            root.attempt,
            self.config.max_attempts,
            reason,
            root.abort_reasons[reason],
        ):
            root.done = True
            self.telemetry.count("sim.giveup", reason=reason)
            self.metrics.record_giveup(reason)
            self._after_completion(root.client)
        else:
            self.telemetry.count("sim.retry", reason=reason)
            self.metrics.record_retry(reason)
            delay = self.retry_policy.delay(
                root.attempt, self.rng, root.last_delay
            )
            root.last_delay = delay
            self.queue.schedule(delay, lambda: self._restart(root))
        for component in touched:
            self._drain(component)

    # ------------------------------------------------------------------
    # fault events (crash / restart)
    # ------------------------------------------------------------------
    def _crash(self, component: str) -> None:
        """The component loses its volatile state: every in-flight root
        that touched it dies, then the scheduler recovers from its
        durable log (reset).  The component stays down — refusing calls
        and fresh attempts — until the matching restore event."""
        assert self.faults is not None
        self.faults.mark_down(component)
        victims = [
            root
            for root in self._roots.values()
            if not root.done
            and any(c == component for c, _ in root.involved)
        ]
        for root in victims:
            self._abort_root(root, "crash")
        self.schedulers[component].reset()

    def _restore(self, component: str) -> None:
        assert self.faults is not None
        self.faults.mark_up(component)

    def _restart(self, root: _Root) -> None:
        if not root.done:
            self._start_attempt(root)

    def _issued_calls_purge(self, root_name: str) -> None:
        for component, calls in self._issued_calls.items():
            self._issued_calls[component] = [
                entry for entry in calls if entry[3] != root_name
            ]

    # ------------------------------------------------------------------
    # unblocking
    # ------------------------------------------------------------------
    def _drain(self, component: str) -> None:
        scheduler = self.schedulers[component]
        for txn, item, mode in scheduler.drain_granted():
            key = (component, txn)
            entry = self._pending_block.pop(key, None)
            if entry is None:
                continue  # the owner aborted in the meantime
            root, frame, want_item, want_mode = entry
            if root.done or (want_item, want_mode) != (item, mode):
                continue
            handle = root.timeouts.pop(key, None)
            if handle is not None:
                handle.cancel()
            step = frame.steps[frame.index]
            assert isinstance(step, AccessStep)
            self._schedule_completion(root, frame, step)


def simulate(
    config: SimulationConfig,
    *,
    telemetry: Optional[Telemetry] = None,
    **run_kwargs,
) -> SimulationResult:
    """Convenience: build and run one simulation."""
    return Simulation(config, telemetry=telemetry).run(**run_kwargs)
