"""composite-tx — Correctness in General Configurations of Transactional
Components (PODS 1999), reproduced as a production-quality Python library.

The package decides **composite correctness (Comp-C)** for executions of
component-based transactional systems in which every component runs its
own scheduler and components invoke one another in an arbitrary acyclic
configuration.  It also ships the prior-art criteria the paper compares
against (classical conflict serializability, LLSR, OPSR, SCC, FCC, JCC),
per-component concurrency-control protocols, a discrete-event simulator
of composite systems, workload/topology generators, and the benchmark
harness that regenerates every figure and theorem of the paper.

Quickstart
----------
>>> from repro import SystemBuilder, check_composite_correctness
>>> b = SystemBuilder()
>>> _ = b.transaction("T1", "Top", ["t11", "t12"])
>>> _ = b.transaction("T2", "Top", ["t21"])
>>> _ = b.conflict("Top", "t11", "t21").conflict("Top", "t21", "t12")
>>> _ = b.transaction("t11", "DB", ["r1"])
>>> _ = b.transaction("t12", "DB", ["w1"])
>>> _ = b.transaction("t21", "DB", ["w2"])
>>> _ = b.conflict("DB", "r1", "w2").conflict("DB", "w2", "w1")
>>> _ = b.executed("DB", ["r1", "w2", "w1"]).executed("Top", ["t11", "t21", "t12"])
>>> report = check_composite_correctness(b.build())
>>> report.correct
False

``T2``'s work lands between two conflicting pieces of ``T1`` and the
application layer knows the steps conflict: ``T1`` cannot be isolated.
Had ``Top`` declared the steps commutative (no ``Top`` conflicts), the
same database behaviour would be Comp-C — higher-level semantic
knowledge erases lower-level conflicts.
"""

from repro.core import (
    CompositeSystem,
    CorrectnessReport,
    Front,
    ObservedOrderOptions,
    ReductionEngine,
    ReductionFailure,
    ReductionResult,
    Relation,
    Schedule,
    SystemBuilder,
    Transaction,
    build_system,
    check_composite_correctness,
    is_composite_correct,
    reduce_to_roots,
)

__version__ = "1.0.0"

__all__ = [
    "CompositeSystem",
    "CorrectnessReport",
    "Front",
    "ObservedOrderOptions",
    "ReductionEngine",
    "ReductionFailure",
    "ReductionResult",
    "Relation",
    "Schedule",
    "SystemBuilder",
    "Transaction",
    "build_system",
    "check_composite_correctness",
    "is_composite_correct",
    "reduce_to_roots",
    "__version__",
]
