"""Rendering: Graphviz DOT export and terminal (ASCII) views."""

from repro.viz.ascii_art import render_forest, render_front, render_levels
from repro.viz.dot import forest_dot, front_dot, invocation_graph_dot
from repro.viz.timeline import interleaving_profile, render_lanes

__all__ = [
    "render_forest",
    "render_front",
    "render_levels",
    "forest_dot",
    "front_dot",
    "invocation_graph_dot",
    "interleaving_profile",
    "render_lanes",
]
