"""Terminal rendering of composite systems and reductions.

The examples print these: an indented execution-forest view, a level
map of the invocation graph, and relation listings for fronts.
"""

from __future__ import annotations

from typing import List

from repro.core.front import Front
from repro.core.system import CompositeSystem


def render_forest(system: CompositeSystem) -> str:
    """Indented tree view of every composite transaction."""
    lines: List[str] = []

    def label(node: str) -> str:
        if system.is_transaction(node):
            return f"{node}  [{system.schedule_of_transaction(node)}]"
        return node

    def visit(node: str, prefix: str, last: bool) -> None:
        connector = "`-- " if last else "|-- "
        lines.append(prefix + connector + label(node))
        if system.is_transaction(node):
            children = system.children(node)
            extension = "    " if last else "|   "
            for i, child in enumerate(children):
                visit(child, prefix + extension, i == len(children) - 1)

    for root in system.roots:
        lines.append(label(root))
        children = system.children(root)
        for i, child in enumerate(children):
            visit(child, "", i == len(children) - 1)
        lines.append("")
    return "\n".join(lines).rstrip()


def render_levels(system: CompositeSystem) -> str:
    """Schedules grouped by level, top down (the Figure-1 view)."""
    by_level: dict = {}
    for name, level in system.levels.items():
        by_level.setdefault(level, []).append(name)
    lines = []
    for level in sorted(by_level, reverse=True):
        names = ", ".join(sorted(by_level[level]))
        lines.append(f"level {level}: {names}")
    return "\n".join(lines)


def render_front(front: Front) -> str:
    """One front: nodes, observed order, input orders, CC verdict."""
    lines = [f"level {front.level} front"]
    lines.append("  nodes:    " + ", ".join(front.nodes))
    obs = ", ".join(f"{a}<{b}" for a, b in front.observed.pairs())
    lines.append("  observed: " + (obs or "(empty)"))
    inp = ", ".join(f"{a}->{b}" for a, b in front.input_weak.pairs())
    lines.append("  inputs:   " + (inp or "(empty)"))
    lines.append(
        "  CC:       " + ("yes" if front.is_conflict_consistent() else "NO")
    )
    return "\n".join(lines)
