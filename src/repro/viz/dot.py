"""Graphviz DOT export of the model's graphs.

Produces plain DOT text (no graphviz dependency — render with any
``dot`` binary or online viewer): invocation graphs, execution forests
and computational fronts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.front import Front
from repro.core.system import CompositeSystem


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def invocation_graph_dot(system: CompositeSystem) -> str:
    """The Def.-8 invocation graph, ranked by level."""
    lines: List[str] = ["digraph invocation {", "  rankdir=TB;"]
    by_level: dict = {}
    for name, level in system.levels.items():
        by_level.setdefault(level, []).append(name)
    for level in sorted(by_level, reverse=True):
        members = " ".join(_quote(n) for n in sorted(by_level[level]))
        lines.append(f"  {{ rank=same; {members} }}")
    for name, level in sorted(system.levels.items()):
        lines.append(
            f"  {_quote(name)} [shape=box, label={_quote(f'{name} (L{level})')}];"
        )
    for a, b in system.invocation_graph.pairs():
        lines.append(f"  {_quote(a)} -> {_quote(b)};")
    lines.append("}")
    return "\n".join(lines)


def forest_dot(system: CompositeSystem) -> str:
    """The execution forest: every composite transaction as a tree."""
    lines: List[str] = ["digraph forest {", "  rankdir=TB;"]
    for node in system.all_nodes():
        if system.is_root(node):
            shape, style = "doubleoctagon", "bold"
        elif system.is_leaf(node):
            shape, style = "ellipse", "solid"
        else:
            shape, style = "box", "solid"
        lines.append(
            f"  {_quote(node)} [shape={shape}, style={style}];"
        )
    for node in system.all_nodes():
        if system.is_transaction(node):
            for child in system.children(node):
                lines.append(f"  {_quote(node)} -> {_quote(child)};")
    lines.append("}")
    return "\n".join(lines)


def front_dot(front: Front, *, title: Optional[str] = None) -> str:
    """A front with its observed order (solid) and input orders (dashed)."""
    name = title or f"front_level_{front.level}"
    lines: List[str] = [f"digraph {name.replace(' ', '_')} {{"]
    lines.append(f'  label="{name}"; labelloc=top;')
    for node in front.nodes:
        lines.append(f"  {_quote(node)} [shape=box];")
    for a, b in front.observed.pairs():
        lines.append(f"  {_quote(a)} -> {_quote(b)};")
    for a, b in front.input_weak.pairs():
        lines.append(f"  {_quote(a)} -> {_quote(b)} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)
