"""ASCII execution lanes: who did what, where, in which order.

Renders a recorded execution as one lane per component, each operation
shown as the composite transaction that issued it — the quickest way to
*see* an interleaving pattern (and to spot a wrapped transaction at a
glance).  Used by the CLI's ``info`` command and handy in notebooks.

::

    DB  | T1 T2 T2 T1 | 4 ops, 2 transactions
        | r_stock w_stock w_order ...
"""

from __future__ import annotations

from typing import Dict, List

from repro.criteria.registry import RecordedExecution


def render_lanes(
    recorded: RecordedExecution,
    *,
    max_width: int = 72,
    show_ops: bool = False,
) -> str:
    """One lane per schedule: the sequence of root transactions whose
    work executed, in temporal order (consecutive duplicates merged when
    the lane would overflow ``max_width``)."""
    system = recorded.system
    lines: List[str] = []
    name_width = max((len(n) for n in recorded.executions), default=0)
    for sname in sorted(recorded.executions):
        sequence = recorded.executions[sname]
        roots = [system.root_of(op) for op in sequence]
        cells = roots
        rendered = " ".join(cells)
        if len(rendered) > max_width:
            # Merge consecutive repeats: T1 T1 T1 -> T1x3
            merged: List[str] = []
            for root in roots:
                if merged and merged[-1].split("x")[0] == root:
                    head, _x, count = merged[-1].partition("x")
                    merged[-1] = f"{head}x{int(count or 1) + 1}"
                else:
                    merged.append(root)
            rendered = " ".join(merged)
        if len(rendered) > max_width:
            rendered = rendered[: max_width - 3] + "..."
        distinct = len(set(roots))
        lines.append(
            f"{sname.ljust(name_width)} | {rendered}"
            f"  ({len(sequence)} ops, {distinct} transactions)"
        )
        if show_ops:
            ops = " ".join(sequence)
            if len(ops) > max_width:
                ops = ops[: max_width - 3] + "..."
            lines.append(f"{' ' * name_width} | {ops}")
    return "\n".join(lines)


def interleaving_profile(recorded: RecordedExecution) -> Dict[str, int]:
    """Per schedule: how many *switches* between different composite
    transactions the execution contains (0 = serial layout there)."""
    system = recorded.system
    profile: Dict[str, int] = {}
    for sname, sequence in recorded.executions.items():
        roots = [system.root_of(op) for op in sequence]
        switches = sum(1 for a, b in zip(roots, roots[1:]) if a != b)
        runs_lower_bound = len(set(roots)) - 1
        profile[sname] = max(0, switches - runs_lower_bound)
    return profile
