"""The well-formedness pass: every Def. 2/3/4 constraint as diagnostics.

The engine enforces the model definitions fail-fast — a malformed model
surfaces as the *first* :class:`~repro.exceptions.ModelError` raised
mid-construction.  This pass re-checks the same constraints as
*collected* diagnostics so one run reports every defect:

1. a **raw pass** over the document dictionary mirrors every
   unconditional construction check (dangling references, duplicate
   declarations, cyclic orders) — these must be caught *before*
   construction, because constructors raise on them regardless of
   ``validate=False``;
2. when the raw pass finds no errors, the system is **constructed**
   with ``validate=False`` (axioms and Def. 4.7 deferred) and the
   engine's own check generators —
   :meth:`~repro.core.schedule.Schedule.iter_axiom_violations` and
   :meth:`~repro.core.system.CompositeSystem.iter_order_propagation_violations`
   — are drained into diagnostics.  Because these are the *same*
   generators the constructors raise from, linter and engine can never
   disagree about what constitutes a violation.

Documents are linted **as written**: construction here does *not* apply
the builder's automatic Def.-4.7 order propagation, so a document whose
explicit relations violate Def. 4.7 gets a ``CTX207``/``CTX208``
diagnostic (with a fix hint pointing at the propagation) even though
:func:`repro.io.load` would silently repair it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.builder import SystemBuilder, _execution_pairs
from repro.core.front import Front
from repro.core.orders import Relation
from repro.core.schedule import Schedule, _normalize_conflicts
from repro.core.system import CompositeSystem
from repro.exceptions import CompositeTxError, ScheduleAxiomError
from repro.io.text_format import FORMAT_VERSION
from repro.io.trace import TRACE_VERSION
from repro.lint.diagnostics import AXIOM_CODES, Diagnostic, DiagnosticCollector
from repro.workloads.topologies import TopologySpec

_AXIOM_HINTS: Dict[str, str] = {
    "1a": "order the conflicting operations to match the weak input order",
    "1b": "order the conflicting operations to match the weak input order",
    "1c": "add a weak output pair between the conflicting operations",
    "2a": "surface the intra-transaction weak order in the weak output",
    "2b": "surface the intra-transaction strong order in the strong output",
    "3": "expand the strong input order into strong output operation pairs",
    "4": "every strong output pair must also be a weak output pair",
}


def axiom_diagnostic(
    collector: DiagnosticCollector, violation: ScheduleAxiomError
) -> Diagnostic:
    """Record one Def.-3 axiom violation under its stable code, reusing
    the exception's structured payload as the diagnostic location."""
    return collector.report(
        AXIOM_CODES[violation.axiom],
        str(violation),
        schedule=violation.schedule,
        nodes=violation.operations + violation.transactions,
        fix_hint=_AXIOM_HINTS[violation.axiom],
    )


def lint_schedule_axioms(
    collector: DiagnosticCollector, schedule: Schedule
) -> None:
    """Drain every axiom violation of one schedule into the collector."""
    for violation in schedule.iter_axiom_violations():
        axiom_diagnostic(collector, violation)


# ----------------------------------------------------------------------
# API path: lint already-constructed Schedule objects
# ----------------------------------------------------------------------
def lint_schedules(
    collector: DiagnosticCollector, schedules: Sequence[Schedule]
) -> Optional[CompositeSystem]:
    """Lint a set of constructed schedules as one composite system.

    Collects every system-level (CTX2xx) and axiom (CTX10x) defect;
    when the structural checks pass, the :class:`CompositeSystem` is
    assembled (``validate=False``) and returned so further passes (the
    static safety prover) can run on it.  Returns ``None`` when the
    system could not be assembled.
    """
    before = len(collector.errors)
    by_name: Dict[str, Schedule] = {}
    for schedule in schedules:
        if schedule.name in by_name:
            collector.report(
                "CTX201",
                f"two schedules named {schedule.name!r}",
                schedule=schedule.name,
                fix_hint="rename one of the schedules",
            )
            continue
        by_name[schedule.name] = schedule

    txn_schedule: Dict[str, str] = {}
    op_owner: Dict[str, Tuple[str, str]] = {}
    for sname, schedule in by_name.items():
        for tname, txn in schedule.transactions.items():
            if tname in txn_schedule and txn_schedule[tname] != sname:
                collector.report(
                    "CTX202",
                    f"transaction {tname!r} assigned to both "
                    f"{txn_schedule[tname]!r} and {sname!r}",
                    schedule=sname,
                    nodes=(tname,),
                    fix_hint="give each schedule its own transactions",
                )
            else:
                txn_schedule[tname] = sname
            for op in txn.operations:
                owner = op_owner.get(op)
                if owner is not None and owner != (sname, tname):
                    collector.report(
                        "CTX203",
                        f"node {op!r} is an operation of both "
                        f"{owner[1]!r} and {tname!r}",
                        schedule=sname,
                        nodes=(op,),
                        fix_hint="operation names must be globally unique",
                    )
                else:
                    op_owner[op] = (sname, tname)

    if txn_schedule and not any(
        tname not in op_owner for tname in txn_schedule
    ):
        collector.report(
            "CTX204",
            "every transaction is invoked by another one — the system "
            "has no root",
            fix_hint="at least one transaction must be nobody's operation",
        )

    _lint_invocation_graph(
        collector,
        {
            sname: list(schedule.operations)
            for sname, schedule in by_name.items()
        },
        txn_schedule,
    )

    for schedule in by_name.values():
        lint_schedule_axioms(collector, schedule)

    if len(collector.errors) > before:
        return None
    try:
        system = CompositeSystem(list(by_name.values()), validate=False)
    except CompositeTxError as err:
        collector.report("CTX305", f"system construction failed: {err}")
        return None
    lint_order_propagation(collector, system)
    return system


def lint_order_propagation(
    collector: DiagnosticCollector, system: CompositeSystem
) -> None:
    """Def. 4.7 as diagnostics, via the engine's own generator."""
    for violation in system.iter_order_propagation_violations():
        collector.report(
            "CTX207" if violation.kind == "weak" else "CTX208",
            str(violation),
            schedule=violation.caller,
            nodes=violation.pair,
            fix_hint=(
                f"add the pair to the {violation.kind} input order of "
                f"{violation.callee!r} (SystemBuilder propagates it "
                "automatically)"
            ),
        )


def _lint_invocation_graph(
    collector: DiagnosticCollector,
    operations_of: Mapping[str, Sequence[str]],
    txn_schedule: Mapping[str, str],
) -> None:
    """CTX205/CTX206: self-invocation and invocation-graph recursion."""
    graph = Relation(elements=operations_of)
    for sname, ops in operations_of.items():
        for op in ops:
            target = txn_schedule.get(op)
            if target is None:
                continue
            if target == sname:
                collector.report(
                    "CTX205",
                    f"schedule {sname!r} invokes itself through {op!r}",
                    schedule=sname,
                    nodes=(op,),
                    fix_hint="a transaction cannot run on the schedule "
                    "that invokes it",
                )
            else:
                graph.add(sname, target)
    cycle = graph.find_cycle()
    if cycle is not None:
        collector.report(
            "CTX206",
            "recursion in the invocation graph: "
            + " -> ".join(str(n) for n in cycle),
            nodes=tuple(str(n) for n in cycle),
            fix_hint="invocations must form a DAG (Def. 4.6)",
        )


# ----------------------------------------------------------------------
# document path: lint a raw system/execution document
# ----------------------------------------------------------------------
def lint_system_document(
    collector: DiagnosticCollector, document: Mapping
) -> Optional[CompositeSystem]:
    """Lint one execution/system document (the text-format spec shape).

    Runs the raw pass, then — when the raw pass is error-free — builds
    the system (axioms deferred) and drains the engine's axiom and
    order-propagation generators.  Returns the constructed system for
    the safety pass, or ``None`` when construction was impossible.
    """
    before = len(collector.errors)
    version = document.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        collector.report(
            "CTX303",
            f"unsupported format version {version!r} "
            f"(this library writes version {FORMAT_VERSION})",
            fix_hint="re-save the document with the current library",
        )
    schedules = document.get("schedules")
    if not isinstance(schedules, Mapping) or not schedules:
        collector.report(
            "CTX305",
            "document has no 'schedules' section",
            fix_hint="a system document maps schedule names to bodies",
        )
        return None

    ops_of_schedule: Dict[str, List[str]] = {}
    txns_of_schedule: Dict[str, List[str]] = {}
    for sname, body in schedules.items():
        if not isinstance(body, Mapping):
            collector.report(
                "CTX305",
                f"schedule {sname!r} body is not a mapping",
                schedule=str(sname),
            )
            continue
        ops, txns = _lint_raw_schedule(collector, str(sname), body)
        ops_of_schedule[str(sname)] = ops
        txns_of_schedule[str(sname)] = txns

    txn_schedule = _lint_cross_schedule(
        collector, ops_of_schedule, txns_of_schedule
    )
    _lint_invocation_graph(collector, ops_of_schedule, txn_schedule)
    _lint_executions_section(collector, document, ops_of_schedule)

    if len(collector.errors) > before:
        return None  # construction would raise on the defects just found
    try:
        system = (
            SystemBuilder.from_spec(document)
            .build(validate=False, propagate_orders=False)
        )
    except CompositeTxError as err:
        collector.report(
            "CTX305", f"system construction failed unexpectedly: {err}"
        )
        return None
    for schedule in system.schedules.values():
        lint_schedule_axioms(collector, schedule)
    lint_order_propagation(collector, system)
    return system


def _pairs(value: object) -> List[Tuple[str, str]]:
    """Coerce a JSON pair list, dropping malformed entries (the caller
    reports those separately via :func:`_check_pair_shapes`)."""
    out: List[Tuple[str, str]] = []
    if isinstance(value, (list, tuple)):
        for entry in value:
            if isinstance(entry, (list, tuple)) and len(entry) == 2:
                out.append((str(entry[0]), str(entry[1])))
    return out


def _check_pair_shapes(
    collector: DiagnosticCollector,
    sname: str,
    key: str,
    value: object,
) -> None:
    if value is None:
        return
    if not isinstance(value, (list, tuple)):
        collector.report(
            "CTX305",
            f"{key!r} of schedule {sname!r} is not a list of pairs",
            schedule=sname,
        )
        return
    for entry in value:
        if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
            collector.report(
                "CTX305",
                f"{key!r} of schedule {sname!r} contains the malformed "
                f"entry {entry!r} (expected a pair)",
                schedule=sname,
            )


def _lint_raw_schedule(
    collector: DiagnosticCollector, sname: str, body: Mapping
) -> Tuple[List[str], List[str]]:
    """The raw pass over one schedule body.

    Mirrors every unconditional check of ``Transaction.__init__`` /
    ``Schedule.__init__`` / the builder so that a raw-clean schedule is
    guaranteed to construct.  Returns ``(operations, transactions)``
    for the cross-schedule checks.
    """
    ops: List[str] = []
    txn_names: List[str] = []
    op_owner: Dict[str, str] = {}
    intra_weak: List[Tuple[str, str]] = []
    intra_strong: List[Tuple[str, str]] = []

    transactions = body.get("transactions", {})
    if not isinstance(transactions, Mapping):
        collector.report(
            "CTX305",
            f"'transactions' of schedule {sname!r} is not a mapping",
            schedule=sname,
        )
        transactions = {}
    for tname, tdef in transactions.items():
        tname = str(tname)
        txn_names.append(tname)
        if isinstance(tdef, Mapping):
            t_ops = [str(o) for o in tdef.get("ops", [])]
            weak = _pairs(tdef.get("weak", []))
            strong = _pairs(tdef.get("strong", []))
            _check_pair_shapes(collector, sname, f"{tname}.weak",
                               tdef.get("weak"))
            _check_pair_shapes(collector, sname, f"{tname}.strong",
                               tdef.get("strong"))
            if tdef.get("sequential"):
                strong = strong + list(zip(t_ops, t_ops[1:]))
        elif isinstance(tdef, (list, tuple)):
            t_ops = [str(o) for o in tdef]
            weak, strong = [], []
        else:
            collector.report(
                "CTX305",
                f"transaction {tname!r} of schedule {sname!r} is neither "
                "an operation list nor a mapping",
                schedule=sname,
                nodes=(tname,),
            )
            continue
        seen: Set[str] = set()
        for op in t_ops:
            if op in seen:
                collector.report(
                    "CTX203",
                    f"transaction {tname!r} lists operation {op!r} twice",
                    schedule=sname,
                    nodes=(op, tname),
                    fix_hint="list each operation once",
                )
                continue
            seen.add(op)
            if op == tname:
                collector.report(
                    "CTX203",
                    f"transaction {tname!r} cannot contain itself",
                    schedule=sname,
                    nodes=(tname,),
                )
                continue
            owner = op_owner.get(op)
            if owner is not None:
                collector.report(
                    "CTX203",
                    f"operation {op!r} belongs to both {owner!r} and "
                    f"{tname!r} of schedule {sname!r}",
                    schedule=sname,
                    nodes=(op,),
                    fix_hint="operation names must be globally unique",
                )
                continue
            op_owner[op] = tname
            ops.append(op)
        member_ok = True
        for a, b in weak + strong:
            for op in (a, b):
                if op not in seen:
                    member_ok = False
                    collector.report(
                        "CTX113",
                        f"intra-transaction order of {tname!r} mentions "
                        f"{op!r}, which is not one of its operations",
                        schedule=sname,
                        nodes=(op, tname),
                        fix_hint="order only declared operations",
                    )
        if member_ok:
            intra = Relation(strong + weak)
            cycle = intra.find_cycle()
            if cycle is not None:
                collector.report(
                    "CTX115",
                    f"intra-transaction order of {tname!r} is cyclic: "
                    + " -> ".join(str(n) for n in cycle),
                    schedule=sname,
                    nodes=tuple(str(n) for n in cycle),
                    fix_hint="intra-transaction orders must be acyclic",
                )
            else:
                intra_weak.extend(strong + weak)
                intra_strong.extend(strong)

    known_ops = set(ops)
    known_txns = set(txn_names)

    # conflicts: all self-conflicts and duplicates in one pass
    _check_pair_shapes(collector, sname, "conflicts",
                       body.get("conflicts"))
    raw_conflicts = _pairs(body.get("conflicts", []))

    def _conflict_issue(kind: str, pair: Tuple[str, str]) -> None:
        if kind == "self-conflict":
            collector.report(
                "CTX110",
                f"operation {pair[0]!r} of schedule {sname!r} cannot "
                "conflict with itself",
                schedule=sname,
                nodes=(pair[0],),
                fix_hint="conflicts relate two distinct operations",
            )
        else:
            collector.report(
                "CTX111",
                f"conflict pair ({pair[0]!r}, {pair[1]!r}) declared "
                f"twice on schedule {sname!r}",
                schedule=sname,
                nodes=pair,
                fix_hint="drop the duplicate declaration",
            )

    usable_conflicts = _normalize_conflicts(raw_conflicts, _conflict_issue)
    for pair in sorted(usable_conflicts, key=sorted):
        for op in sorted(pair):
            if op not in known_ops:
                collector.report(
                    "CTX112",
                    f"conflict on {op!r}, which is not an operation of "
                    f"schedule {sname!r}",
                    schedule=sname,
                    nodes=(op,),
                    fix_hint="conflicts may only name declared operations",
                )

    # input orders over transactions
    input_ok = True
    for key in ("weak_input", "strong_input"):
        _check_pair_shapes(collector, sname, key, body.get(key))
        for a, b in _pairs(body.get(key, [])):
            for t in (a, b):
                if t not in known_txns:
                    input_ok = False
                    collector.report(
                        "CTX113",
                        f"{key} of schedule {sname!r} mentions {t!r}, "
                        "which is not one of its transactions",
                        schedule=sname,
                        nodes=(t,),
                        fix_hint="input orders relate the schedule's own "
                        "transactions",
                    )
    if input_ok:
        weak_in = Relation(
            _pairs(body.get("strong_input", []))
            + _pairs(body.get("weak_input", []))
        )
        cycle = weak_in.find_cycle()
        if cycle is not None:
            collector.report(
                "CTX114",
                f"weak input order of schedule {sname!r} is cyclic: "
                + " -> ".join(str(n) for n in cycle),
                schedule=sname,
                nodes=tuple(str(n) for n in cycle),
                fix_hint="input orders must be strict partial orders",
            )

    # output orders over operations
    output_ok = True
    for key in ("weak_output", "strong_output"):
        _check_pair_shapes(collector, sname, key, body.get(key))
        for a, b in _pairs(body.get(key, [])):
            for op in (a, b):
                if op not in known_ops:
                    output_ok = False
                    collector.report(
                        "CTX113",
                        f"{key} of schedule {sname!r} mentions {op!r}, "
                        "which is not one of its operations",
                        schedule=sname,
                        nodes=(op,),
                        fix_hint="output orders relate the schedule's own "
                        "operations",
                    )

    # recorded execution sequence
    executed = body.get("executed")
    execution_pairs: List[Tuple[str, str]] = []
    if executed is not None:
        mode = body.get("executed_mode", "conflicts")
        if mode not in ("conflicts", "temporal"):
            collector.report(
                "CTX305",
                f"unknown execution mode {mode!r} on schedule {sname!r}",
                schedule=sname,
                fix_hint="use 'conflicts' or 'temporal'",
            )
            mode = "conflicts"
        sequence = [str(o) for o in executed]
        if set(sequence) != known_ops or len(sequence) != len(known_ops):
            missing = sorted(known_ops - set(sequence))
            extra = sorted(set(sequence) - known_ops)
            collector.report(
                "CTX302",
                f"execution sequence of {sname!r} does not match the "
                f"declared operations (missing={missing}, extra={extra})",
                schedule=sname,
                nodes=tuple(missing + extra),
                fix_hint="the sequence must list every declared operation "
                "exactly once",
            )
            output_ok = False
        else:
            usable = [tuple(sorted(p)) for p in usable_conflicts]
            execution_pairs = _execution_pairs(
                sequence, mode, [(a, b) for a, b in usable]
            )

    if output_ok:
        # Everything the builder folds into the weak output: explicit
        # pairs, intra-transaction orders, execution-derived pairs, and
        # the axiom-3 expansion of strong inputs.
        weak_out = Relation(
            _pairs(body.get("strong_output", []))
            + _pairs(body.get("weak_output", []))
            + intra_weak
            + execution_pairs
        )
        if input_ok:
            strong_in = Relation(
                _pairs(body.get("strong_input", []))
            ).transitive_closure()
            txn_ops: Dict[str, List[str]] = {}
            for op, owner in op_owner.items():
                txn_ops.setdefault(owner, []).append(op)
            for t1, t2 in strong_in.pairs():
                for a in txn_ops.get(str(t1), []):
                    for b in txn_ops.get(str(t2), []):
                        weak_out.add(a, b)
        cycle = weak_out.find_cycle()
        if cycle is not None:
            collector.report(
                "CTX115",
                f"weak output order of schedule {sname!r} is cyclic: "
                + " -> ".join(str(n) for n in cycle),
                schedule=sname,
                nodes=tuple(str(n) for n in cycle),
                fix_hint="output orders must be strict partial orders",
            )
    return ops, txn_names


def _lint_cross_schedule(
    collector: DiagnosticCollector,
    ops_of_schedule: Mapping[str, Sequence[str]],
    txns_of_schedule: Mapping[str, Sequence[str]],
) -> Dict[str, str]:
    """Def. 4.1 / Def. 5 / Def. 4.5 across schedules.  Returns the
    ``transaction -> schedule`` map for the invocation-graph check."""
    txn_schedule: Dict[str, str] = {}
    for sname, txns in txns_of_schedule.items():
        for tname in txns:
            if tname in txn_schedule:
                collector.report(
                    "CTX202",
                    f"transaction {tname!r} assigned to two schedules "
                    f"({txn_schedule[tname]!r} and {sname!r})",
                    schedule=sname,
                    nodes=(tname,),
                    fix_hint="a transaction belongs to exactly one "
                    "schedule (Def. 4.1)",
                )
            else:
                txn_schedule[tname] = sname
    op_owner: Dict[str, str] = {}
    for sname, ops in ops_of_schedule.items():
        for op in ops:
            if op in op_owner and op_owner[op] != sname:
                collector.report(
                    "CTX203",
                    f"node {op!r} is an operation of transactions in "
                    f"both {op_owner[op]!r} and {sname!r}",
                    schedule=sname,
                    nodes=(op,),
                    fix_hint="operation names must be globally unique "
                    "(Def. 5)",
                )
            else:
                op_owner[op] = sname
    all_ops = set(op_owner)
    if txn_schedule and all(t in all_ops for t in txn_schedule):
        collector.report(
            "CTX204",
            "every transaction is invoked by another one — the system "
            "has no root transaction",
            fix_hint="at least one transaction must be nobody's operation "
            "(Def. 4.5)",
        )
    return txn_schedule


def _lint_executions_section(
    collector: DiagnosticCollector,
    document: Mapping,
    ops_of_schedule: Mapping[str, Sequence[str]],
) -> None:
    """The optional top-level ``executions`` section (temporal layouts)."""
    executions = document.get("executions")
    if executions is None:
        return
    if not isinstance(executions, Mapping):
        collector.report(
            "CTX305", "'executions' is not a mapping of schedule -> sequence"
        )
        return
    for sname, sequence in executions.items():
        sname = str(sname)
        if sname not in ops_of_schedule:
            collector.report(
                "CTX305",
                f"'executions' names unknown schedule {sname!r}",
                schedule=sname,
            )
            continue
        declared = set(ops_of_schedule[sname])
        listed = [str(o) for o in sequence]
        if set(listed) != declared or len(listed) != len(declared):
            missing = sorted(declared - set(listed))
            extra = sorted(set(listed) - declared)
            collector.report(
                "CTX302",
                f"top-level execution of {sname!r} does not match its "
                f"declared operations (missing={missing}, extra={extra})",
                schedule=sname,
                nodes=tuple(missing + extra),
                fix_hint="the lane must list every operation exactly once",
            )


# ----------------------------------------------------------------------
# trace documents
# ----------------------------------------------------------------------
def lint_trace_document(
    collector: DiagnosticCollector, document: Mapping
) -> None:
    """Lint a reduction-trace document (``check --trace`` output)."""
    version = document.get("version")
    # Version 1 stays lintable: the loader still reads it (the v2 skip
    # field is inferred), so the linter accepts the same range.
    if version not in (1, TRACE_VERSION):
        collector.report(
            "CTX303",
            f"unsupported trace version {version!r} "
            f"(this library reads versions 1..{TRACE_VERSION})",
            fix_hint="regenerate the trace with the current library",
        )
        return
    succeeded = document.get("succeeded")
    if not isinstance(succeeded, bool):
        collector.report(
            "CTX305", "trace has no boolean 'succeeded' verdict"
        )
        return
    if succeeded and document.get("failure") is not None:
        collector.report(
            "CTX304",
            "trace claims success but records a failure certificate",
            fix_hint="a successful reduction has no failure section",
        )
    if not succeeded and document.get("failure") is None:
        collector.report(
            "CTX304",
            "trace claims rejection but records no failure certificate",
        )
    for entry in document.get("fronts", []):
        try:
            nodes = tuple(str(n) for n in entry["nodes"])
            front = Front(
                level=int(entry["level"]),
                nodes=nodes,
                observed=Relation(_pairs(entry["observed"]), elements=nodes),
                input_weak=Relation(
                    _pairs(entry["input_weak"]), elements=nodes
                ),
                input_strong=Relation(
                    _pairs(entry["input_strong"]), elements=nodes
                ),
            )
        except (KeyError, TypeError, ValueError) as err:
            collector.report(
                "CTX305", f"malformed trace front: {err!r}"
            )
            continue
        recorded = entry.get("conflict_consistent")
        actual = front.is_conflict_consistent()
        if recorded is not None and bool(recorded) != actual:
            collector.report(
                "CTX304",
                f"level-{front.level} front records "
                f"conflict_consistent={bool(recorded)} but its relations "
                f"say {actual}",
                nodes=(f"level-{front.level}",),
                fix_hint="the trace was edited or truncated; regenerate it",
            )
        if succeeded and not actual:
            collector.report(
                "CTX304",
                f"trace claims success but its level-{front.level} front "
                "is not conflict consistent",
                nodes=(f"level-{front.level}",),
            )


# ----------------------------------------------------------------------
# topology documents
# ----------------------------------------------------------------------
def lint_topology_document(
    collector: DiagnosticCollector, document: Mapping
) -> Optional[TopologySpec]:
    """Lint a topology-spec document (``levels``/``invokes``/roots).

    Returns the parsed :class:`TopologySpec` when structurally sound so
    the safety pass can analyze it, otherwise ``None``.
    """
    before = len(collector.errors)
    levels = document.get("levels")
    if not isinstance(levels, Mapping) or not levels:
        collector.report(
            "CTX305",
            "topology has no 'levels' mapping",
            fix_hint="map every schedule name to its level (Def. 9)",
        )
        return None
    parsed_levels: Dict[str, int] = {}
    for name, level in levels.items():
        try:
            parsed_levels[str(name)] = int(level)
        except (TypeError, ValueError):
            collector.report(
                "CTX305",
                f"level of schedule {name!r} is not an integer: {level!r}",
                schedule=str(name),
            )
    invokes_raw = document.get("invokes", {})
    if not isinstance(invokes_raw, Mapping):
        collector.report("CTX305", "'invokes' is not a mapping")
        invokes_raw = {}
    invokes: Dict[str, List[str]] = {}
    for caller, targets in invokes_raw.items():
        caller = str(caller)
        if caller not in parsed_levels:
            collector.report(
                "CTX221",
                f"'invokes' names unknown schedule {caller!r}",
                schedule=caller,
                fix_hint="declare the schedule in 'levels' first",
            )
            continue
        invokes[caller] = []
        for target in targets if isinstance(targets, (list, tuple)) else []:
            target = str(target)
            if target not in parsed_levels:
                collector.report(
                    "CTX221",
                    f"{caller!r} invokes unknown schedule {target!r}",
                    schedule=caller,
                    nodes=(target,),
                    fix_hint="declare the schedule in 'levels' first",
                )
                continue
            invokes[caller].append(target)
            if parsed_levels[target] >= parsed_levels[caller]:
                collector.report(
                    "CTX220",
                    f"{caller!r} (level {parsed_levels[caller]}) cannot "
                    f"invoke {target!r} (level {parsed_levels[target]})",
                    schedule=caller,
                    nodes=(target,),
                    fix_hint="invocations go strictly downward in level "
                    "(Def. 9)",
                )
    roots_raw = document.get("root_schedules", [])
    roots: List[str] = []
    for root in roots_raw if isinstance(roots_raw, (list, tuple)) else []:
        root = str(root)
        if root not in parsed_levels:
            collector.report(
                "CTX221",
                f"root schedule {root!r} is not declared in 'levels'",
                schedule=root,
            )
        else:
            roots.append(root)
    if not roots:
        collector.report(
            "CTX222",
            "topology declares no (known) root schedules",
            fix_hint="list at least one schedule in 'root_schedules'",
        )
    if len(collector.errors) > before:
        return None
    for name in parsed_levels:
        invokes.setdefault(name, [])
    return TopologySpec(
        name=str(document.get("name", "topology")),
        levels=parsed_levels,
        invokes=invokes,
        root_schedules=roots,
    )
