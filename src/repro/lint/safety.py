"""The static safety pass: a two-sided, verdict-tiered Comp-C analysis.

Theorem 1 decides Comp-C by running the full reduction.  This pass
answers a cheaper question *without* executing Def. 16.  Every relation
the reduction feeds into a conflict-consistency check descends from
exactly two sources:

* a **conflict pair** of some schedule (observed-order seeds are
  conflict-gated, and pull-up only rewrites endpoints to ancestors), or
* a schedule's **weak input order** (closures decompose into covering
  pairs).

Projecting each source onto the level-``l`` front — mapping every node
to its level-``l`` representative (the ancestor it has been grouped
into) — turns a directed cycle of the front into a closed walk through
*distinct* undirected edges of a small multigraph.  The analysis is
tiered:

**Tier 1 — forest test.**  If the level-``l`` multigraph is a forest
for every level, no front can ever fail conflict consistency — the
system is Comp-C for *any* recorded execution
(``SafetyVerdict.CERTIFIED_SAFE``, tier ``"forest"``).

**Tier 2 — orientation analysis** (:mod:`repro.lint.orientation`).
A multigraph cycle is not yet a violation: weak-input edges are
*direction-forced* (a front's input order only ever contains recorded
input pairs and their closure, never reversals), while conflict edges
are *free* (different executions may order the pair either way).  When
no orientation of the free edges can close a *directed* cycle — no
forced arc sits inside a strongly connected component of the mixed
graph and the free edges alone are a forest — the system is again
certified for every recorded execution (tier ``"orientation"``),
strictly more systems than tier 1 certifies.

**Refuter.**  When a level survives both tiers, the pass reads the
*recorded* orientations off the schedules (weak-output order for
conflict pairs, input order for input edges) and searches for a
directed cycle under them.  A hit is only a *candidate*: Def.-10
pull-up may forget the offending pairs before they ever meet on a
front, so the candidate is validated by replaying the recorded
execution through the real Def.-16 engine
(:func:`repro.core.certificates.replay_refutation`), stopping at the
candidate level.  Only a reduction-rejected replay yields
``CERTIFIED_UNSAFE`` (surfaced as a ``CTX310`` error with the witness
attached); a clean replay leaves the cycle a ``CTX301`` warning.  The
refuter is therefore sound by construction, and — because the witness
*is* the recorded execution — a refuted verdict agrees exactly with
what the full reduction would decide.

The tier-1/2 arguments rely on conflict-gated observed-order seeding,
so the prover declines (``UNKNOWN`` with a ``CTX306`` note) when
:class:`~repro.core.observed.ObservedOrderOptions` asks for
``seed_leaf_order`` — verbatim Def. 10.1 seeds record non-conflict
pairs the multigraph does not model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.certificates import replay_refutation
from repro.core.observed import ObservedOrderOptions
from repro.core.orders import Relation
from repro.core.system import CompositeSystem
from repro.lint.diagnostics import DiagnosticCollector
from repro.lint.orientation import (
    Arc,
    find_directed_cycle,
    mixed_graph_unsafe_reason,
)
from repro.obs.telemetry import current
from repro.workloads.topologies import TopologySpec


class SafetyVerdict(enum.Enum):
    """The static analysis outcome for one system.

    ``CERTIFIED_SAFE`` and ``CERTIFIED_UNSAFE`` are both *proofs* —
    safe by the projection/orientation argument, unsafe by an actual
    replayed rejection — so the precheck may skip the reduction in
    either direction.  ``UNKNOWN`` means the analysis proved nothing
    and the reduction must run.
    """

    CERTIFIED_SAFE = "certified_safe"
    CERTIFIED_UNSAFE = "certified_unsafe"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SafetyEdge:
    """One edge of the level-``l`` potential-conflict multigraph.

    ``endpoints`` are the level-``l`` representatives (sorted, the
    undirected view); ``pair`` is the original item pair (a conflict
    pair or a weak-input covering pair) of ``schedule`` the edge
    projects.  ``oriented`` is the *recorded* direction projected onto
    the representatives: for input edges always the recorded input
    direction; for conflict edges the weak-output order of the owning
    schedule, or ``None`` when the recorded execution leaves the pair
    unordered.
    """

    endpoints: Tuple[str, str]
    source: str  # "conflict" | "input"
    schedule: str
    pair: Tuple[str, str]
    level: int = -1
    oriented: Optional[Tuple[str, str]] = None

    def describe(self) -> str:
        a, b = self.pair
        what = "conflict" if self.source == "conflict" else "input order"
        return f"L{self.level} {self.schedule}:{what}({a}, {b})"

    def to_dict(self) -> Dict[str, object]:
        return {
            "endpoints": list(self.endpoints),
            "source": self.source,
            "schedule": self.schedule,
            "pair": list(self.pair),
            "level": self.level,
            "oriented": list(self.oriented) if self.oriented else None,
        }


@dataclass(frozen=True)
class LevelWitness:
    """The per-level certificate: either *forest* (no cycle can form at
    this level, with the component/edge counts as the witness) or one
    concrete multigraph cycle.

    ``orientable`` records the tier-2 outcome for non-forest levels:
    ``False`` means no orientation of the free edges can close a
    directed cycle (the level is certified anyway), ``True`` means some
    orientation could, ``None`` means tier 2 did not run (the level is
    a forest, or the prover declined).
    """

    level: int
    node_count: int
    edge_count: int
    forest: bool
    cycle_nodes: Tuple[str, ...] = ()
    cycle_edges: Tuple[SafetyEdge, ...] = ()
    orientable: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "forest": self.forest,
            "cycle_nodes": list(self.cycle_nodes),
            "cycle_edges": [e.to_dict() for e in self.cycle_edges],
            "orientable": self.orientable,
        }


@dataclass(frozen=True)
class RefutationWitness:
    """A replay-validated proof that the recorded execution is not
    Comp-C.

    ``cycle_edges`` is the statically found directed cycle under the
    recorded orientations (the candidate that triggered the replay);
    ``executions`` pins the recorded execution itself — one linear
    extension of the weak-output order per schedule owning a cycle
    edge; ``failure`` is the replayed engine's rejection as a plain
    dict (``level``/``stage``/``cycle``/``blocked``/``description``) —
    plain data so witnesses survive pickling across lint workers.
    """

    level: int
    cycle_nodes: Tuple[str, ...]
    cycle_edges: Tuple[SafetyEdge, ...]
    executions: Dict[str, Tuple[str, ...]]
    failure: Dict[str, object]

    def describe(self) -> str:
        ring = " -> ".join(self.cycle_nodes + self.cycle_nodes[:1])
        return (
            f"level-{self.level} directed cycle {ring} realized by the "
            f"recorded execution; replay: {self.failure['description']}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "cycle_nodes": list(self.cycle_nodes),
            "cycle_edges": [e.to_dict() for e in self.cycle_edges],
            "executions": {
                name: list(seq) for name, seq in sorted(self.executions.items())
            },
            "failure": dict(self.failure),
        }


@dataclass(frozen=True)
class StaticSafetyReport:
    """The analysis verdict over all levels ``0..N``.

    ``verdict`` is the two-sided outcome; ``tier`` names the certifying
    argument (``"forest"`` or ``"orientation"``) when safe;
    ``refutation`` carries the replay-validated witness when unsafe;
    ``declined`` marks the options-incompatible case (``CTX306``).
    """

    verdict: SafetyVerdict
    reason: Optional[str]
    witnesses: Tuple[LevelWitness, ...] = ()
    tier: Optional[str] = None
    refutation: Optional[RefutationWitness] = None
    declined: bool = False

    @property
    def certified(self) -> bool:
        return self.verdict is SafetyVerdict.CERTIFIED_SAFE

    @property
    def refuted(self) -> bool:
        return self.verdict is SafetyVerdict.CERTIFIED_UNSAFE

    @property
    def cycle_witnesses(self) -> Tuple[LevelWitness, ...]:
        return tuple(w for w in self.witnesses if not w.forest)

    def summary(self) -> str:
        if self.certified:
            checked = ", ".join(
                f"L{w.level}:{w.edge_count}e/{w.node_count}n"
                for w in self.witnesses
            )
            if self.tier == "orientation":
                return (
                    "statically Comp-C: no orientation of the free "
                    "conflict edges can close a directed cycle at any "
                    f"level ({checked})"
                )
            return (
                "statically Comp-C: every per-level potential-conflict "
                f"multigraph is a forest ({checked})"
            )
        if self.refuted and self.refutation is not None:
            return f"statically refuted: {self.refutation.describe()}"
        return f"not statically certified: {self.reason}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "certified": self.certified,
            "verdict": str(self.verdict),
            "reason": self.reason,
            "tier": self.tier,
            "declined": self.declined,
            "witnesses": [w.to_dict() for w in self.witnesses],
            "refutation": (
                self.refutation.to_dict() if self.refutation else None
            ),
        }


def _representative(system: CompositeSystem, node: str, level: int) -> str:
    """The level-``level`` representative of ``node``: walk the parent
    chain while the grouping step has already happened (Def. 16.2)."""
    while True:
        grouping = system.grouping_level(node)
        if grouping is None or grouping > level:
            return node
        node = system.parent(node)


def _covering_pairs(relation: Relation) -> List[Tuple[str, str]]:
    """The covering (Hasse) pairs of a transitively closed relation.

    Using covering pairs instead of the closure keeps the multigraph
    honest: the closure of a chain ``a < b < c`` would add the chord
    ``(a, c)`` and turn every 3-chain into a spurious triangle.
    """
    out: List[Tuple[str, str]] = []
    for a, b in sorted(relation.pairs()):
        if any(c != b and (c, b) in relation for c in relation.successors(a)):
            continue
        out.append((a, b))
    return out


def _level_edges(
    system: CompositeSystem, level: int
) -> List[SafetyEdge]:
    """The potential-conflict multigraph edges at reduction level
    ``level``, in a deterministic order."""
    edges: List[SafetyEdge] = []
    reps: Dict[str, str] = {}

    def rep(node: str) -> str:
        cached = reps.get(node)
        if cached is None:
            cached = _representative(system, node, level)
            reps[node] = cached
        return cached

    for sname in sorted(system.schedules):
        schedule = system.schedules[sname]
        for pair in sorted(schedule.conflicts, key=sorted):
            a, b = sorted(pair)
            if (
                system.materialization_level(a) > level
                or system.materialization_level(b) > level
            ):
                continue  # the operations are not front nodes yet
            u, v = rep(a), rep(b)
            if u == v:
                continue  # internal to one subtree: ordered below `level`
            # the recorded execution's direction for the pair, if any
            if (a, b) in schedule.weak_output:
                oriented: Optional[Tuple[str, str]] = (u, v)
            elif (b, a) in schedule.weak_output:
                oriented = (v, u)
            else:
                oriented = None
            edges.append(
                SafetyEdge(
                    endpoints=(u, v) if u <= v else (v, u),
                    source="conflict",
                    schedule=sname,
                    pair=(a, b),
                    level=level,
                    oriented=oriented,
                )
            )
        if system.level_of(sname) <= level:
            for a, b in _covering_pairs(schedule.weak_input):
                u, v = rep(a), rep(b)
                if u == v:
                    continue
                edges.append(
                    SafetyEdge(
                        endpoints=(u, v) if u <= v else (v, u),
                        source="input",
                        schedule=sname,
                        pair=(a, b),
                        level=level,
                        oriented=(u, v),
                    )
                )
    return edges


def _front_size(system: CompositeSystem, level: int) -> int:
    """How many nodes the level-``level`` front has."""
    count = 0
    for node in system.all_nodes():
        grouping = system.grouping_level(node)
        if system.materialization_level(node) <= level and (
            grouping is None or grouping > level
        ):
            count += 1
    return count


def _check_level(system: CompositeSystem, level: int) -> LevelWitness:
    """Union-find forest test over the level multigraph; parallel edges
    count as cycles (two sources connecting the same components can
    orient against each other)."""
    edges = _level_edges(system, level)
    parent: Dict[str, str] = {}
    adjacency: Dict[str, List[Tuple[str, SafetyEdge]]] = {}

    def find(x: str) -> str:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for edge in edges:
        u, v = edge.endpoints
        ru, rv = find(u), find(v)
        if ru == rv:
            path = _forest_path(adjacency, u, v)
            cycle_nodes = tuple(n for n, _ in path) + (v, u)
            cycle_edges = tuple(e for _, e in path if e is not None) + (
                edge,
            )
            return LevelWitness(
                level=level,
                node_count=_front_size(system, level),
                edge_count=len(edges),
                forest=False,
                cycle_nodes=cycle_nodes,
                cycle_edges=cycle_edges,
            )
        parent[ru] = rv
        adjacency.setdefault(u, []).append((v, edge))
        adjacency.setdefault(v, []).append((u, edge))
    return LevelWitness(
        level=level,
        node_count=_front_size(system, level),
        edge_count=len(edges),
        forest=True,
    )


def _forest_path(
    adjacency: Mapping[str, Sequence[Tuple[str, "SafetyEdge"]]],
    start: str,
    goal: str,
) -> List[Tuple[str, Optional[SafetyEdge]]]:
    """The unique ``start -> goal`` path in the current forest, as
    ``(node, edge-to-next)`` steps (the last step's edge is ``None``
    placeholder-free: ``goal`` itself is not included)."""
    if start == goal:
        return []
    frontier = [start]
    came_from: Dict[str, Tuple[str, SafetyEdge]] = {start: (start, None)}  # type: ignore[dict-item]
    while frontier:
        node = frontier.pop()
        for neighbour, edge in adjacency.get(node, ()):
            if neighbour in came_from:
                continue
            came_from[neighbour] = (node, edge)
            if neighbour == goal:
                frontier = []
                break
            frontier.append(neighbour)
    if goal not in came_from:
        return [(start, None)]  # pragma: no cover - forest invariant
    steps: List[Tuple[str, Optional[SafetyEdge]]] = []
    cursor = goal
    while cursor != start:
        previous, edge = came_from[cursor]
        steps.append((previous, edge))
        cursor = previous
    steps.reverse()
    return steps


def _orient_level(witness: LevelWitness, edges: List[SafetyEdge]) -> bool:
    """Tier 2 for one non-forest level: ``True`` when some orientation
    of the free edges closes a directed cycle."""
    forced: List[Arc] = []
    free: List[Arc] = []
    for edge in edges:
        if edge.source == "input":
            # input edges are direction-forced; oriented is always set
            assert edge.oriented is not None
            forced.append(edge.oriented)
        else:
            free.append(edge.endpoints)
    return mixed_graph_unsafe_reason(forced, free) is not None


@dataclass(frozen=True)
class _Candidate:
    """A refutation candidate: a directed cycle under the recorded
    orientations at one level."""

    level: int
    cycle_nodes: Tuple[str, ...]
    cycle_edges: Tuple[SafetyEdge, ...]


def _recorded_cycle(
    level: int, edges: List[SafetyEdge]
) -> Optional[_Candidate]:
    """A directed cycle of the level multigraph under the *recorded*
    orientations, or ``None`` (conflict pairs the recorded execution
    leaves unordered impose no arc)."""
    arced = [e for e in edges if e.oriented is not None]
    cycle = find_directed_cycle([e.oriented for e in arced])  # type: ignore[misc]
    if cycle is None:
        return None
    chosen = tuple(arced[i] for i in cycle)
    nodes = tuple(e.oriented[0] for e in chosen if e.oriented is not None)
    return _Candidate(level=level, cycle_nodes=nodes, cycle_edges=chosen)


def _build_refutation(
    system: CompositeSystem,
    candidate: _Candidate,
    failure_level: int,
    failure: Dict[str, object],
) -> RefutationWitness:
    """Assemble the witness: the static cycle plus the recorded
    executions (linear extensions of weak output) of the schedules
    owning its edges."""
    executions: Dict[str, Tuple[str, ...]] = {}
    for edge in candidate.cycle_edges:
        if edge.schedule not in executions:
            schedule = system.schedule(edge.schedule)
            executions[edge.schedule] = tuple(
                schedule.weak_output.topological_sort()
            )
    return RefutationWitness(
        level=failure_level,
        cycle_nodes=candidate.cycle_nodes,
        cycle_edges=candidate.cycle_edges,
        executions=executions,
        failure=failure,
    )


def prove_static_safety(
    system: CompositeSystem,
    options: Optional[ObservedOrderOptions] = None,
    *,
    refute: bool = True,
) -> StaticSafetyReport:
    """Run the tiered analysis (see module doc).

    A ``CERTIFIED_SAFE`` verdict quantifies over *all* recorded
    executions of the system's schedules, so a certificate also covers
    re-runs with different execution sequences.  A ``CERTIFIED_UNSAFE``
    verdict is about *this* recorded execution — the refuter replayed
    it and the engine rejected.  ``refute=False`` stops after the
    certifier tiers (used where a replay would be redundant, e.g. when
    the caller is about to run the reduction anyway).
    """
    if options is not None and options.seed_leaf_order:
        return StaticSafetyReport(
            verdict=SafetyVerdict.UNKNOWN,
            reason=(
                "seed_leaf_order records non-conflict observed pairs; "
                "the static argument only covers conflict-gated seeds"
            ),
            declined=True,
        )
    tele = current()
    with tele.span("lint.prove", levels=system.order + 1) as span:
        witnesses: List[LevelWitness] = []
        level_edges: Dict[int, List[SafetyEdge]] = {}
        for level in range(system.order + 1):
            tele.count("lint.level_checked")
            edges = _level_edges(system, level)
            level_edges[level] = edges
            witnesses.append(_check_level(system, level))
        if all(w.forest for w in witnesses):
            span.note(certified=True, tier="forest")
            return StaticSafetyReport(
                verdict=SafetyVerdict.CERTIFIED_SAFE,
                reason=None,
                witnesses=tuple(witnesses),
                tier="forest",
            )
        # tier 2: orientation analysis on every non-forest level
        for i, witness in enumerate(witnesses):
            if witness.forest:
                continue
            tele.count("lint.orientation_checked")
            witnesses[i] = replace(
                witness,
                orientable=_orient_level(witness, level_edges[witness.level]),
            )
        cycles = [w for w in witnesses if not w.forest]
        certified = all(w.orientable is False for w in cycles)
        span.note(certified=certified, tier="orientation")
    if certified:
        return StaticSafetyReport(
            verdict=SafetyVerdict.CERTIFIED_SAFE,
            reason=None,
            witnesses=tuple(witnesses),
            tier="orientation",
        )
    first = next(w for w in cycles if w.orientable)
    reason = (
        f"level-{first.level} potential conflict cycle through "
        + " -> ".join(first.cycle_nodes)
    )
    if not refute:
        return StaticSafetyReport(
            verdict=SafetyVerdict.UNKNOWN,
            reason=reason,
            witnesses=tuple(witnesses),
        )
    # refuter: directed cycle under the recorded orientations, validated
    # by replaying the recorded execution through the real engine
    with tele.span("lint.refute") as span:
        candidates: List[_Candidate] = []
        for witness in cycles:
            if not witness.orientable:
                continue
            candidate = _recorded_cycle(
                witness.level, level_edges[witness.level]
            )
            if candidate is not None:
                tele.count("lint.refute_candidate")
                candidates.append(candidate)
        refutation: Optional[RefutationWitness] = None
        if candidates:
            deepest = max(c.level for c in candidates)
            replay = replay_refutation(system, deepest, options)
            if replay.failure is not None:
                failed = replay.failure
                failure = {
                    "level": failed.level,
                    "stage": failed.stage,
                    "cycle": list(failed.cycle),
                    "blocked": list(failed.blocked),
                    "description": failed.describe(),
                }
                matching = next(
                    (c for c in candidates if c.level == failed.level),
                    candidates[0],
                )
                refutation = _build_refutation(
                    system, matching, failed.level, failure
                )
        span.note(
            candidates=len(candidates), refuted=refutation is not None
        )
    if refutation is not None:
        return StaticSafetyReport(
            verdict=SafetyVerdict.CERTIFIED_UNSAFE,
            reason=refutation.describe(),
            witnesses=tuple(witnesses),
            refutation=refutation,
        )
    return StaticSafetyReport(
        verdict=SafetyVerdict.UNKNOWN,
        reason=reason,
        witnesses=tuple(witnesses),
    )


def analyze_system_safety(
    collector: DiagnosticCollector,
    system: CompositeSystem,
    options: Optional[ObservedOrderOptions] = None,
) -> StaticSafetyReport:
    """Run the analysis and surface its findings:

    * declined certification -> one ``CTX306`` note;
    * a replay-validated refutation -> one ``CTX310`` error carrying
      the witness cycle;
    * every remaining unresolved non-forest level -> a ``CTX301``
      warning naming the component cycle and the item pairs behind it
      (tier-2-certified levels are silent: they cannot misbehave).
    """
    report = prove_static_safety(system, options)
    if report.declined:
        collector.report(
            "CTX306",
            f"static certification declined: {report.reason}",
            fix_hint="drop seed_leaf_order (Def.-10.1 verbatim seeding) "
            "to make the system eligible for static certification",
        )
        return report
    refuted_level = (
        report.refutation.level if report.refutation is not None else None
    )
    if report.refutation is not None:
        witness = report.refutation
        pairs = "; ".join(e.describe() for e in witness.cycle_edges)
        collector.report(
            "CTX310",
            f"{witness.describe()} (via {pairs})",
            nodes=witness.cycle_nodes,
            fix_hint="the recorded execution is provably not Comp-C; "
            "re-order the conflicting operations or relax the conflict "
            "declarations",
        )
    for witness in report.cycle_witnesses:
        if witness.orientable is False:
            continue  # tier-2 certified: no orientation can misbehave
        if refuted_level is not None and witness.level == refuted_level:
            continue  # already reported as CTX310
        pairs = "; ".join(e.describe() for e in witness.cycle_edges)
        collector.report(
            "CTX301",
            f"level-{witness.level} front could form a conflict cycle "
            f"through {' -> '.join(witness.cycle_nodes)} (via {pairs})",
            nodes=witness.cycle_nodes,
            fix_hint="break the cycle (drop a conflict or an input-order "
            "pair) or rely on the full reduction to check the recorded "
            "execution",
        )
    return report


def analyze_topology_safety(
    collector: DiagnosticCollector, spec: TopologySpec
) -> bool:
    """The topology-level analogue: an undirected cycle in the
    invocation multigraph means two components can reach each other
    along two different routes — conflicts along those routes *could*
    close a cycle once programs are known.  A forest topology merely
    lacks that route structure; it is **not** a certificate (the
    programs and their conflicts are unknown), so no per-level witness
    is produced and ``True`` only means "no warning".
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for caller in sorted(spec.invokes):
        for callee in spec.invokes[caller]:
            ru, rv = find(caller), find(callee)
            if ru == rv:
                collector.report(
                    "CTX301",
                    f"components {caller!r} and {callee!r} are connected "
                    "along two invocation routes — cross-schedule "
                    "conflicts could form a cycle",
                    schedule=caller,
                    nodes=(caller, callee),
                    fix_hint="a tree-shaped topology is statically safe "
                    "for any programs; otherwise run the full checker on "
                    "the recorded execution",
                )
                return False
            parent[ru] = rv
    return True
