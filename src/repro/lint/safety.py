"""The static safety pass: a conservative Comp-C prover.

Theorem 1 decides Comp-C by running the full reduction.  This pass
answers a cheaper question *without* executing Def. 16: **could** the
union of observed and input orders ever contain a cycle?  Every
relation the reduction feeds into a conflict-consistency check
descends from exactly two sources:

* a **conflict pair** of some schedule (observed-order seeds are
  conflict-gated, and pull-up only rewrites endpoints to ancestors), or
* a schedule's **weak input order** (closures decompose into covering
  pairs).

Projecting each source onto the level-``l`` front — mapping every node
to its level-``l`` representative (the ancestor it has been grouped
into) — turns a directed cycle of the front into a closed walk through
*distinct* undirected edges of a small multigraph.  Distinct, because a
single source edge projects to a single orientation at a given level;
so the walk contains an undirected cycle.  Contrapositive: **if the
level-``l`` multigraph is a forest for every level, no front can ever
fail conflict consistency** — the system is Comp-C for *any* recorded
execution, and the reduction can be skipped.

The prover is conservative in exactly one direction: a forest certifies
safety (soundness — the projection argument above), but a multigraph
cycle only means a conflict cycle is *possible*; the reduction may
still accept the actual execution.  Cycles are therefore reported as
``CTX301`` warnings, never errors.

The argument relies on conflict-gated observed-order seeding, so the
prover declines (``certified=False`` with a reason, no warnings) when
:class:`~repro.core.observed.ObservedOrderOptions` asks for
``seed_leaf_order`` — verbatim Def. 10.1 seeds record non-conflict
pairs the multigraph does not model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.observed import ObservedOrderOptions
from repro.core.orders import Relation
from repro.core.system import CompositeSystem
from repro.lint.diagnostics import DiagnosticCollector
from repro.obs.telemetry import current
from repro.workloads.topologies import TopologySpec


@dataclass(frozen=True)
class SafetyEdge:
    """One edge of the level-``l`` potential-conflict multigraph.

    ``endpoints`` are the level-``l`` representatives; ``pair`` is the
    original item pair (a conflict pair or a weak-input covering pair)
    of ``schedule`` the edge projects.
    """

    endpoints: Tuple[str, str]
    source: str  # "conflict" | "input"
    schedule: str
    pair: Tuple[str, str]

    def describe(self) -> str:
        a, b = self.pair
        what = "conflict" if self.source == "conflict" else "input order"
        return f"{self.schedule}:{what}({a}, {b})"

    def to_dict(self) -> Dict[str, object]:
        return {
            "endpoints": list(self.endpoints),
            "source": self.source,
            "schedule": self.schedule,
            "pair": list(self.pair),
        }


@dataclass(frozen=True)
class LevelWitness:
    """The per-level certificate: either *forest* (no cycle can form at
    this level, with the component/edge counts as the witness) or one
    concrete multigraph cycle."""

    level: int
    node_count: int
    edge_count: int
    forest: bool
    cycle_nodes: Tuple[str, ...] = ()
    cycle_edges: Tuple[SafetyEdge, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "forest": self.forest,
            "cycle_nodes": list(self.cycle_nodes),
            "cycle_edges": [e.to_dict() for e in self.cycle_edges],
        }


@dataclass(frozen=True)
class StaticSafetyReport:
    """The prover's verdict over all levels ``0..N``.

    ``certified`` means every level's multigraph is a forest: the
    system is statically Comp-C and the reduction may be skipped.
    When not certified, ``reason`` says why (declined options or a
    witness cycle) and the non-forest witnesses carry the cycles.
    """

    certified: bool
    reason: Optional[str]
    witnesses: Tuple[LevelWitness, ...] = ()

    @property
    def cycle_witnesses(self) -> Tuple[LevelWitness, ...]:
        return tuple(w for w in self.witnesses if not w.forest)

    def summary(self) -> str:
        if self.certified:
            checked = ", ".join(
                f"L{w.level}:{w.edge_count}e/{w.node_count}n"
                for w in self.witnesses
            )
            return (
                "statically Comp-C: every per-level potential-conflict "
                f"multigraph is a forest ({checked})"
            )
        return f"not statically certified: {self.reason}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "certified": self.certified,
            "reason": self.reason,
            "witnesses": [w.to_dict() for w in self.witnesses],
        }


def _representative(system: CompositeSystem, node: str, level: int) -> str:
    """The level-``level`` representative of ``node``: walk the parent
    chain while the grouping step has already happened (Def. 16.2)."""
    while True:
        grouping = system.grouping_level(node)
        if grouping is None or grouping > level:
            return node
        node = system.parent(node)


def _covering_pairs(relation: Relation) -> List[Tuple[str, str]]:
    """The covering (Hasse) pairs of a transitively closed relation.

    Using covering pairs instead of the closure keeps the multigraph
    honest: the closure of a chain ``a < b < c`` would add the chord
    ``(a, c)`` and turn every 3-chain into a spurious triangle.
    """
    out: List[Tuple[str, str]] = []
    for a, b in sorted(relation.pairs()):
        if any(c != b and (c, b) in relation for c in relation.successors(a)):
            continue
        out.append((a, b))
    return out


def _level_edges(
    system: CompositeSystem, level: int
) -> List[SafetyEdge]:
    """The potential-conflict multigraph edges at reduction level
    ``level``, in a deterministic order."""
    edges: List[SafetyEdge] = []
    reps: Dict[str, str] = {}

    def rep(node: str) -> str:
        cached = reps.get(node)
        if cached is None:
            cached = _representative(system, node, level)
            reps[node] = cached
        return cached

    for sname in sorted(system.schedules):
        schedule = system.schedules[sname]
        for pair in sorted(schedule.conflicts, key=sorted):
            a, b = sorted(pair)
            if (
                system.materialization_level(a) > level
                or system.materialization_level(b) > level
            ):
                continue  # the operations are not front nodes yet
            u, v = rep(a), rep(b)
            if u == v:
                continue  # internal to one subtree: ordered below `level`
            edges.append(
                SafetyEdge(
                    endpoints=(u, v) if u <= v else (v, u),
                    source="conflict",
                    schedule=sname,
                    pair=(a, b),
                )
            )
        if system.level_of(sname) <= level:
            for a, b in _covering_pairs(schedule.weak_input):
                u, v = rep(a), rep(b)
                if u == v:
                    continue
                edges.append(
                    SafetyEdge(
                        endpoints=(u, v) if u <= v else (v, u),
                        source="input",
                        schedule=sname,
                        pair=(a, b),
                    )
                )
    return edges


def _front_size(system: CompositeSystem, level: int) -> int:
    """How many nodes the level-``level`` front has."""
    count = 0
    for node in system.all_nodes():
        grouping = system.grouping_level(node)
        if system.materialization_level(node) <= level and (
            grouping is None or grouping > level
        ):
            count += 1
    return count


def _check_level(system: CompositeSystem, level: int) -> LevelWitness:
    """Union-find forest test over the level multigraph; parallel edges
    count as cycles (two sources connecting the same components can
    orient against each other)."""
    edges = _level_edges(system, level)
    parent: Dict[str, str] = {}
    adjacency: Dict[str, List[Tuple[str, SafetyEdge]]] = {}

    def find(x: str) -> str:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for edge in edges:
        u, v = edge.endpoints
        ru, rv = find(u), find(v)
        if ru == rv:
            path = _forest_path(adjacency, u, v)
            cycle_nodes = tuple(n for n, _ in path) + (v, u)
            cycle_edges = tuple(e for _, e in path if e is not None) + (
                edge,
            )
            return LevelWitness(
                level=level,
                node_count=_front_size(system, level),
                edge_count=len(edges),
                forest=False,
                cycle_nodes=cycle_nodes,
                cycle_edges=cycle_edges,
            )
        parent[ru] = rv
        adjacency.setdefault(u, []).append((v, edge))
        adjacency.setdefault(v, []).append((u, edge))
    return LevelWitness(
        level=level,
        node_count=_front_size(system, level),
        edge_count=len(edges),
        forest=True,
    )


def _forest_path(
    adjacency: Mapping[str, Sequence[Tuple[str, "SafetyEdge"]]],
    start: str,
    goal: str,
) -> List[Tuple[str, Optional[SafetyEdge]]]:
    """The unique ``start -> goal`` path in the current forest, as
    ``(node, edge-to-next)`` steps (the last step's edge is ``None``
    placeholder-free: ``goal`` itself is not included)."""
    if start == goal:
        return []
    frontier = [start]
    came_from: Dict[str, Tuple[str, SafetyEdge]] = {start: (start, None)}  # type: ignore[dict-item]
    while frontier:
        node = frontier.pop()
        for neighbour, edge in adjacency.get(node, ()):
            if neighbour in came_from:
                continue
            came_from[neighbour] = (node, edge)
            if neighbour == goal:
                frontier = []
                break
            frontier.append(neighbour)
    if goal not in came_from:
        return [(start, None)]  # pragma: no cover - forest invariant
    steps: List[Tuple[str, Optional[SafetyEdge]]] = []
    cursor = goal
    while cursor != start:
        previous, edge = came_from[cursor]
        steps.append((previous, edge))
        cursor = previous
    steps.reverse()
    return steps


def prove_static_safety(
    system: CompositeSystem,
    options: Optional[ObservedOrderOptions] = None,
) -> StaticSafetyReport:
    """Try to certify the system statically Comp-C (see module doc).

    The verdict quantifies over *all* recorded executions of the
    system's schedules, so a certificate also covers re-runs with
    different execution sequences.
    """
    if options is not None and options.seed_leaf_order:
        return StaticSafetyReport(
            certified=False,
            reason=(
                "seed_leaf_order records non-conflict observed pairs; "
                "the static argument only covers conflict-gated seeds"
            ),
        )
    tele = current()
    with tele.span("lint.prove", levels=system.order + 1) as span:
        witnesses: List[LevelWitness] = []
        for level in range(system.order + 1):
            tele.count("lint.level_checked")
            witnesses.append(_check_level(system, level))
        cycles = [w for w in witnesses if not w.forest]
        span.note(certified=not cycles)
    if not cycles:
        return StaticSafetyReport(
            certified=True, reason=None, witnesses=tuple(witnesses)
        )
    first = cycles[0]
    return StaticSafetyReport(
        certified=False,
        reason=(
            f"level-{first.level} potential conflict cycle through "
            + " -> ".join(first.cycle_nodes)
        ),
        witnesses=tuple(witnesses),
    )


def analyze_system_safety(
    collector: DiagnosticCollector,
    system: CompositeSystem,
    options: Optional[ObservedOrderOptions] = None,
) -> StaticSafetyReport:
    """Run the prover and surface each non-forest level as a ``CTX301``
    warning naming the component cycle and the item pairs behind it."""
    report = prove_static_safety(system, options)
    for witness in report.cycle_witnesses:
        pairs = "; ".join(e.describe() for e in witness.cycle_edges)
        collector.report(
            "CTX301",
            f"level-{witness.level} front could form a conflict cycle "
            f"through {' -> '.join(witness.cycle_nodes)} (via {pairs})",
            nodes=witness.cycle_nodes,
            fix_hint="break the cycle (drop a conflict or an input-order "
            "pair) or rely on the full reduction to check the recorded "
            "execution",
        )
    return report


def analyze_topology_safety(
    collector: DiagnosticCollector, spec: TopologySpec
) -> bool:
    """The topology-level analogue: an undirected cycle in the
    invocation multigraph means two components can reach each other
    along two different routes — conflicts along those routes *could*
    close a cycle once programs are known.  A forest topology merely
    lacks that route structure; it is **not** a certificate (the
    programs and their conflicts are unknown), so no per-level witness
    is produced and ``True`` only means "no warning".
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for caller in sorted(spec.invokes):
        for callee in spec.invokes[caller]:
            ru, rv = find(caller), find(callee)
            if ru == rv:
                collector.report(
                    "CTX301",
                    f"components {caller!r} and {callee!r} are connected "
                    "along two invocation routes — cross-schedule "
                    "conflicts could form a cycle",
                    schedule=caller,
                    nodes=(caller, callee),
                    fix_hint="a tree-shaped topology is statically safe "
                    "for any programs; otherwise run the full checker on "
                    "the recorded execution",
                )
                return False
            parent[ru] = rv
    return True
