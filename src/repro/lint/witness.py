"""Replayable refutation certificates (``lint --witness-out``).

A witness file is a schema-versioned, canonically serialized JSON
document holding every ``CERTIFIED_UNSAFE`` verdict of a lint run,
each bundled with the *system spec it refutes* — so the certificate is
self-contained: any build of the checker can re-load the file, replay
each embedded system through the real Def.-16 engine, and confirm the
rejection without access to the original inputs.  The CI smoke gate
does exactly that.

Byte discipline: the document is rendered with
:func:`repro.obs.sink.canonical_json_dumps` and written with
:func:`repro.obs.sink.atomic_write_text`, so witness files inherit the
telemetry sinks' byte-identity and crash-safety contracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.builder import SystemBuilder
from repro.core.certificates import replay_refutation
from repro.exceptions import ParseError
from repro.io.jsondoc import parse_json_document
from repro.io.text_format import load, system_to_spec
from repro.lint.report import LintResult
from repro.obs.sink import atomic_write_text, canonical_json_dumps

#: bump when the witness document shape changes
WITNESS_VERSION = 1


def build_witness_document(result: LintResult) -> Dict[str, object]:
    """The witness document for one lint run: every refuted document's
    witness plus the (round-tripped, normalized) system spec it refutes.

    Documents without a refutation contribute only to the ``verdicts``
    summary — the file stays small when everything is safe.
    """
    refutations: List[Dict[str, object]] = []
    for report in result.reports:
        if report.safety is None or report.safety.refutation is None:
            continue
        spec: Optional[Dict[str, object]] = None
        if report.path is not None:
            # Re-derive the spec through the model (not the raw file
            # bytes) so the embedded system is normalized and provably
            # loadable by any build that can replay it.
            spec = system_to_spec(load(report.path).system)
        refutations.append(
            {
                "path": report.path,
                "verdict": str(report.safety.verdict),
                "refutation": report.safety.refutation.to_dict(),
                "system": spec,
            }
        )
    return {
        "witness_version": WITNESS_VERSION,
        "verdicts": result.verdict_counts(),
        "refutations": refutations,
    }


def write_witness_file(path: str, result: LintResult) -> Dict[str, object]:
    """Build and atomically write the witness document; returns it."""
    document = build_witness_document(result)
    atomic_write_text(path, canonical_json_dumps(document))
    return document


@dataclass(frozen=True)
class ReplayOutcome:
    """One embedded refutation replayed through the engine."""

    path: Optional[str]
    level: int
    rejected: bool
    description: str

    def describe(self) -> str:
        status = "REJECTED" if self.rejected else "ACCEPTED (stale witness!)"
        return f"{self.path or '<input>'}: {status} -- {self.description}"


def replay_witness_document(
    document: Mapping[str, object]
) -> List[ReplayOutcome]:
    """Replay every embedded refutation; a sound witness file yields
    ``rejected=True`` for each entry (the CI smoke gate asserts it)."""
    version = document.get("witness_version")
    if version != WITNESS_VERSION:
        raise ParseError(
            f"unsupported witness document version {version!r} "
            f"(this build reads version {WITNESS_VERSION})"
        )
    refutations = document.get("refutations")
    if not isinstance(refutations, list):
        raise ParseError("witness document has no 'refutations' list")
    outcomes: List[ReplayOutcome] = []
    for entry in refutations:
        if not isinstance(entry, Mapping):
            raise ParseError("refutation entry is not an object")
        spec = entry.get("system")
        if not isinstance(spec, Mapping):
            raise ParseError(
                "refutation entry carries no embedded system spec"
            )
        refutation = entry.get("refutation")
        if not isinstance(refutation, Mapping):
            raise ParseError("refutation entry carries no witness")
        level = int(refutation["level"])  # type: ignore[call-overload]
        system = SystemBuilder.from_spec(dict(spec)).build()
        replay = replay_refutation(system, level)
        outcomes.append(
            ReplayOutcome(
                path=(
                    str(entry["path"])
                    if entry.get("path") is not None
                    else None
                ),
                level=level,
                rejected=replay.failure is not None,
                description=(
                    replay.failure.describe()
                    if replay.failure is not None
                    else "replay accepted the recorded execution"
                ),
            )
        )
    return outcomes


def replay_witness_file(path: str) -> List[ReplayOutcome]:
    """Load a witness file and replay every embedded refutation."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    document = parse_json_document(text, source=path, expect_object=True)
    return replay_witness_document(document)
