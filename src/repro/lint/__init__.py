"""Static analysis for composite systems (the ``composite-tx lint``
subsystem).

Four passes over the model vocabulary of the paper:

* :mod:`repro.lint.wellformed` — every Def. 3 schedule axiom and Def. 4
  system constraint as *collected* diagnostics instead of fail-fast
  exceptions;
* :mod:`repro.lint.safety` — a two-sided, verdict-tiered static Comp-C
  analysis: a forest certifier (tier 1), an orientation certifier over
  the mixed forced/free multigraph (tier 2,
  :mod:`repro.lint.orientation`), and a witness-producing refuter whose
  ``CERTIFIED_UNSAFE`` verdicts are validated by replaying the recorded
  execution through the real Def.-16 engine;
* :mod:`repro.lint.witness` — replayable refutation certificates
  (``--witness-out``), schema-versioned canonical JSON;
* :mod:`repro.lint.report` — the document/file surface with text and
  JSON rendering and the exit-code contract.

Every finding carries a stable ``CTX***`` code registered in
:mod:`repro.lint.diagnostics`.
"""

from repro.lint.diagnostics import (
    AXIOM_CODES,
    CODES,
    Diagnostic,
    DiagnosticCollector,
    Location,
    Severity,
)
from repro.lint.report import (
    FileReport,
    LintResult,
    lint_document,
    lint_file,
    lint_paths,
    lint_system,
    render_json,
    render_text,
)
from repro.lint.safety import (
    LevelWitness,
    RefutationWitness,
    SafetyEdge,
    SafetyVerdict,
    StaticSafetyReport,
    analyze_system_safety,
    analyze_topology_safety,
    prove_static_safety,
)
from repro.lint.wellformed import (
    axiom_diagnostic,
    lint_order_propagation,
    lint_schedule_axioms,
    lint_schedules,
    lint_system_document,
    lint_topology_document,
    lint_trace_document,
)
from repro.lint.witness import (
    WITNESS_VERSION,
    ReplayOutcome,
    build_witness_document,
    replay_witness_document,
    replay_witness_file,
    write_witness_file,
)

__all__ = [
    "AXIOM_CODES",
    "CODES",
    "Diagnostic",
    "DiagnosticCollector",
    "FileReport",
    "LevelWitness",
    "LintResult",
    "Location",
    "RefutationWitness",
    "ReplayOutcome",
    "SafetyEdge",
    "SafetyVerdict",
    "Severity",
    "StaticSafetyReport",
    "WITNESS_VERSION",
    "analyze_system_safety",
    "analyze_topology_safety",
    "axiom_diagnostic",
    "build_witness_document",
    "lint_document",
    "lint_order_propagation",
    "lint_schedule_axioms",
    "lint_file",
    "lint_paths",
    "lint_schedules",
    "lint_system",
    "lint_system_document",
    "lint_topology_document",
    "lint_trace_document",
    "prove_static_safety",
    "render_json",
    "render_text",
    "replay_witness_document",
    "replay_witness_file",
    "write_witness_file",
]
