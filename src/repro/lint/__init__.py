"""Static analysis for composite systems (the ``composite-tx lint``
subsystem).

Three passes over the model vocabulary of the paper:

* :mod:`repro.lint.wellformed` — every Def. 3 schedule axiom and Def. 4
  system constraint as *collected* diagnostics instead of fail-fast
  exceptions;
* :mod:`repro.lint.safety` — a conservative static Comp-C prover that
  can certify "no execution of this system ever fails conflict
  consistency" (letting the reduction be skipped) or warn about
  potential conflict cycles;
* :mod:`repro.lint.report` — the document/file surface with text and
  JSON rendering and the exit-code contract.

Every finding carries a stable ``CTX***`` code registered in
:mod:`repro.lint.diagnostics`.
"""

from repro.lint.diagnostics import (
    AXIOM_CODES,
    CODES,
    Diagnostic,
    DiagnosticCollector,
    Location,
    Severity,
)
from repro.lint.report import (
    FileReport,
    LintResult,
    lint_document,
    lint_file,
    lint_paths,
    lint_system,
    render_json,
    render_text,
)
from repro.lint.safety import (
    LevelWitness,
    SafetyEdge,
    StaticSafetyReport,
    analyze_system_safety,
    analyze_topology_safety,
    prove_static_safety,
)
from repro.lint.wellformed import (
    axiom_diagnostic,
    lint_order_propagation,
    lint_schedule_axioms,
    lint_schedules,
    lint_system_document,
    lint_topology_document,
    lint_trace_document,
)

__all__ = [
    "AXIOM_CODES",
    "CODES",
    "Diagnostic",
    "DiagnosticCollector",
    "FileReport",
    "LevelWitness",
    "LintResult",
    "Location",
    "SafetyEdge",
    "Severity",
    "StaticSafetyReport",
    "analyze_system_safety",
    "analyze_topology_safety",
    "axiom_diagnostic",
    "lint_document",
    "lint_order_propagation",
    "lint_schedule_axioms",
    "lint_file",
    "lint_paths",
    "lint_schedules",
    "lint_system",
    "lint_system_document",
    "lint_topology_document",
    "lint_trace_document",
    "prove_static_safety",
    "render_json",
    "render_text",
]
