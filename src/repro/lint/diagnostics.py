"""The lint diagnostic vocabulary: stable codes, severities, locations.

Every finding of the static analyzer is a :class:`Diagnostic` with a
stable ``CTX***`` code, so tooling (CI gates, editors, the JSON output)
can match on codes instead of message text.  The code space:

* ``CTX1xx`` — schedule-level defects (Def. 2/3): the seven output-order
  axioms plus conflict/order declaration problems;
* ``CTX2xx`` — system-level defects (Def. 4–9): parenthood, invocation
  graph, order propagation, topology specs;
* ``CTX3xx`` — program/trace/document-level findings: the static safety
  pass, execution mismatches, versioning, malformed input;
* ``CTX4xx`` — document **I/O** defects raised while reading files:
  text that is not JSON at all, truncated documents (the signature of
  an interrupted write), roots of the wrong shape.  These are reported
  through :class:`repro.exceptions.ParseError` by the loaders in
  :mod:`repro.io` (which carry the rendered diagnostic, the line, and
  the byte offset), and are registered here so tooling can match their
  codes exactly like lint findings.
* ``CTX5xx`` — stream **recovery** defects raised by the streaming
  checker's snapshot/resume layer (:mod:`repro.stream.snapshot`,
  :mod:`repro.stream.supervisor`): snapshot/log fingerprint
  disagreement, event logs shrinking under the tailer, corrupt
  snapshots, and poison-event quarantine.  Reported through
  :class:`repro.exceptions.SnapshotError` /
  :class:`repro.exceptions.EventLogTruncatedError`, which carry the
  rendered diagnostic the same way the ``CTX4xx`` loaders do.

Severity policy: a defect that makes the model meaningless (an axiom
violation, a cyclic order, a dangling reference) is an **error**; a
finding that the engine tolerates but that deserves attention (a
redundant declaration, a *potential* conflict cycle the reduction may
still accept) is a **warning**.  ``--strict`` promotes warnings to the
error exit code without changing the recorded severity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """Lint severity levels (ordered: ERROR > WARNING > NOTE).

    Notes are purely informational: they never affect the exit code,
    not even under ``--strict`` — they exist so machine consumers see
    *why* the analyzer did (or did not) do something, e.g. a declined
    static certification (``CTX306``).
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


#: The stable code registry: code -> (default severity, short title).
#: Codes are append-only; never renumber a released code.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- CTX1xx: schedules (Def. 2/3) ---------------------------------
    "CTX101": (Severity.ERROR, "axiom 1a: input order t->t' not honoured "
               "by conflicting operations"),
    "CTX102": (Severity.ERROR, "axiom 1b: input order t'->t not honoured "
               "by conflicting operations"),
    "CTX103": (Severity.ERROR, "axiom 1c: conflicting operations of "
               "unordered transactions left unordered"),
    "CTX104": (Severity.ERROR, "axiom 2a: intra-transaction weak order "
               "missing from the weak output"),
    "CTX105": (Severity.ERROR, "axiom 2b: intra-transaction strong order "
               "missing from the strong output"),
    "CTX106": (Severity.ERROR, "axiom 3: strong input order not expanded "
               "to operation pairs"),
    "CTX107": (Severity.ERROR, "axiom 4: strong output pair missing from "
               "the weak output"),
    "CTX110": (Severity.ERROR, "operation declared in conflict with "
               "itself"),
    "CTX111": (Severity.WARNING, "duplicate conflict pair"),
    "CTX112": (Severity.ERROR, "conflict names an unknown operation"),
    "CTX113": (Severity.ERROR, "order names an unknown transaction or "
               "operation"),
    "CTX114": (Severity.ERROR, "weak input order is cyclic"),
    "CTX115": (Severity.ERROR, "weak output order is cyclic"),
    # -- CTX2xx: systems (Def. 4-9) -----------------------------------
    "CTX201": (Severity.ERROR, "two schedules share a name"),
    "CTX202": (Severity.ERROR, "transaction assigned to two schedules"),
    "CTX203": (Severity.ERROR, "node is an operation of two transactions"),
    "CTX204": (Severity.ERROR, "system has no root transaction"),
    "CTX205": (Severity.ERROR, "schedule invokes itself"),
    "CTX206": (Severity.ERROR, "recursion in the invocation graph"),
    "CTX207": (Severity.ERROR, "Def. 4.7: caller weak output order not "
               "propagated to the callee input order"),
    "CTX208": (Severity.ERROR, "Def. 4.7: caller strong output order not "
               "propagated to the callee strong input order"),
    "CTX220": (Severity.ERROR, "topology invokes a schedule at the same "
               "or a higher level"),
    "CTX221": (Severity.ERROR, "topology references an unknown schedule"),
    "CTX222": (Severity.ERROR, "topology declares no root schedules"),
    # -- CTX3xx: programs, traces, documents --------------------------
    "CTX301": (Severity.WARNING, "potential cross-schedule conflict "
               "cycle (not statically Comp-C)"),
    "CTX302": (Severity.ERROR, "execution sequence disagrees with the "
               "declared operations"),
    "CTX303": (Severity.ERROR, "unsupported document version"),
    "CTX304": (Severity.ERROR, "trace front verdict contradicts its "
               "recorded relations"),
    "CTX305": (Severity.ERROR, "malformed document"),
    "CTX306": (Severity.NOTE, "static certification declined (the "
               "observed-order options are outside the prover's "
               "argument)"),
    "CTX310": (Severity.ERROR, "statically refuted: the recorded "
               "execution is rejected by the reduction (replay-"
               "validated witness)"),
    # -- CTX4xx: document I/O (repro.io loaders) -----------------------
    "CTX401": (Severity.ERROR, "document is not valid JSON"),
    "CTX402": (Severity.ERROR, "document truncated: JSON text ends "
               "unexpectedly"),
    "CTX403": (Severity.ERROR, "document root is not a JSON object"),
    # -- CTX5xx: stream recovery (repro.stream snapshot/supervisor) ----
    "CTX501": (Severity.ERROR, "snapshot fingerprint disagrees with the "
               "event log prefix (log diverged, rotated, or rewritten)"),
    "CTX502": (Severity.ERROR, "event log shrank below the consumed "
               "offset (truncation or rotation mid-tail)"),
    "CTX503": (Severity.ERROR, "snapshot unreadable, corrupt, or of an "
               "unsupported schema version"),
    "CTX504": (Severity.ERROR, "poison event quarantined: the watcher "
               "died repeatedly at the same log offset"),
}

#: Def.-3 axiom name -> diagnostic code (the ScheduleAxiomError bridge).
AXIOM_CODES: Dict[str, str] = {
    "1a": "CTX101",
    "1b": "CTX102",
    "1c": "CTX103",
    "2a": "CTX104",
    "2b": "CTX105",
    "3": "CTX106",
    "4": "CTX107",
}


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Every field is optional — a document-level finding may only know the
    file, a schedule-axiom finding knows schedule + operations +
    transactions.  ``nodes`` holds the offending operation/transaction
    pair in a stable order so reports are reproducible.
    """

    file: Optional[str] = None
    schedule: Optional[str] = None
    nodes: Tuple[str, ...] = ()

    def describe(self) -> str:
        parts: List[str] = []
        if self.file:
            parts.append(self.file)
        if self.schedule:
            parts.append(f"schedule {self.schedule}")
        if self.nodes:
            parts.append("(" + ", ".join(self.nodes) + ")")
        return " ".join(parts) if parts else "<model>"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "schedule": self.schedule,
            "nodes": list(self.nodes),
        }


@dataclass(frozen=True)
class Diagnostic:
    """One collected lint finding."""

    code: str
    severity: Severity
    location: Location
    message: str
    fix_hint: Optional[str] = None

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        hint = f"  [fix: {self.fix_hint}]" if self.fix_hint else ""
        return (
            f"{self.code} {self.severity}: {self.location.describe()}: "
            f"{self.message}{hint}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location.to_dict(),
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


class DiagnosticCollector:
    """Accumulates diagnostics instead of raising on the first defect.

    The collector is the device that turns the engine's fail-fast
    exception paths into a complete report: every check reports through
    ``add``/``report`` and keeps going.
    """

    def __init__(self, *, file: Optional[str] = None) -> None:
        self._file = file
        self._diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    def report(
        self,
        code: str,
        message: str,
        *,
        schedule: Optional[str] = None,
        nodes: Iterable[str] = (),
        fix_hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record a finding under a registered code and return it."""
        if code not in CODES:
            raise KeyError(f"unregistered diagnostic code {code!r}")
        default_severity, _title = CODES[code]
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else default_severity,
            location=Location(
                file=self._file, schedule=schedule, nodes=tuple(nodes)
            ),
            message=message,
            fix_hint=fix_hint,
        )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self._diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self._diagnostics if d.severity is Severity.WARNING
        )

    @property
    def notes(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self._diagnostics if d.severity is Severity.NOTE
        )

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    def counts(self) -> Dict[str, int]:
        """``code -> occurrences`` in sorted code order (deterministic —
        the chaos-grid determinism contract relies on it)."""
        out: Dict[str, int] = {}
        for diagnostic in self._diagnostics:
            out[diagnostic.code] = out.get(diagnostic.code, 0) + 1
        return {code: out[code] for code in sorted(out)}
