"""The lint surface: run the passes over documents, render reports.

This module is what the ``composite-tx lint`` command and the chaos
grid call: it dispatches a document to the right passes by shape,
aggregates per-file reports, and renders them as text or JSON with the
exit-code contract (0 = clean, 1 = usage/IO problem, 2 = error
findings, or any finding under ``--strict``; notes never count).

Determinism contract: ``render_json`` serializes through
:func:`repro.obs.sink.canonical_json_dumps`, and ``lint_paths`` keeps
reports in file-submission order even under ``workers > 1`` — a
sharded lint run is byte-identical to a serial one.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.observed import ObservedOrderOptions
from repro.core.system import CompositeSystem
from repro.lint.diagnostics import Diagnostic, DiagnosticCollector
from repro.lint.safety import (
    SafetyVerdict,
    StaticSafetyReport,
    analyze_system_safety,
    analyze_topology_safety,
)
from repro.obs.sink import canonical_json_dumps
from repro.lint.wellformed import (
    lint_schedules,
    lint_system_document,
    lint_topology_document,
    lint_trace_document,
)

#: document-kind labels, decided by :func:`document_kind`
KIND_SYSTEM = "system"
KIND_TRACE = "trace"
KIND_TOPOLOGY = "topology"
KIND_UNKNOWN = "unknown"


@dataclass
class FileReport:
    """Everything lint produced for one document."""

    path: Optional[str]
    kind: str
    collector: DiagnosticCollector
    safety: Optional[StaticSafetyReport] = None

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return self.collector.diagnostics

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "kind": self.kind,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "safety": self.safety.to_dict() if self.safety else None,
        }


@dataclass
class LintResult:
    """The aggregate over every linted document."""

    reports: List[FileReport]

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for r in self.reports for d in r.diagnostics)

    @property
    def error_count(self) -> int:
        return sum(len(r.collector.errors) for r in self.reports)

    @property
    def warning_count(self) -> int:
        return sum(len(r.collector.warnings) for r in self.reports)

    @property
    def note_count(self) -> int:
        return sum(len(r.collector.notes) for r in self.reports)

    def verdict_counts(self) -> Dict[str, int]:
        """``verdict -> documents`` over every report that ran the
        static safety analysis, in sorted verdict order (the summary
        the chaos grid and the fleet coordinator fold per shard)."""
        out: Dict[str, int] = {}
        for report in self.reports:
            if report.safety is None:
                continue
            key = str(report.safety.verdict)
            out[key] = out.get(key, 0) + 1
        return {key: out[key] for key in sorted(out)}

    def counts(self) -> Dict[str, int]:
        """``code -> occurrences`` across all reports, sorted by code —
        the deterministic summary the chaos grid merges."""
        out: Dict[str, int] = {}
        for report in self.reports:
            for code, count in report.collector.counts().items():
                out[code] = out.get(code, 0) + count
        return {code: out[code] for code in sorted(out)}

    def exit_code(self, *, strict: bool = False) -> int:
        if self.error_count:
            return 2
        if strict and self.warning_count:
            return 2
        return 0


def document_kind(document: Mapping) -> str:
    """Decide which passes apply by the document's shape."""
    if "schedules" in document:
        return KIND_SYSTEM
    if "fronts" in document or "succeeded" in document:
        return KIND_TRACE
    if "levels" in document or "invokes" in document:
        return KIND_TOPOLOGY
    return KIND_UNKNOWN


def lint_document(
    document: Mapping,
    *,
    file: Optional[str] = None,
    options: Optional[ObservedOrderOptions] = None,
) -> FileReport:
    """Run every applicable pass over one parsed document."""
    collector = DiagnosticCollector(file=file)
    kind = document_kind(document)
    safety: Optional[StaticSafetyReport] = None
    if kind == KIND_SYSTEM:
        system = lint_system_document(collector, document)
        if system is not None and not collector.has_errors():
            safety = analyze_system_safety(collector, system, options)
    elif kind == KIND_TRACE:
        lint_trace_document(collector, document)
    elif kind == KIND_TOPOLOGY:
        spec = lint_topology_document(collector, document)
        if spec is not None:
            analyze_topology_safety(collector, spec)
    else:
        collector.report(
            "CTX305",
            "unrecognized document shape (expected a system, trace or "
            "topology document)",
            fix_hint="system documents have 'schedules', traces have "
            "'fronts'/'succeeded', topologies have 'levels'/'invokes'",
        )
    return FileReport(path=file, kind=kind, collector=collector, safety=safety)


def lint_system(
    system: CompositeSystem,
    *,
    options: Optional[ObservedOrderOptions] = None,
    file: Optional[str] = None,
) -> FileReport:
    """Lint an in-memory system (the chaos-grid / API entry point)."""
    collector = DiagnosticCollector(file=file)
    checked = lint_schedules(collector, list(system.schedules.values()))
    safety: Optional[StaticSafetyReport] = None
    if checked is not None and not collector.has_errors():
        safety = analyze_system_safety(collector, checked, options)
    return FileReport(
        path=file, kind=KIND_SYSTEM, collector=collector, safety=safety
    )


def _gather_paths(paths: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Expand directories to their ``*.json`` files (recursively, in
    sorted order).  Returns ``(files, missing)``."""
    files: List[str] = []
    missing: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".json"):
                        files.append(os.path.join(dirpath, name))
        elif os.path.exists(path):
            files.append(path)
        else:
            missing.append(path)
    return files, missing


def _lint_file_task(
    task: Tuple[str, Optional[ObservedOrderOptions]]
) -> FileReport:
    """Module-level pool target (``lint_file`` takes keyword-only
    options, which ``ProcessPoolExecutor.map`` cannot pass)."""
    file, options = task
    return lint_file(file, options=options)


def lint_paths(
    paths: Sequence[str],
    *,
    options: Optional[ObservedOrderOptions] = None,
    workers: int = 1,
) -> Tuple[LintResult, List[str]]:
    """Lint files and directories.  Returns the result plus the list of
    paths that did not exist (a usage error, exit code 1).

    ``workers > 1`` shards the files over a process pool;
    ``executor.map`` yields results in submission order, so the
    aggregate — and therefore the rendered report — is byte-identical
    to a serial run.
    """
    files, missing = _gather_paths(paths)
    if workers > 1 and len(files) > 1:
        tasks = [(file, options) for file in files]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(files))
        ) as pool:
            reports = list(pool.map(_lint_file_task, tasks))
        return LintResult(reports=reports), missing
    reports = [lint_file(file, options=options) for file in files]
    return LintResult(reports=reports), missing


def lint_file(
    file: str, *, options: Optional[ObservedOrderOptions] = None
) -> FileReport:
    """Lint one file; unparseable JSON is a CTX305 finding, not a crash."""
    collector = DiagnosticCollector(file=file)
    try:
        with open(file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        collector.report(
            "CTX305",
            f"not valid JSON: {err}",
            fix_hint="lint expects JSON system/trace/topology documents",
        )
        return FileReport(path=file, kind=KIND_UNKNOWN, collector=collector)
    if not isinstance(document, Mapping):
        collector.report(
            "CTX305", "top-level JSON value is not an object"
        )
        return FileReport(path=file, kind=KIND_UNKNOWN, collector=collector)
    return lint_document(document, file=file, options=options)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _explain_lines(report: FileReport) -> List[str]:
    """The ``--explain`` provenance chains: every witness cycle (and
    the refutation, if any) spelled out edge by edge — each
    :meth:`~repro.lint.safety.SafetyEdge.describe` line is
    self-locating (``L<level> schedule:source(pair)``)."""
    safety = report.safety
    if safety is None:
        return []
    lines: List[str] = []
    if safety.refutation is not None:
        witness = safety.refutation
        lines.append(
            f"  refutation (level {witness.level}): "
            + " -> ".join(witness.cycle_nodes + witness.cycle_nodes[:1])
        )
        for edge in witness.cycle_edges:
            lines.append(f"    {edge.describe()}")
        for name in sorted(witness.executions):
            lines.append(
                f"    recorded execution {name}: "
                + " ".join(witness.executions[name])
            )
    for witness_level in safety.cycle_witnesses:
        lines.append(
            f"  level-{witness_level.level} cycle"
            + (
                " (tier-2 certified: cannot orient directed)"
                if witness_level.orientable is False
                else ""
            )
            + ": "
            + " -> ".join(witness_level.cycle_nodes)
        )
        for edge in witness_level.cycle_edges:
            lines.append(f"    {edge.describe()}")
    return lines


def render_text(
    result: LintResult, *, strict: bool = False, explain: bool = False
) -> str:
    """The human-readable report (deterministic: file order, then
    collection order).  ``explain`` appends each document's cycle and
    refutation provenance chains."""
    lines: List[str] = []
    for report in result.reports:
        if not report.diagnostics and not (
            explain and _explain_lines(report)
        ):
            continue
        header = report.path or "<input>"
        lines.append(f"{header} [{report.kind}]:")
        for diagnostic in report.diagnostics:
            lines.append("  " + diagnostic.render())
        if explain:
            lines.extend(_explain_lines(report))
    decided = [
        r
        for r in result.reports
        if r.safety is not None and (r.safety.certified or r.safety.refuted)
    ]
    for report in decided:
        lines.append(
            f"{report.path or '<input>'}: {report.safety.summary()}"
        )
    verdict = "FAIL" if result.exit_code(strict=strict) else "OK"
    notes = f", {result.note_count} note(s)" if result.note_count else ""
    lines.append(
        f"{verdict}: {len(result.reports)} document(s), "
        f"{result.error_count} error(s), {result.warning_count} warning(s)"
        + notes
        + (" [strict]" if strict else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult, *, strict: bool = False) -> str:
    """The machine-readable report, canonically serialized
    (:func:`~repro.obs.sink.canonical_json_dumps`): byte-identical
    across serial and sharded runs."""
    payload = {
        "files": [r.to_dict() for r in result.reports],
        "counts": result.counts(),
        "verdicts": result.verdict_counts(),
        "errors": result.error_count,
        "warnings": result.warning_count,
        "notes": result.note_count,
        "strict": strict,
        "exit_code": result.exit_code(strict=strict),
    }
    return canonical_json_dumps(payload)
