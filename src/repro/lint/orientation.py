"""Mixed-multigraph orientation analysis (certifier tier 2).

The tier-1 forest test treats every edge of the level-``l``
potential-conflict multigraph as freely orientable, so *any* undirected
cycle defeats it.  But the two edge sources are not equally free:

* a **weak-input edge** is direction-forced — a front's input order
  only ever contains a schedule's recorded input pairs (and their
  closure), never their reversals;
* a **conflict edge** is free — the recorded execution orders the
  conflicting pair one way or the other, and re-runs may flip it.

A front can therefore fail conflict consistency only when the mixed
multigraph (forced arcs + free undirected edges) admits a *directed*
closed walk through distinct edges that traverses every forced arc
forward.  This module decides that question exactly:

such a cycle exists **iff**

1. some forced arc has both endpoints inside one strongly connected
   component of the mixed graph (free edges traversable both ways) —
   the SCC supplies a simple return path, closing the cycle; or
2. the free edges alone contain an undirected cycle (parallel free
   edges included) — orient it around.

*Only if*: a realizable cycle containing a forced arc lies entirely in
one SCC (the cycle itself witnesses mutual reachability), putting that
arc's endpoints in a common component (case 1); a realizable cycle
without forced arcs is an undirected cycle of free edges (case 2).
*If*: for case 1 take a simple path back through the SCC (simple ⟹
edge-distinct and it cannot re-traverse the arc); for case 2 orient the
undirected cycle cyclically.

When neither condition holds, no orientation of the free edges can
close a directed cycle — the level is safe for **every** recorded
execution, certifying strictly more systems than the forest test
(e.g. a forced diamond ``a→b→d``, ``a→c→d`` is an undirected cycle but
can never orient into a directed one).

Everything here is plain data (node names and directed/undirected
pairs); the projection onto level representatives and the edge
provenance live in :mod:`repro.lint.safety`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

Arc = Tuple[str, str]


def _strongly_connected_components(
    nodes: Sequence[str], arcs: Sequence[Arc]
) -> Dict[str, int]:
    """Iterative Tarjan SCC over ``arcs``; returns node -> component id.

    Deterministic: roots are visited in ``nodes`` order and successors
    in insertion order, so component ids are reproducible.
    """
    adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
    for u, v in arcs:
        adjacency[u].append(v)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    component: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = 0
    components = 0
    for root in nodes:
        if root in index:
            continue
        # (node, iterator position) work list — recursion-free DFS
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, position = work.pop()
            if position == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = adjacency[node]
            while position < len(successors):
                succ = successors[position]
                position += 1
                if succ not in index:
                    work.append((node, position))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def mixed_graph_unsafe_reason(
    forced: Sequence[Arc], free: Sequence[Arc]
) -> Optional[str]:
    """Decide whether the mixed multigraph admits a directed cycle.

    ``forced`` are direction-fixed arcs (weak-input edges, recorded
    direction); ``free`` are undirected edges (conflict edges), given
    as arbitrary-order endpoint pairs.  Returns ``None`` when **no**
    orientation of the free edges can close a directed cycle (the
    level is certified safe), otherwise a short human-readable reason.
    """
    nodes: List[str] = []
    seen: Set[str] = set()
    for u, v in list(forced) + list(free):
        for node in (u, v):
            if node not in seen:
                seen.add(node)
                nodes.append(node)
    arcs: List[Arc] = list(forced)
    for u, v in free:
        arcs.append((u, v))
        arcs.append((v, u))
    component = _strongly_connected_components(nodes, arcs)
    for u, v in forced:
        if component[u] == component[v]:
            return (
                f"forced input arc {u}->{v} closes a directed cycle "
                "(its endpoints are mutually reachable)"
            )
    # free edges alone: union-find forest test, parallels count
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in free:
        ru, rv = find(u), find(v)
        if ru == rv:
            return (
                f"free conflict edges form an undirected cycle through "
                f"{u} and {v} (orientable into a directed cycle)"
            )
        parent[ru] = rv
    return None


def find_directed_cycle(arcs: Sequence[Arc]) -> Optional[List[int]]:
    """A directed cycle in ``arcs``, as a list of arc *indices* in
    traversal order, or ``None`` when the arc set is acyclic.

    Used by the refuter: the arcs are the multigraph edges under their
    *recorded* orientations, and the returned indices recover each
    edge's provenance.  Deterministic (nodes in first-appearance order,
    arcs in input order).
    """
    adjacency: Dict[str, List[Tuple[str, int]]] = {}
    nodes: List[str] = []
    for i, (u, v) in enumerate(arcs):
        if u not in adjacency:
            adjacency[u] = []
            nodes.append(u)
        if v not in adjacency:
            adjacency[v] = []
            nodes.append(v)
        adjacency[u].append((v, i))
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {node: WHITE for node in nodes}
    for root in nodes:
        if colour[root] != WHITE:
            continue
        # path as (node, arc-index-taken-to-reach-it); root has no arc
        path: List[Tuple[str, int]] = [(root, -1)]
        position: List[int] = [0]
        colour[root] = GREY
        while path:
            node, _ = path[-1]
            successors = adjacency[node]
            cursor = position[-1]
            if cursor >= len(successors):
                colour[node] = BLACK
                path.pop()
                position.pop()
                continue
            position[-1] = cursor + 1
            succ, arc_index = successors[cursor]
            if colour[succ] == GREY:
                # back edge: unwind the grey path down to ``succ``
                cycle = [arc_index]
                for pnode, parc in reversed(path):
                    if pnode == succ:
                        break
                    cycle.append(parc)
                cycle.reverse()
                return cycle
            if colour[succ] == WHITE:
                colour[succ] = GREY
                path.append((succ, arc_index))
                position.append(0)
    return None
