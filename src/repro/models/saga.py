"""Sagas as composite transactions.

A *saga* [GGKKS87-style, cited via the paper's §4 discussion] is a long-
lived transaction split into steps that each commit independently; the
application accepts interleavings between steps of different sagas and
relies on compensation instead of isolation.

In composite terms a saga is a root transaction whose steps are
subtransactions of a database component, where the *saga layer declares
the steps of different sagas non-conflicting* — the application
semantics vouch that step-level interleavings commute.  The composite
theory then accepts exactly the executions saga semantics accepts:
every step individually isolated at the database, any step interleaving
across sagas — executions that flat serializability (and LLSR) reject.

A *compensated* saga runs some prefix of its steps followed by the
matching compensation steps in reverse order; at the database each
compensation is one more subtransaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem
from repro.exceptions import ModelError


@dataclass
class SagaStep:
    """One step: its accesses and (optionally) its compensation's."""

    name: str
    accesses: Tuple[Tuple[str, str], ...]  # (item, mode)
    compensation: Tuple[Tuple[str, str], ...] = ()


@dataclass
class Saga:
    """An ordered list of steps, optionally aborted after a prefix."""

    name: str
    steps: List[SagaStep] = field(default_factory=list)
    abort_after: Optional[int] = None  # run this many steps, then compensate

    def step(
        self,
        name: str,
        *accesses: Tuple[str, str],
        compensation: Sequence[Tuple[str, str]] = (),
    ) -> "Saga":
        self.steps.append(
            SagaStep(name, tuple(accesses), tuple(compensation))
        )
        return self

    def executed_steps(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...]]]:
        """The (step-transaction name, accesses) list this saga actually
        runs: all steps, or a prefix plus reversed compensations."""
        if self.abort_after is None:
            return [(f"{self.name}.{s.name}", s.accesses) for s in self.steps]
        if not 0 <= self.abort_after <= len(self.steps):
            raise ModelError(
                f"saga {self.name!r}: abort_after out of range"
            )
        ran = self.steps[: self.abort_after]
        out = [(f"{self.name}.{s.name}", s.accesses) for s in ran]
        for s in reversed(ran):
            if s.compensation:
                out.append((f"{self.name}.undo_{s.name}", s.compensation))
        return out


def build_saga_system(
    sagas: Sequence[Saga],
    interleaving: Sequence[str],
    *,
    database: str = "DB",
    saga_layer: str = "SagaLayer",
    validate: bool = True,
) -> CompositeSystem:
    """Assemble the two-level saga composite.

    ``interleaving`` is the order in which *steps* hit the database,
    given as step-transaction names (``"S1.reserve"``); each step's
    accesses execute contiguously (steps are the atomic units).
    """
    builder = SystemBuilder()
    step_ops: Dict[str, List[str]] = {}
    access_info: List[Tuple[str, str, str, str]] = []  # op, item, mode, step
    op_counter = 0
    for saga in sagas:
        names = []
        for step_name, accesses in saga.executed_steps():
            names.append(step_name)
            ops = []
            for item, mode in accesses:
                op_counter += 1
                op = f"{step_name}.{mode}{op_counter}[{item}]"
                ops.append(op)
                access_info.append((op, item, mode, step_name))
            builder.transaction(step_name, database, ops, sequential=False)
            step_ops[step_name] = ops
        builder.transaction(saga.name, saga_layer, names)
    # The saga layer orders each saga's own steps (program order) but
    # declares steps of different sagas non-conflicting: no conflicts at
    # the saga layer at all.
    layer_sequence: List[str] = []
    for step in interleaving:
        if step not in step_ops:
            raise ModelError(f"unknown step {step!r} in the interleaving")
        layer_sequence.append(step)
    if set(layer_sequence) != set(step_ops):
        raise ModelError("interleaving must mention every executed step once")
    builder.executed(saga_layer, layer_sequence)

    # Database: steps are atomic (each step's accesses contiguous);
    # read/write conflicts on shared items.
    db_sequence = [op for step in layer_sequence for op in step_ops[step]]
    for i, (op_a, item_a, mode_a, step_a) in enumerate(access_info):
        for op_b, item_b, mode_b, step_b in access_info[i + 1:]:
            if step_a == step_b:
                continue
            if item_a == item_b and "w" in (mode_a, mode_b):
                builder.conflict(database, op_a, op_b)
    builder.executed(database, db_sequence)
    return builder.build(validate=validate)


def flat_equivalent_is_serializable(
    sagas: Sequence[Saga], interleaving: Sequence[str]
) -> bool:
    """Judge the same execution as *flat* transactions (each saga one
    monolithic transaction at the database) — the baseline sagas were
    invented to escape.  Returns classical CSR of the step-serialization
    graph at saga granularity."""
    from repro.core.orders import Relation

    owner: Dict[str, Tuple[str, Tuple[Tuple[str, str], ...]]] = {}
    saga_of: Dict[str, str] = {}
    for saga in sagas:
        for step_name, accesses in saga.executed_steps():
            owner[step_name] = (saga.name, accesses)
            saga_of[step_name] = saga.name
    graph = Relation(elements=[s.name for s in sagas])
    flattened: List[Tuple[str, str, str]] = []  # saga, item, mode
    for step in interleaving:
        saga_name, accesses = owner[step]
        for item, mode in accesses:
            flattened.append((saga_name, item, mode))
    for i, (sa, item_a, mode_a) in enumerate(flattened):
        for sb, item_b, mode_b in flattened[i + 1:]:
            if sa != sb and item_a == item_b and "w" in (mode_a, mode_b):
                graph.add(sa, sb)
    return graph.is_acyclic()
