"""Distributed transactions as fork composites.

§4 of the paper (following [AFPS99]) observes that classical distributed
transactions are the *fork* configuration: a coordinator delegates
pieces of each global transaction to independent resource managers.
This module builds that model from a declarative description of global
transactions and lets the composite machinery judge the outcome —
Theorem 3 guarantees the FCC verdict and Comp-C coincide.

The model captures the key practical dichotomy:

* if the coordinator knows two global transactions conflict (they touch
  a shared logical object), their resource-manager serializations must
  agree — disagreement is an anomaly (caught as non-Comp-C, or already
  refused by Def.-3 validation for compliant managers);
* if the coordinator vouches they commute, the managers may serialize
  them independently in any direction (Def. 23.3's spirit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem
from repro.exceptions import ModelError


@dataclass(frozen=True)
class BranchWork:
    """One global transaction's accesses at one resource manager."""

    manager: str
    items: Tuple[Tuple[str, str], ...]  # (item, mode) pairs, in order


@dataclass
class GlobalTransaction:
    """A distributed transaction: work at several resource managers."""

    name: str
    branches: List[BranchWork] = field(default_factory=list)

    def work(self, manager: str, *items: Tuple[str, str]) -> "GlobalTransaction":
        """Fluent helper: ``gt.work("RM1", ("x", "r"), ("x", "w"))``."""
        self.branches.append(BranchWork(manager, tuple(items)))
        return self


def build_distributed_system(
    transactions: Sequence[GlobalTransaction],
    manager_orders: Mapping[str, Sequence[str]],
    *,
    coordinator_conflicts: Sequence[Tuple[str, str]] = (),
    coordinator: str = "Coordinator",
    validate: bool = True,
) -> CompositeSystem:
    """Assemble the fork composite.

    ``manager_orders`` gives, per resource manager, the temporal order of
    global-transaction *visits* (each visit is one subtransaction); the
    manager's access sequence is derived by expanding each visit's items
    in order.  ``coordinator_conflicts`` lists pairs of global
    transactions the coordinator knows to conflict.
    """
    builder = SystemBuilder()
    call_name: Dict[Tuple[str, str], str] = {}
    call_ops: Dict[str, List[str]] = {}
    op_counter = 0

    for gt in transactions:
        calls = []
        for branch in gt.branches:
            call = f"{gt.name}@{branch.manager}"
            if (gt.name, branch.manager) in call_name:
                raise ModelError(
                    f"{gt.name} visits {branch.manager} twice; merge the work"
                )
            call_name[(gt.name, branch.manager)] = call
            calls.append(call)
            ops = []
            for item, mode in branch.items:
                op_counter += 1
                ops.append(f"{call}.{mode}{op_counter}[{item}]")
            builder.transaction(call, branch.manager, ops)
            call_ops[call] = ops
        builder.transaction(gt.name, coordinator, calls)
    builder.executed(
        coordinator,
        [c for gt in transactions for c in
         (call_name[(gt.name, b.manager)] for b in gt.branches)],
    )
    for a, b in coordinator_conflicts:
        ca = [call_name[(a, br.manager)] for br in _by_name(transactions, a).branches]
        cb = [call_name[(b, br.manager)] for br in _by_name(transactions, b).branches]
        for x in ca:
            for y in cb:
                builder.conflict(coordinator, x, y)

    # Resource managers: expand visit orders into access sequences and
    # derive read/write conflicts on shared items.
    for manager, visit_order in manager_orders.items():
        sequence: List[str] = []
        accesses: List[Tuple[str, str, str, str]] = []  # (op, item, mode, call)
        for gt_name in visit_order:
            call = call_name.get((gt_name, manager))
            if call is None:
                raise ModelError(
                    f"{gt_name} has no work at {manager} but appears in its order"
                )
            gt = _by_name(transactions, gt_name)
            branch = next(b for b in gt.branches if b.manager == manager)
            schedule_ops = call_ops[call]
            sequence.extend(schedule_ops)
            for op, (item, mode) in zip(schedule_ops, branch.items):
                accesses.append((op, item, mode, call))
        for i, (op_a, item_a, mode_a, call_a) in enumerate(accesses):
            for op_b, item_b, mode_b, call_b in accesses[i + 1:]:
                if call_a == call_b:
                    continue
                if item_a == item_b and "w" in (mode_a, mode_b):
                    builder.conflict(manager, op_a, op_b)
        builder.executed(manager, sequence)

    return builder.build(validate=validate)


def _by_name(
    transactions: Sequence[GlobalTransaction], name: str
) -> GlobalTransaction:
    for gt in transactions:
        if gt.name == name:
            return gt
    raise ModelError(f"unknown global transaction {name!r}")
