"""Federated transactions and the ticket method, as join composites.

A federated database runs *global* transactions (issued through client
federation layers) alongside *local* transactions (submitted directly to
one site).  In composite terms this is the join configuration with
roots on two kinds of schedules: client layers (global) and the site
itself (local) — exactly the generality Def. 4 adds over earlier models.

The classical problem: each site is serializable on its own, yet global
transactions can be serialized in different orders at different sites —
invisible locally, caught here by the ghost graph/observed order.  The
classical fix the paper's §4 cites is the **ticket method** [GRS94
lineage]: every global transaction increments a per-site *ticket*
item, turning the hidden cross-site disagreement into an explicit local
conflict cycle that any serializable site refuses (or that the checker
rejects).

:func:`build_federated_system` models executions over multiple sites;
:func:`with_tickets` adds the ticket accesses to every global
transaction, letting tests and benches measure exactly what the ticket
buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.builder import SystemBuilder
from repro.core.system import CompositeSystem
from repro.exceptions import ModelError


@dataclass
class GlobalWork:
    """A global transaction: per-site access lists, issued via a client
    federation layer."""

    name: str
    client: str
    site_work: Dict[str, Tuple[Tuple[str, str], ...]] = field(
        default_factory=dict
    )

    def at(self, site: str, *accesses: Tuple[str, str]) -> "GlobalWork":
        self.site_work[site] = tuple(accesses)
        return self


@dataclass
class LocalWork:
    """A local transaction: direct accesses at one site."""

    name: str
    site: str
    accesses: Tuple[Tuple[str, str], ...] = ()


def with_tickets(
    transactions: Sequence[GlobalWork], *, ticket_item: str = "__ticket__"
) -> List[GlobalWork]:
    """Return copies of the global transactions with a ticket
    read-modify-write prepended to their work at every site they visit."""
    out = []
    for gt in transactions:
        clone = GlobalWork(gt.name, gt.client)
        for site, accesses in gt.site_work.items():
            clone.site_work[site] = (
                (ticket_item, "r"),
                (ticket_item, "w"),
            ) + tuple(accesses)
        out.append(clone)
    return out


def build_federated_system(
    global_txns: Sequence[GlobalWork],
    local_txns: Sequence[LocalWork],
    site_orders: Mapping[str, Sequence[str]],
    *,
    validate: bool = True,
) -> CompositeSystem:
    """Assemble the federation.

    ``site_orders`` gives, per site, the order of transaction *visits*
    (global transaction names and local transaction names); each visit's
    accesses run contiguously (sites execute subtransactions atomically
    in this model — the composite layer is what is under test).
    """
    builder = SystemBuilder()
    visit_name: Dict[Tuple[str, str], str] = {}
    visit_ops: Dict[str, List[str]] = {}
    visit_accesses: Dict[str, Tuple[Tuple[str, str], ...]] = {}
    op_counter = 0

    def make_visit(txn: str, site: str, accesses) -> str:
        nonlocal op_counter
        visit = f"{txn}@{site}"
        ops = []
        for item, mode in accesses:
            op_counter += 1
            ops.append(f"{visit}.{mode}{op_counter}[{item}]")
        builder.transaction(visit, site, ops)
        visit_name[(txn, site)] = visit
        visit_ops[visit] = ops
        visit_accesses[visit] = tuple(accesses)
        return visit

    clients: Dict[str, List[str]] = {}
    for gt in global_txns:
        visits = [
            make_visit(gt.name, site, accesses)
            for site, accesses in gt.site_work.items()
        ]
        builder.transaction(gt.name, gt.client, visits)
        clients.setdefault(gt.client, []).extend(visits)
    for client, visits in clients.items():
        builder.executed(client, visits)

    local_names = set()
    for lt in local_txns:
        # Local transactions are roots directly on the site schedule.
        op_ids = []
        for item, mode in lt.accesses:
            op_counter += 1
            op_ids.append(f"{lt.name}.{mode}{op_counter}[{item}]")
        builder.transaction(lt.name, lt.site, op_ids)
        visit_ops[lt.name] = op_ids
        visit_accesses[lt.name] = tuple(lt.accesses)
        local_names.add(lt.name)

    for site, order in site_orders.items():
        sequence: List[str] = []
        flat: List[Tuple[str, str, str, str]] = []  # op, item, mode, visit
        for txn in order:
            visit = (
                txn if txn in local_names else visit_name.get((txn, site))
            )
            if visit is None or visit not in visit_ops:
                raise ModelError(
                    f"{txn!r} has no work at site {site!r}"
                )
            sequence.extend(visit_ops[visit])
            for op, (item, mode) in zip(
                visit_ops[visit], visit_accesses[visit]
            ):
                flat.append((op, item, mode, visit))
        for i, (op_a, item_a, mode_a, visit_a) in enumerate(flat):
            for op_b, item_b, mode_b, visit_b in flat[i + 1:]:
                if visit_a == visit_b:
                    continue
                if item_a == item_b and "w" in (mode_a, mode_b):
                    builder.conflict(site, op_a, op_b)
        builder.executed(site, sequence)

    return builder.build(validate=validate)
