"""Transaction models expressed in the composite framework.

§4 of the paper: "the stack, fork and join can be used to model a
variety of transaction models like federated transactions, the ticket
method for federated transaction management, sagas and distributed
transactions.  The results in this paper show that Comp-C is a
framework where all these models can be understood and compared."

This package makes that concrete: declarative builders that express
each classical model as a composite system, so one checker judges them
all.
"""

from repro.models.distributed import (
    BranchWork,
    GlobalTransaction,
    build_distributed_system,
)
from repro.models.federated import (
    GlobalWork,
    LocalWork,
    build_federated_system,
    with_tickets,
)
from repro.models.saga import (
    Saga,
    SagaStep,
    build_saga_system,
    flat_equivalent_is_serializable,
)

__all__ = [
    "BranchWork",
    "GlobalTransaction",
    "build_distributed_system",
    "GlobalWork",
    "LocalWork",
    "build_federated_system",
    "with_tickets",
    "Saga",
    "SagaStep",
    "build_saga_system",
    "flat_equivalent_is_serializable",
]
