"""F2 — Figure 2: conflict and observed order.

Regenerates the paper's illustration of how a leaf conflict on a shared
bottom schedule climbs the execution trees: the observed order and the
generalized conflict relation are printed for every front, showing the
pair (o13, o25) becoming (T1, T2) — and transitivity relating (T1, T3).
The benchmark times the full front chain computation.
"""

from repro.analysis.tables import banner, format_table
from repro.core.conflicts import conflict_digest
from repro.core.reduction import reduce_to_roots
from repro.figures import figure2_system


def front_chain():
    system = figure2_system()
    return system, reduce_to_roots(system)


def test_bench_f2_observed(benchmark, emit):
    system, result = benchmark(front_chain)

    # --- assertions: the climb the paper narrates ----------------------
    assert result.succeeded
    f0, f1, f2, f3 = result.fronts
    assert ("o13", "o25") in f0.observed  # conflicting and ordered by S4
    assert ("v1", "v2") in f1.observed  # one level up
    assert ("t11", "t21") in f2.observed  # two levels up
    assert ("T1", "T2") in f3.observed  # reaches the roots
    assert ("T1", "T3") in f3.observed  # via transitivity through T2

    lines = [banner("F2: observed order and generalized conflicts")]
    for front in result.fronts:
        lines.append(f"level {front.level} front: {{{', '.join(front.nodes)}}}")
        obs_rows = [[a, b] for a, b in front.observed.pairs()]
        if obs_rows:
            lines.append(format_table(["before", "after"], obs_rows))
        else:
            lines.append("(no observed pairs)")
        digest = conflict_digest(system, front.observed, front.nodes)
        if digest:
            lines.append("generalized conflicts (Def. 11):")
            for a, b, source in digest:
                lines.append(f"  CON({a}, {b})  [source: {source}]")
        lines.append("")
    lines.append(
        "paper claim reproduced: the leaf conflict (o13, o25) on S4 "
        "relates (T1, T2) and transitively (T1, T3)."
    )
    emit("F2", "\n".join(lines))
