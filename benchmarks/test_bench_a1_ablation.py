"""A1 — ablation: the forgetting rule and the conflict-gated seeds.

Two design choices in the observed-order machinery (DESIGN.md
interpretation notes) are switched off and their cost measured:

* ``forget_nonconflicting=False`` — pulled-up orders are never forgotten
  at schedules that vouch for commutativity.  This is exactly our LLSR
  operationalization: Figure 4 flips to rejected, and on random stack
  ensembles a measurable fraction of Comp-C executions is lost.
* ``seed_leaf_order=True`` — every *ordered* leaf pair seeds the
  observed order (the verbatim Def.-10.1 reading), not just conflicting
  ones.  Combined with temporal recording this rejects re-orderable
  executions; with conflict-committed recording (our default) it is
  harmless, confirming the DESIGN.md argument for the default.

The benchmark times a verdict pass under each option set.
"""

from repro.analysis.tables import banner, format_table
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import reduce_to_roots
from repro.figures import figure3_system, figure4_system
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

DEFAULT = ObservedOrderOptions()
NO_FORGET = ObservedOrderOptions(forget_nonconflicting=False)
LEAF_SEEDS = ObservedOrderOptions(seed_leaf_order=True)

ENSEMBLE = [
    generate(
        stack_topology(2),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=rate),
    )
    for rate in (0.1, 0.25)
    for seed in range(30)
]


def verdicts(options):
    return [
        reduce_to_roots(rec.system, options).succeeded for rec in ENSEMBLE
    ]


def test_bench_a1_ablation(benchmark, emit):
    base = benchmark.pedantic(
        lambda: verdicts(DEFAULT), rounds=2, iterations=1
    )
    no_forget = verdicts(NO_FORGET)
    leaf_seeds = verdicts(LEAF_SEEDS)

    accepted = sum(base)
    accepted_no_forget = sum(no_forget)
    accepted_leaf_seeds = sum(leaf_seeds)

    # --- assertions -----------------------------------------------------
    # disabling forgetting only ever rejects more (it is LLSR):
    for with_rule, without in zip(base, no_forget):
        assert not without or with_rule
    assert accepted_no_forget < accepted, (
        "the forgetting rule should buy measurable permissiveness"
    )
    # figure 4 is the canonical separation:
    assert reduce_to_roots(figure4_system(), DEFAULT).succeeded
    assert not reduce_to_roots(figure4_system(), NO_FORGET).succeeded
    assert not reduce_to_roots(figure3_system(), DEFAULT).succeeded
    # leaf-order seeding is harmless under conflict-committed recording:
    assert leaf_seeds == base

    table = format_table(
        ["option set", "accepted", "of"],
        [
            ["default (paper semantics)", accepted, len(ENSEMBLE)],
            ["no forgetting (LLSR-like)", accepted_no_forget, len(ENSEMBLE)],
            ["verbatim leaf seeding", accepted_leaf_seeds, len(ENSEMBLE)],
        ],
    )
    emit(
        "A1",
        banner("A1: observed-order ablations")
        + "\n"
        + table
        + f"\nforgetting-rule permissiveness gain: "
        f"{accepted - accepted_no_forget} executions "
        f"({(accepted - accepted_no_forget) / len(ENSEMBLE):.0%} of the "
        "ensemble); Figure 4 separates the variants.",
    )
