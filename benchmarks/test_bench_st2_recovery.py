"""ST2 — crash recovery cost: resume-from-snapshot vs full log replay.

The recovery claim behind ``watch --snapshot-out`` / ``--resume-from-
snapshot``: when a watcher dies, catching back up to the crash point
from the latest snapshot costs O(1) events (restore the frozen checker,
replay nothing — the snapshot *is* the pre-crash state), while the only
alternative without snapshots is a full re-read that replays every
event before the crash — linearly more work the later the crash lands.

The benchmark kills a simulated watch at crash points spread across the
log and measures both recovery paths to the same post-recovery state.
The event counts are deterministic and hard-asserted: snapshot recovery
replays exactly 0 events to regain the crash-point state at every crash
point (flat), full re-read replays exactly ``crash_point`` events
(linear).  Both baselines are honest about their real cost: the full
re-read goes back through :class:`~repro.stream.EventLogTail` — read
the file, split lines, parse JSON, validate events — exactly what a
``watch`` restarted without a snapshot does; the snapshot path decodes
the document and rebuilds the packed relations row-for-row.  Both
recovered checkers then finish the suffix and certify byte-identically.
"""

import json
import time

from repro.analysis.tables import banner, format_table
from repro.io.eventlog import events_from_recorded, interleave_by_commit
from repro.io.text_format import dumps
from repro.stream import (
    EventLogTail,
    IncrementalChecker,
    read_snapshot,
    restore_checker,
    write_snapshot,
)
from repro.stream.snapshot import restore_tail, verify_snapshot
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

DEPTH = 3
ROOTS = 12
SEED = 13
CRASH_FRACTIONS = (0.25, 0.5, 0.75, 0.95)


def _workload():
    recorded = generate(
        stack_topology(DEPTH),
        WorkloadConfig(seed=SEED, roots=ROOTS, conflict_probability=0.2),
    )
    return interleave_by_commit(events_from_recorded(recorded))


def _write_log(path, events):
    from repro.io.eventlog import dumps_event

    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(dumps_event(event) + "\n")


def _ingest(checker, events):
    for event in events:
        checker.ingest(event)


def test_bench_st2_recovery(benchmark, emit, tmp_path):
    events = _workload()
    n = len(events)
    log = tmp_path / "log.jsonl"
    _write_log(log, events)

    # the uninterrupted run every recovery must reproduce
    reference = IncrementalChecker()
    _ingest(reference, events)
    ref_result = reference.finalize()
    ref_dump = dumps(ref_result.recorded)

    rows = []
    data = {
        "depth": DEPTH,
        "roots": ROOTS,
        "seed": SEED,
        "events": n,
        "crash_points": {},
    }
    restore_s_by_point = {}
    for fraction in CRASH_FRACTIONS:
        crash_at = int(n * fraction)
        # the watcher consumed `crash_at` events and snapshotted after
        # every batch; then it is killed
        victim = IncrementalChecker()
        tail = EventLogTail(str(log))
        consumed = 0
        for tailed in tail.poll():
            if consumed == crash_at:
                break
            victim.ingest(tailed.event)
            consumed += 1
        tail.restore(
            sum(
                len(line) + 1
                for line in log.read_text().splitlines()[:crash_at]
            ),
            crash_at,
        )
        snap = tmp_path / f"snap-{crash_at}.json"
        write_snapshot(str(snap), victim, tail)

        # at restart time the log holds what the writer got out before
        # the crash: exactly the consumed prefix
        prefix_log = tmp_path / f"prefix-{crash_at}.jsonl"
        _write_log(prefix_log, events[:crash_at])

        # recovery path A: restore the snapshot (replays 0 events to
        # regain the crash-point state)
        def _restore():
            start = time.perf_counter()
            document = read_snapshot(str(snap))
            verify_snapshot(
                document, str(prefix_log), snapshot_path=str(snap)
            )
            checker = restore_checker(document)
            return checker, document, time.perf_counter() - start

        restored, document, restore_s = min(
            (_restore() for _ in range(3)), key=lambda r: r[2]
        )
        snapshot_replayed = 0  # by construction: state is the snapshot
        assert restored.verdict().events == crash_at

        # recovery path B: full re-read from offset 0 — the tailer
        # reads, splits, parses, and validates every pre-crash line
        # again, then the checker replays it
        def _reread():
            start = time.perf_counter()
            checker = IncrementalChecker()
            tailer = EventLogTail(str(prefix_log))
            replayed = 0
            while True:
                batch = tailer.poll()
                if not batch:
                    break
                for tailed in batch:
                    checker.ingest(tailed.event)
                    replayed += 1
            return checker, replayed, time.perf_counter() - start

        fresh, full_replayed, replay_s = min(
            (_reread() for _ in range(3)), key=lambda r: r[2]
        )
        assert fresh.verdict().events == crash_at

        # the deterministic flat-vs-linear contract
        assert snapshot_replayed == 0
        assert full_replayed == crash_at

        # both recoveries finish the suffix and certify identically
        suffix = events[crash_at:]
        restored_tail = restore_tail(document, str(log))
        assert restored_tail.line == crash_at
        _ingest(restored, suffix)
        _ingest(fresh, suffix)
        a = restored.finalize()
        b = fresh.finalize()
        assert dumps(a.recorded) == ref_dump
        assert dumps(b.recorded) == ref_dump
        assert a.verdict.status == b.verdict.status == (
            ref_result.verdict.status
        )

        snapshot_bytes = len(snap.read_bytes())
        restore_s_by_point[crash_at] = restore_s
        rows.append(
            [
                f"{int(fraction * 100)}% ({crash_at} ev)",
                snapshot_replayed,
                full_replayed,
                f"{1e3 * restore_s:.2f}",
                f"{1e3 * replay_s:.2f}",
                f"{replay_s / restore_s:.1f}x",
                f"{snapshot_bytes / 1024:.0f}",
            ]
        )
        data["crash_points"][str(crash_at)] = {
            "fraction": fraction,
            "snapshot_replayed_events": snapshot_replayed,
            "full_replayed_events": full_replayed,
            "snapshot_restore_s": restore_s,
            "full_replay_s": replay_s,
            "snapshot_bytes": snapshot_bytes,
        }

    # time the dominant recovery operation for the pedantic record
    late = tmp_path / f"snap-{int(n * 0.95)}.json"
    benchmark.pedantic(
        lambda: restore_checker(json.loads(late.read_text())),
        rounds=3,
        iterations=1,
    )

    table = format_table(
        [
            "crash point",
            "ev replayed (snapshot)",
            "ev replayed (full)",
            "restore ms",
            "full replay ms",
            "speedup",
            "snapshot KiB",
        ],
        rows,
    )
    emit(
        "ST2",
        banner("ST2: crash recovery — snapshot restore vs full replay")
        + "\n"
        + table
        + "\nsnapshot catch-up replays 0 events at every crash point"
        + " (flat);\nfull re-read replays the whole prefix (linear in"
        + " the crash point).",
        data=data,
    )
