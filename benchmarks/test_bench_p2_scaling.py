"""P2 — decision-procedure cost.

Times the Comp-C reduction against growing history sizes and system
orders.  The implementation is polynomial (transitive closures dominate:
roughly O(V·(V+E)) per level); the measured curve should grow
polynomially — we assert a loose super-linear-but-sub-quartic envelope
rather than exact exponents, since constants differ across machines.
The benchmark itself times the largest history-size point.
"""

from repro.analysis.scaling import checker_scaling, depth_scaling
from repro.analysis.tables import banner, format_table
from repro.core.reduction import reduce_to_roots
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

BIG = generate(
    stack_topology(2),
    WorkloadConfig(seed=0, roots=32, conflict_probability=0.1),
)


def check_big():
    return reduce_to_roots(BIG.system)


def test_bench_p2_scaling(benchmark, emit):
    result = benchmark(check_big)
    assert result.fronts  # the verdict itself is workload-dependent

    size_points = checker_scaling(
        root_counts=(2, 4, 8, 16, 32), depth=2, repeats=2
    )
    depth_points = depth_scaling(depths=(2, 3, 4, 5), roots=6, repeats=2)

    # --- assertions: monotone growth, polynomial envelope ----------------
    ops = [p.operations for p in size_points]
    secs = [p.seconds for p in size_points]
    assert ops == sorted(ops)
    # between the smallest and largest point, time grows at most like
    # size^4 (loose) and the largest point is slower than the smallest:
    growth = secs[-1] / max(secs[0], 1e-9)
    size_ratio = ops[-1] / ops[0]
    assert growth <= size_ratio**4, "checker cost blew past the envelope"
    assert secs[-1] >= secs[0]

    def table(points):
        return format_table(
            ["point", "nodes", "time (ms)", "verdict"],
            [
                [
                    p.label,
                    p.operations,
                    f"{p.seconds * 1000:.2f}",
                    "accept" if p.accepted else "reject",
                ]
                for p in points
            ],
        )

    emit(
        "P2",
        "\n".join(
            [
                banner("P2: checker scaling"),
                "history size sweep (depth-2 stacks):",
                table(size_points),
                "",
                "system order sweep (6 roots):",
                table(depth_points),
                "",
                "the decision procedure is polynomial; the dominating "
                "costs are per-level transitive closures.",
            ]
        ),
    )
