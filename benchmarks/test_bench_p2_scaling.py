"""P2 — decision-procedure cost.

Times the Comp-C reduction against growing history sizes and system
orders.  The implementation is polynomial (transitive closures dominate:
roughly O(V·(V+E)) per level); the measured curve should grow
polynomially — we assert a loose super-linear-but-sub-quartic envelope
rather than exact exponents, since constants differ across machines.
The benchmark itself times the largest history-size point.

PR 2 additions: the incremental engine (per-level closure reuse) is
measured against the from-scratch engine on deep topologies — the
closure-row counts are deterministic and must drop, and the narratives
must stay byte-identical — and, when ``REPRO_BENCH_WORKERS`` asks for
more than one process, a multi-seed chaos sweep is timed serial vs
parallel.  Wall-clock speedups are *recorded* (in ``BENCH_P2.json``)
but not hard-asserted: CI machines are noisy, the row counts are not.
"""

import os

from repro.analysis.scaling import (
    checker_scaling,
    closure_path_speedup,
    depth_scaling,
    incremental_speedup,
    sweep_speedup,
)
from repro.analysis.tables import banner, format_table
from repro.core.reduction import reduce_to_roots
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

BIG = generate(
    stack_topology(2),
    WorkloadConfig(seed=0, roots=32, conflict_probability=0.1),
)


def check_big():
    return reduce_to_roots(BIG.system)


def test_bench_p2_scaling(benchmark, emit):
    result = benchmark(check_big)
    assert result.fronts  # the verdict itself is workload-dependent

    size_points = checker_scaling(
        root_counts=(2, 4, 8, 16, 32), depth=2, repeats=2
    )
    depth_points = depth_scaling(depths=(2, 3, 4, 5), roots=6, repeats=2)
    speedups = incremental_speedup(repeats=3)
    closure_paths = closure_path_speedup(repeats=3)

    # --- assertions: monotone growth, polynomial envelope ----------------
    ops = [p.operations for p in size_points]
    secs = [p.seconds for p in size_points]
    assert ops == sorted(ops)
    # between the smallest and largest point, time grows at most like
    # size^4 (loose) and the largest point is slower than the smallest:
    growth = secs[-1] / max(secs[0], 1e-9)
    size_ratio = ops[-1] / ops[0]
    assert growth <= size_ratio**4, "checker cost blew past the envelope"
    assert secs[-1] >= secs[0]

    # --- assertions: incremental engine ---------------------------------
    # Closure-row counts are deterministic (unlike wall time): per-level
    # reuse must strictly reduce them on every deep topology, and the two
    # engines must tell exactly the same story.
    for point in speedups:
        assert point.verdicts_match, point.label
        assert point.incremental_rows < point.scratch_rows, point.label

    # --- assertions: streaming closure path ------------------------------
    # The one wall-clock claim we do hard-assert: maintaining the closure
    # incrementally (add_closed per arriving batch) must beat re-closing
    # from scratch per batch at every depth, and by >=2x at the deepest.
    # Measured headroom is ~5x, so the thresholds survive noisy CI boxes.
    for point in closure_paths:
        assert point.speedup > 1.0, f"depth {point.depth}: {point.speedup:.2f}x"
    assert closure_paths[-1].speedup >= 2.0, (
        f"depth {closure_paths[-1].depth}: "
        f"{closure_paths[-1].speedup:.2f}x"
    )

    # --- optional: serial-vs-parallel sweep -----------------------------
    # Only the determinism contract is hard-asserted; the recorded
    # speedup exceeds 1 only when the machine actually has the cores
    # (a 1-CPU container measures pure pool overhead, ~0.93x).
    sweep = None
    if WORKERS > 1:
        sweep = sweep_speedup(
            workers=WORKERS,
            protocols=("cc", "s2pl"),
            seeds=tuple(range(6)),
            depth=2,
            clients=4,
            transactions_per_client=20,
            intensity=0.5,
        )
        assert sweep.identical, "--workers output diverged from serial"

    def table(points):
        return format_table(
            ["point", "nodes", "time (ms)", "verdict"],
            [
                [
                    p.label,
                    p.operations,
                    f"{p.seconds * 1000:.2f}",
                    "accept" if p.accepted else "reject",
                ]
                for p in points
            ],
        )

    speedup_table = format_table(
        ["topology", "nodes", "scratch ms", "incr. ms", "speedup", "rows"],
        [
            [
                p.label,
                p.operations,
                f"{p.scratch_seconds * 1000:.2f}",
                f"{p.incremental_seconds * 1000:.2f}",
                f"{p.speedup:.2f}x",
                f"{p.incremental_rows}/{p.scratch_rows}",
            ]
            for p in speedups
        ],
    )

    closure_path_table = format_table(
        ["depth", "ops", "pairs", "batches", "scratch ms", "incr. ms", "speedup"],
        [
            [
                p.depth,
                p.operations,
                p.pairs,
                p.batches,
                f"{p.scratch_seconds * 1000:.2f}",
                f"{p.incremental_seconds * 1000:.2f}",
                f"{p.speedup:.2f}x",
            ]
            for p in closure_paths
        ],
    )

    lines = [
        banner("P2: checker scaling"),
        "history size sweep (depth-2 stacks):",
        table(size_points),
        "",
        "system order sweep (6 roots):",
        table(depth_points),
        "",
        "incremental closure vs from-scratch (serial layouts):",
        speedup_table,
        "",
        "streaming closure path (add_closed vs re-close per batch):",
        closure_path_table,
        "",
        "the decision procedure is polynomial; the dominating "
        "costs are per-level transitive closures, and the "
        "incremental engine re-closes only each level's delta.",
    ]
    if sweep is not None:
        lines.extend(
            [
                "",
                f"{sweep.label}: serial {sweep.serial_seconds:.2f}s vs "
                f"{sweep.workers} workers {sweep.parallel_seconds:.2f}s "
                f"({sweep.speedup:.2f}x, identical={sweep.identical})",
            ]
        )

    data = {
        "size_sweep": [
            {
                "label": p.label,
                "operations": p.operations,
                "seconds": p.seconds,
                "accepted": p.accepted,
            }
            for p in size_points
        ],
        "depth_sweep": [
            {
                "label": p.label,
                "operations": p.operations,
                "seconds": p.seconds,
                "accepted": p.accepted,
            }
            for p in depth_points
        ],
        "incremental_speedup": [
            {
                "label": p.label,
                "operations": p.operations,
                "scratch_seconds": p.scratch_seconds,
                "incremental_seconds": p.incremental_seconds,
                "speedup": p.speedup,
                "scratch_rows": p.scratch_rows,
                "incremental_rows": p.incremental_rows,
                "verdicts_match": p.verdicts_match,
            }
            for p in speedups
        ],
        "closure_path": [
            {
                "depth": p.depth,
                "operations": p.operations,
                "batches": p.batches,
                "pairs": p.pairs,
                "scratch_seconds": p.scratch_seconds,
                "incremental_seconds": p.incremental_seconds,
                "speedup": p.speedup,
            }
            for p in closure_paths
        ],
        "sweep_speedup": None
        if sweep is None
        else {
            "label": sweep.label,
            "tasks": sweep.tasks,
            "workers": sweep.workers,
            "serial_seconds": sweep.serial_seconds,
            "parallel_seconds": sweep.parallel_seconds,
            "speedup": sweep.speedup,
            "identical": sweep.identical,
        },
    }

    emit("P2", "\n".join(lines), data=data)
