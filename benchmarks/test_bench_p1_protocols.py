"""P1 — protocol evaluation: performance vs composite correctness.

The paper's motivation made measurable: components with independent
classical schedulers (SGT, TO) deliver the best raw numbers but commit
executions that are **not** Comp-C whenever composite transactions
interfere through shared components (joins, general DAGs).  The
composite-aware protocols pay for correctness — CC scheduling with
aborts from its root-order registry, strict 2PL with blocking — and
their committed executions are Comp-C on every run.

Every cell re-checks the committed execution with the reduction, so the
numbers below are simultaneously a performance table and an end-to-end
validation of the whole pipeline.  The benchmark times one simulation
cell.
"""

from repro.analysis.protocols import evaluate_protocol
from repro.analysis.tables import banner, format_table
from repro.simulator.programs import ProgramConfig
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
)

PROGRAM = ProgramConfig(items_per_component=4, item_skew=0.8)
SEEDS = (0, 1, 2)


def one_cell():
    return evaluate_protocol(
        join_topology(3),
        "cc",
        clients=4,
        transactions_per_client=8,
        seeds=SEEDS,
        program=PROGRAM,
    )


def test_bench_p1_protocols(benchmark, emit):
    benchmark.pedantic(one_cell, rounds=2, iterations=1)

    topologies = [
        stack_topology(3),
        fork_topology(3),
        join_topology(3),
        random_dag_topology(3, 2, seed=5),
    ]
    points = []
    for topology in topologies:
        for protocol in ("cc", "s2pl", "sgt", "to"):
            points.append(
                evaluate_protocol(
                    topology,
                    protocol,
                    clients=4,
                    transactions_per_client=8,
                    seeds=SEEDS,
                    program=PROGRAM,
                )
            )

    # --- assertions: the paper's story ---------------------------------
    by_key = {(p.topology, p.protocol): p for p in points}
    for topology in topologies:
        # composite-aware protocols are always correct:
        assert by_key[(topology.name, "cc")].comp_c_rate == 1.0
        assert by_key[(topology.name, "s2pl")].comp_c_rate == 1.0
    # uncoordinated optimism breaks on the join:
    assert by_key[("join3", "sgt")].comp_c_rate < 1.0
    # and SGT's raw throughput beats strict 2PL everywhere:
    for topology in topologies:
        assert (
            by_key[(topology.name, "sgt")].throughput
            > by_key[(topology.name, "s2pl")].throughput
        )

    table = format_table(
        [
            "topology",
            "protocol",
            "throughput",
            "abort rate",
            "mean resp.",
            "Comp-C runs",
        ],
        [
            [
                p.topology,
                p.protocol,
                f"{p.throughput:.3f}",
                f"{p.abort_rate:.3f}",
                f"{p.mean_response_time:.2f}",
                f"{p.comp_c_runs}/{p.runs}",
            ]
            for p in points
        ],
    )

    # ------------------------------------------------------------------
    # multiprogramming-level sweep (the figure series): contention rises
    # with MPL; the CC registry pays more aborts, the uncoordinated
    # protocol silently loses correctness instead.
    # ------------------------------------------------------------------
    mpl_points = []
    for protocol in ("cc", "sgt"):
        for clients in (1, 2, 4, 8):
            mpl_points.append(
                evaluate_protocol(
                    join_topology(3),
                    protocol,
                    clients=clients,
                    transactions_per_client=8,
                    seeds=SEEDS,
                    program=PROGRAM,
                )
            )
    single_client = [p for p in mpl_points if p.clients == 1]
    for p in single_client:
        # one client at a time = serial execution = always correct
        assert p.comp_c_rate == 1.0
        assert p.abort_rate == 0.0
    cc_rows = [p for p in mpl_points if p.protocol == "cc"]
    assert all(p.comp_c_rate == 1.0 for p in cc_rows)
    sgt_high = next(
        p for p in mpl_points if p.protocol == "sgt" and p.clients == 8
    )
    assert sgt_high.comp_c_rate < 1.0

    mpl_table = format_table(
        ["protocol", "clients", "throughput", "abort rate", "Comp-C runs"],
        [
            [
                p.protocol,
                p.clients,
                f"{p.throughput:.3f}",
                f"{p.abort_rate:.3f}",
                f"{p.comp_c_runs}/{p.runs}",
            ]
            for p in mpl_points
        ],
    )

    emit(
        "P1",
        banner("P1: protocols x topologies (4 clients)")
        + "\n"
        + table
        + "\n\nmultiprogramming-level sweep (join x3):\n"
        + mpl_table
        + "\npaper claim reproduced: independent classical schedulers "
        "violate composite correctness outside stacks/forks; the "
        "composite protocols never do.",
    )
