"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (figure / theorem /
comparison claim).  Besides the pytest-benchmark timing, each test emits
its artifact table through the ``emit`` fixture, which both prints it
(visible with ``pytest -s`` or on failure) and persists it under
``benchmarks/out/`` so EXPERIMENTS.md can reference stable outputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture()
def emit():
    """``emit(name, text)``: print an artifact table and save it."""

    def _emit(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] (saved to {path})")
        print(text)

    return _emit
