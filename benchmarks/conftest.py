"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (figure / theorem /
comparison claim).  Besides the pytest-benchmark timing, each test emits
its artifact table through the ``emit`` fixture, which both prints it
(visible with ``pytest -s`` or on failure) and persists it under
``benchmarks/out/`` so EXPERIMENTS.md can reference stable outputs.
When a benchmark also has machine-readable results (series, timings),
it passes them as ``data`` and they land next to the table as
``BENCH_<name>.json`` — the artifact CI uploads and plots consume.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"
# Repo root: the perf-trajectory artifacts (BENCH_*.json) are tracked
# here so the numbers travel with the history, not only in the
# (gitignored-by-convention) out/ scratch directory.
ROOT_DIR = Path(__file__).parent.parent


@pytest.fixture()
def emit():
    """``emit(name, text, data=None)``: print an artifact table and save
    it; ``data`` (any JSON-serializable object) additionally lands in
    ``BENCH_<name>.json`` — both under ``benchmarks/out/`` and at the
    repo root, where the tracked perf trajectory lives."""

    def _emit(name: str, text: str, data=None) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        if data is not None:
            payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
            json_path = OUT_DIR / f"BENCH_{name}.json"
            json_path.write_text(payload, encoding="utf-8")
            (ROOT_DIR / f"BENCH_{name}.json").write_text(
                payload, encoding="utf-8"
            )
            print(f"\n[{name}] (saved to {path}; data in {json_path})")
        else:
            print(f"\n[{name}] (saved to {path})")
        print(text)

    return _emit
