"""P3 — intra-transaction parallelism (Def. 1's unrestricted orders).

The model's weak/unrestricted orders exist precisely so composite
transactions can run subtransactions concurrently.  This benchmark
exercises them dynamically: the simulator executes call runs fork-join
in parallel, the recorder emits *partial* program orders, and the
composite protocols must keep their correctness guarantee while
response times drop.

Series reported: mean response time and Comp-C rate, sequential vs
parallel, for the CC protocol (divergence-point registry) and plain SGT
on the fork and join shapes.
"""

from repro.analysis.tables import banner, format_table
from repro.core.correctness import is_composite_correct
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.topologies import fork_topology, join_topology

SEEDS = (0, 1, 2)


def measure(topology, protocol, parallel):
    program = ProgramConfig(
        items_per_component=8,
        item_skew=0.6,
        calls_per_transaction=(3, 3),
        parallel_calls=parallel,
    )
    response = 0.0
    comp_c = runs = 0
    throughput = 0.0
    for seed in SEEDS:
        result = simulate(
            SimulationConfig(
                topology=topology,
                protocol=protocol,
                clients=3,
                transactions_per_client=8,
                seed=seed,
                program=program,
            )
        )
        runs += 1
        response += result.metrics.mean_response_time
        throughput += result.metrics.throughput
        if result.assembled is not None and is_composite_correct(
            result.assembled.recorded.system
        ):
            comp_c += 1
    return response / runs, throughput / runs, comp_c, runs


def one_cell():
    return measure(fork_topology(3), "cc", True)


def test_bench_p3_parallelism(benchmark, emit):
    benchmark.pedantic(one_cell, rounds=2, iterations=1)

    rows = []
    results = {}
    for topology in (fork_topology(3), join_topology(3)):
        for protocol in ("cc", "sgt"):
            for parallel in (False, True):
                resp, thr, comp_c, runs = measure(topology, protocol, parallel)
                results[(topology.name, protocol, parallel)] = (
                    resp,
                    thr,
                    comp_c,
                    runs,
                )
                rows.append(
                    [
                        topology.name,
                        protocol,
                        "parallel" if parallel else "sequential",
                        f"{resp:.2f}",
                        f"{thr:.3f}",
                        f"{comp_c}/{runs}",
                    ]
                )

    # --- assertions ------------------------------------------------------
    # parallelism reduces fork response time for both protocols:
    for protocol in ("cc", "sgt"):
        seq = results[("fork3", protocol, False)][0]
        par = results[("fork3", protocol, True)][0]
        assert par < seq
    # the CC protocol stays correct in every mode:
    for key, (_r, _t, comp_c, runs) in results.items():
        if key[1] == "cc":
            assert comp_c == runs, key
    # SGT still misses composite correctness on the join in at least one
    # mode (its blindness is orthogonal to parallelism):
    sgt_join = [
        results[("join3", "sgt", False)],
        results[("join3", "sgt", True)],
    ]
    assert any(comp_c < runs for (_r, _t, comp_c, runs) in sgt_join)

    emit(
        "P3",
        banner("P3: intra-transaction parallelism")
        + "\n"
        + format_table(
            [
                "topology",
                "protocol",
                "mode",
                "mean resp.",
                "throughput",
                "Comp-C runs",
            ],
            rows,
        )
        + "\nthe divergence-point registry keeps CC correct while the "
        "fork-join execution shortens transactions; SGT remains fast "
        "and composite-blind either way.",
    )
