"""T4 — Theorem 4: JCC ⇔ Comp-C on join configurations.

Randomized join executions over several client counts; the JCC verdict
(Def. 27: server CC + acyclicity of ghost graph ∪ client orders) must
agree with Comp-C on every instance.  This is the configuration where
the ghost graph carries all the information — two clients share no
schedule yet interfere through the server.  The benchmark times one
ensemble pass.
"""

from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import agreement_experiment, theorem4_rows
from repro.criteria.join import is_jcc
from repro.workloads.topologies import join_topology


def run_join3():
    return agreement_experiment(
        join_topology(3), is_jcc, "join x3", trials=60, seed=0, roots=4
    )


def test_bench_t4_join(benchmark, emit):
    benchmark.pedantic(run_join3, rounds=2, iterations=1)
    rows = theorem4_rows(client_counts=(2, 3, 5), trials=60, seed=0)

    for row in rows:
        assert row.disagreements == 0, row
        assert 0 < row.accepted < row.trials

    table = format_table(
        ["configuration", "instances", "agreements", "Comp-C accepted"],
        [[r.label, r.trials, r.agreements, r.accepted] for r in rows],
    )
    emit(
        "T4",
        banner("T4: Theorem 4 — JCC <=> Comp-C on joins")
        + "\n"
        + table
        + "\npaper claim reproduced: 100% agreement on every client count.",
    )
