"""F1 — Figure 1: the example configuration and its level numbering.

Regenerates the paper's first figure as data: the five-schedule
arbitrary configuration, its invocation graph, the Def.-9 level
numbering, and the five composite transactions of different heights.
The benchmark times full structural analysis (construction + levels +
forest derivation).
"""

from repro.analysis.tables import banner, format_table
from repro.core.correctness import check_composite_correctness
from repro.figures import figure1_system
from repro.viz.ascii_art import render_forest, render_levels


def analyse():
    system = figure1_system()
    return system, check_composite_correctness(system)


def test_bench_f1_structure(benchmark, emit):
    system, report = benchmark(analyse)

    # --- assertions: the structure the paper describes -----------------
    assert system.order == 3
    assert len(system.schedules) == 5
    assert set(system.roots) == {"T1", "T2", "T3", "T4", "T5"}
    levels = system.levels
    assert levels == {"SA": 3, "SB": 2, "SC": 2, "SD": 1, "SE": 1}
    # composite transactions of different heights:
    heights = {
        root: max(
            (system.depth(leaf) for leaf in system.leaves_of(root)),
            default=0,
        )
        for root in system.roots
    }
    assert heights["T1"] == 3 and heights["T5"] == 1
    # transactions sharing no schedule (the paper's T4/T5 remark, here
    # witnessed by T3 and T5):
    assert report.correct

    rows = [
        [
            root,
            system.schedule_of_transaction(root),
            levels[system.schedule_of_transaction(root)],
            heights[root],
            len(system.leaves_of(root)),
        ]
        for root in sorted(system.roots)
    ]
    text = "\n".join(
        [
            banner("F1: Figure 1 configuration"),
            "schedule levels (Def. 9):",
            render_levels(system),
            "",
            format_table(
                ["root", "home schedule", "home level", "height", "leaves"],
                rows,
            ),
            "",
            "execution forest:",
            render_forest(system),
            "",
            f"execution verdict: "
            f"{'Comp-C' if report.correct else 'NOT Comp-C'}; "
            f"serial witness: {' << '.join(report.serial_witness)}",
        ]
    )
    emit("F1", text)
